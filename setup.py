"""Legacy setup shim.

This environment has setuptools but no ``wheel`` package and no network,
so PEP 660 editable installs (``pip install -e .``) cannot build. All
metadata lives in ``pyproject.toml``; this shim only exists so
``python setup.py develop`` works offline.
"""

from setuptools import setup

setup()
