"""Regenerates Figure 4: TLB miss + page fault handling overheads.

Paper shape checked here (section 5.3):
* RAMpage's software overhead is largest at 128-byte pages (paper: "as
  high as 60% ... reflecting the relatively small 64-entry TLB") and
  falls steeply with page size;
* the baseline's overhead is flat across block sizes (its TLB maps
  fixed 4 KB DRAM pages regardless of the L2 block size).
"""

from repro.experiments import figure4


def test_figure4_overheads(benchmark, runner, emit):
    output = benchmark.pedantic(figure4.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    rows = output.data["rows"]
    rampage = [row["rampage"] for row in rows]
    baseline = [row["baseline"] for row in rows]
    # Monotone-ish decrease for RAMpage: largest at the smallest page,
    # smallest at the largest.
    assert rampage[0] == max(rampage)
    assert rampage[-1] == min(rampage)
    assert rampage[0] > 4 * rampage[-1]
    # Baseline flat.
    assert max(baseline) - min(baseline) < 0.01
    # At the largest page RAMpage's overhead approaches the baseline's.
    assert rampage[-1] < baseline[-1] + 0.60
