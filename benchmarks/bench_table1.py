"""Regenerates Table 1: Direct Rambus vs disk bandwidth efficiency.

Paper claims checked here:
* Rambus efficiency exceeds disk efficiency at every transfer size;
* the section 3.5 worked example (4 KB at 1 GHz: ~10 M instructions for
  disk, ~2,600 for Direct Rambus) is matched to within 1%.
"""

import pytest

from repro.experiments import table1


def test_table1_efficiency(benchmark, emit):
    output = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    emit(output)
    rows = output.data["rows"]
    assert all(row["rambus_pct"] > row["disk_pct"] for row in rows)
    pcts = [row["rambus_pct"] for row in rows]
    assert pcts == sorted(pcts)  # efficiency rises with transfer size
    assert output.data["rambus_cost_instructions_4k_1ghz"] == pytest.approx(
        2600, rel=0.01
    )
    assert output.data["disk_cost_instructions_4k_1ghz"] == pytest.approx(
        10e6, rel=0.02
    )
