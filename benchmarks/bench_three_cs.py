"""Three-Cs decomposition of the baseline L2's misses.

Quantifies the paper's core mechanism: the direct-mapped L2 suffers
conflict misses that associativity removes -- 2-way removes some
(section 4.7's hardware trade), RAMpage's software-managed full
associativity removes them all (section 1).  Checked shape:

* the direct-mapped L2 has a meaningful conflict-miss share;
* 2-way associativity removes most of it;
* compulsory misses are identical across associativities (they are a
  property of the reference stream).
"""

from repro.analysis.report import render_table
from repro.analysis.three_cs import classify_l2_misses
from repro.experiments.runner import ExperimentOutput
from repro.systems.factory import baseline_machine, twoway_machine
from repro.trace.synthetic import build_workload


def test_conflict_misses_explain_rampage(benchmark, runner, emit):
    config = runner.config
    rate = config.fast_rate
    block = 512

    def run_analysis():
        results = {}
        for label, params in (
            ("direct", baseline_machine(rate, block)),
            ("2-way", twoway_machine(rate, block, scheduled_switches=False)),
        ):
            programs = build_workload(config.scale, seed=config.seed)
            results[label] = classify_l2_misses(
                params, programs, slice_refs=config.slice_refs
            )
        return results

    results = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    rows = [
        (
            label,
            result.accesses,
            result.compulsory,
            result.capacity,
            result.conflict,
            f"{result.fraction('conflict') * 100:.1f}%",
        )
        for label, result in results.items()
    ]
    text = render_table(
        f"Three-Cs decomposition of L2 misses ({block}B blocks, 4MB L2)",
        headers=("L2", "accesses", "compulsory", "capacity", "conflict", "conflict %"),
        rows=rows,
        note="RAMpage's fully associative SRAM level removes the conflict "
        "column entirely -- the section 1 trade.",
    )
    emit(ExperimentOutput("three_cs", "three-Cs decomposition", text, {}))
    direct, twoway = results["direct"], results["2-way"]
    assert direct.conflict > 0
    assert twoway.conflict < direct.conflict
    rel = abs(twoway.compulsory - direct.compulsory) / max(1, direct.compulsory)
    assert rel < 0.05
