"""Regenerates Figure 5: RAMpage (switch on miss) vs 2-way L2, relative
to the per-rate best time.

Paper shape checked here (section 5.5):
* "the closeness of the RAMpage and 2-way associative times" -- the
  best cells of the two hierarchies are within a factor of ~1.5 at the
  fastest rate;
* RAMpage's bad region is small pages (TLB overhead), the 2-way
  machine's is large blocks at slow rates.
"""

from repro.experiments import figure5


def test_figure5_relative_speed(benchmark, runner, emit):
    output = benchmark.pedantic(figure5.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    fastest = max(entry["issue_rate_hz"] for entry in output.data["rates"])
    for entry in output.data["rates"]:
        rows = entry["rows"]
        ramp = {row["size_bytes"]: row["rampage_som"] for row in rows}
        two = {row["size_bytes"]: row["twoway"] for row in rows}
        # Every slowdown is relative to the per-rate best: min is 0.
        assert min(list(ramp.values()) + list(two.values())) >= 0.0
        # RAMpage's worst size is its smallest page.
        assert ramp[min(ramp)] == max(ramp.values())
        if entry["issue_rate_hz"] == fastest:
            best_ramp = min(ramp.values())
            best_two = min(two.values())
            assert abs(best_ramp - best_two) < 0.5  # "closeness"
