"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.runner.Runner` serves every benchmark in
the session, with an on-disk record cache, so the figure benchmarks
reuse the table sweeps instead of re-simulating them.

Scaling: the paper runs 1.1 G references; the default benchmark scale is
``REPRO_SCALE=0.003`` (about 3.3 M references per simulation).  Raise it
for closer-to-paper runs::

    REPRO_SCALE=0.01 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, Runner

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(ExperimentConfig.from_env())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print an experiment report and persist it under results/."""

    def _emit(output) -> None:
        print()
        print(output.text)
        output.write_to(results_dir)

    return _emit
