"""Associativity sweep: the hardware axis RAMpage trades against.

Section 3.2: "adding associativity makes it more difficult to achieve
fast hits, while reducing the number of misses.  In general, as the
penalty for a miss increases, adding complexity ... becomes more
worthwhile."  This benchmark sweeps the L2's associativity (1, 2, 4, 8
ways at the paper's fixed hit time) and places RAMpage's software full
associativity on the same scale: its miss count should sit at or below
the high-associativity hardware points.
"""

from repro.analysis.report import render_table
from repro.core.params import MIB, CacheParams, MachineParams
from repro.experiments.runner import ExperimentOutput
from repro.systems.factory import rampage_machine

WAYS = (1, 2, 4, 8)


def _conventional(rate: int, block: int, ways: int) -> MachineParams:
    return MachineParams(
        kind="conventional",
        issue_rate_hz=rate,
        l2=CacheParams(4 * MIB, block, associativity=ways),
    )


def test_associativity_sweep(benchmark, runner, emit):
    rate = runner.config.fast_rate
    block = 512

    def run_sweep():
        cells = {}
        for ways in WAYS:
            cells[ways] = runner.record(
                f"l2_{ways}way", _conventional(rate, block, ways)
            )
        cells["rampage"] = runner.record("rampage", rampage_machine(rate, block))
        return cells

    cells = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for ways in WAYS:
        record = cells[ways]
        rows.append(
            (
                f"{ways}-way L2",
                f"{record.seconds:.4f}",
                record.stats["l2_misses"],
            )
        )
    rampage = cells["rampage"]
    rows.append(
        ("RAMpage (full, software)", f"{rampage.seconds:.4f}", rampage.stats["page_faults"])
    )
    text = render_table(
        f"L2 associativity sweep ({block}B blocks, 4MB, {rate // 10**9}GHz) "
        "vs RAMpage's software full associativity",
        headers=("machine", "seconds", "misses to DRAM"),
        rows=rows,
        note="Hardware associativity buys monotonically fewer misses; "
        "RAMpage gets the full-associativity miss count without tags, "
        "paying in software instead (section 1's trade).",
    )
    emit(ExperimentOutput("associativity", "associativity sweep", text, {}))
    misses = [cells[w].stats["l2_misses"] for w in WAYS]
    # Misses shrink (weakly) with associativity ...
    assert misses[-1] <= misses[0]
    # ... and RAMpage's DRAM-miss count beats the direct-mapped L2's.
    assert rampage.stats["page_faults"] < misses[0]
