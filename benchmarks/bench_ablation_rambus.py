"""Ablation (paper section 6.3): pipelined Direct Rambus.

"The effect of pipelined memory references would be worth
investigating, particularly to see if smaller block or page sizes
become viable in this case."  With switch-on-miss, queued page
transfers overlap on the channel; pipelining raises its effective
bandwidth toward the 95%-of-peak figure the paper quotes.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.core.params import RambusParams
from repro.systems.factory import rampage_machine


def test_pipelined_rambus_helps_small_pages(benchmark, runner, emit):
    from repro.experiments.runner import ExperimentOutput

    rate = runner.config.fast_rate

    def run_ablation():
        rows = []
        for size in (128, 512, 2048):
            plain = runner.record(
                "rampage_som", rampage_machine(rate, size, switch_on_miss=True)
            )
            piped = runner.record(
                "rampage_som_piped",
                replace(
                    rampage_machine(rate, size, switch_on_miss=True),
                    dram=RambusParams(pipelined=True),
                ),
            )
            rows.append((size, plain.seconds, piped.seconds))
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        "Ablation: pipelined Direct Rambus under switch-on-miss (section 6.3)",
        headers=("page", "plain (s)", "pipelined (s)"),
        rows=[(s, f"{a:.4f}", f"{b:.4f}") for s, a, b in rows],
        note="Pipelining overlaps queued page transfers; gains concentrate "
        "at small pages where per-transfer latency dominates.",
    )
    emit(ExperimentOutput("ablation_rambus", "pipelined Rambus", text, {}))
    # Pipelining never hurts, and helps most at the smallest page.
    for _, plain_s, piped_s in rows:
        assert piped_s <= plain_s * 1.005
    small_gain = rows[0][1] / rows[0][2]
    large_gain = rows[-1][1] / rows[-1][2]
    assert small_gain >= large_gain * 0.98
