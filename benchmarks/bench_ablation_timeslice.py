"""Ablation (paper sections 5.5, 6.2): time-slice length sensitivity.

Section 5.5 *speculates* that "a short time slice favours larger
blocks because larger blocks support spatial locality at the expense of
temporal locality", and section 6.2 explicitly lists "the impact of the
time slice on optimal block or SRAM page size" as future work to
investigate.  This benchmark runs that investigation: it sweeps the
scheduling quantum for the 2-way machine and compares large-block
against small-block run times at each quantum.

Finding (reported, not forced): on this workload the effect runs the
*other* way -- shorter quanta raise the overall miss volume, and since
each large-block miss costs an order of magnitude more DRAM time, the
4096 B/128 B run-time ratio *grows* as the quantum shrinks.  The
checked claim is the one that holds either way: the quantum materially
moves the block-size trade-off, which is exactly what the paper asked
future work to establish.
"""


from repro.analysis.report import render_table
from repro.analysis.runtime import RunRecord
from repro.experiments.runner import ExperimentOutput
from repro.systems.factory import twoway_machine
from repro.systems.simulator import simulate
from repro.trace.synthetic import build_workload


def test_short_slices_favour_larger_blocks(benchmark, runner, emit):
    config = runner.config
    rate = config.fast_rate

    def run_ablation():
        results = {}
        for slice_refs in (5_000, 20_000, 80_000):
            for block in (128, 4096):
                programs = build_workload(config.scale, seed=config.seed)
                result = simulate(
                    twoway_machine(rate, block), programs, slice_refs=slice_refs
                )
                results[(slice_refs, block)] = RunRecord.from_result(
                    "twoway", block, result
                )
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    slices = (5_000, 20_000, 80_000)
    rows = [
        (
            s,
            f"{results[(s, 128)].seconds:.4f}",
            f"{results[(s, 4096)].seconds:.4f}",
            f"{results[(s, 4096)].seconds / results[(s, 128)].seconds:.3f}",
        )
        for s in slices
    ]
    text = render_table(
        "Ablation: time-slice length vs block size (2-way L2, section 5.5)",
        headers=("slice refs", "128B (s)", "4096B (s)", "4096/128 ratio"),
        rows=rows,
        note="Paper (conjecture, flagged as future work): short slices "
        "shift the balance toward larger blocks.  On this workload the "
        "effect reverses -- shorter quanta raise total miss volume and "
        "each large-block miss costs far more DRAM time.  Either way, "
        "the quantum materially moves the block-size trade-off.",
    )
    emit(ExperimentOutput("ablation_timeslice", "time-slice ablation", text, {}))
    # The checked fact: the quantum materially changes the block-size
    # trade-off (the section 6.2 question), by at least 20% across the
    # swept range.
    ratios = [
        results[(s, 4096)].seconds / results[(s, 128)].seconds for s in slices
    ]
    assert max(ratios) > 1.2 * min(ratios)
    # And the quantum never changes who wins at this scale: 128 B stays
    # the faster block for the 2-way machine at every quantum.
    assert all(ratio > 1.0 for ratio in ratios)
