"""Regenerates Table 4: RAMpage with context switches on misses.

Paper shape checked here (section 5.4):
* the value of switching on a miss increases with CPU speed (paper: a
  modest gain at 200 MHz growing to 16% at 4 GHz);
* at the fastest rate, switching on misses beats plain RAMpage.
"""

from repro.experiments import table4


def test_table4_switch_on_miss(benchmark, runner, emit):
    output = benchmark.pedantic(table4.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    summary = {e["issue_rate_hz"]: e for e in output.data["summary"]}
    slow = summary[min(summary)]
    fast = summary[max(summary)]
    assert fast["speedup_vs_no_switch"] > slow["speedup_vs_no_switch"]
    assert fast["speedup_vs_no_switch"] > 0
    # Larger pages are where switching pays: the best switching size is
    # at least as large as the best no-switch size at the fastest rate.
    assert fast["best_som_size"] >= fast["best_plain_size"]
