"""Ablation (paper section 3.3): Direct Rambus vs an SDRAM-like memory.

"With a wide 128-bit bus, a 10ns SDRAM memory system can in principle
deliver 1.5Gbyte/s ... the proposed Direct Rambus design for 1999 uses
a 2-byte bus clocked at 1.25ns, giving the same 1.5Gbyte/s."  The two
technologies bracket the same peak bandwidth with different granularity;
this benchmark swaps the DRAM timing under the baseline machine and
confirms run times are near-identical -- the paper's justification for
calling its non-pipelined Rambus "similar ... to an SDRAM
implementation".
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.core.params import RambusParams
from repro.systems.factory import baseline_machine

#: SDRAM modelled in the RambusParams shape: 50 ns initial, then a
#: 16-byte beat every 10 ns (128-bit bus at 100 MHz).
SDRAM_LIKE = RambusParams(access_ps=50_000, ps_per_beat=10_000, bytes_per_beat=16)


def test_rambus_and_sdram_like_are_close(benchmark, runner, emit):
    from repro.experiments.runner import ExperimentOutput

    rate = runner.config.fast_rate

    def run_ablation():
        rows = []
        for size in (128, 1024, 4096):
            rambus = runner.record("baseline", baseline_machine(rate, size))
            sdram = runner.record(
                "baseline_sdram",
                replace(baseline_machine(rate, size), dram=SDRAM_LIKE),
            )
            rows.append((size, rambus.seconds, sdram.seconds))
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        "Ablation: Direct Rambus vs SDRAM-like DRAM under the baseline",
        headers=("block", "rambus (s)", "sdram-like (s)"),
        rows=[(s, f"{a:.4f}", f"{b:.4f}") for s, a, b in rows],
        note="Same peak bandwidth, same access latency: the paper's "
        "non-pipelined Rambus 'has similar characteristics to an SDRAM "
        "implementation' (section 2.4).",
    )
    emit(ExperimentOutput("ablation_dram_tech", "DRAM technology", text, {}))
    for _, rambus_s, sdram_s in rows:
        assert abs(rambus_s - sdram_s) / rambus_s < 0.05
