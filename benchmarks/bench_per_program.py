"""Regenerates the section 6.3 per-program behaviour study.

Checks that the per-process attribution is exhaustive (per-pid counts
sum to the machine totals) and that program behaviour actually differs
-- the premise of the paper's variable-page-size discussion.
"""

from repro.experiments import per_program


def test_per_program_attribution(benchmark, runner, emit):
    output = benchmark.pedantic(
        per_program.run, args=(runner,), rounds=1, iterations=1
    )
    emit(output)
    rows = output.data["programs"]
    assert len(rows) == 18
    # Attribution is exhaustive and rates vary across programs.
    assert sum(r["tlb_misses"] for r in rows) > 0
    rates = [r["tlb_miss_rate"] for r in rows if r["refs"]]
    assert max(rates) > 2 * min(rates)
    fault_rates = [r["faults_per_kref"] for r in rows if r["refs"]]
    assert max(fault_rates) > 2 * min(fault_rates) or max(fault_rates) == 0
