"""Regenerates Table 5: 2-way associative L2 with scheduled switches.

Paper shape checked here (sections 4.7, 5.5):
* the 2-way machine beats the direct-mapped baseline at matching
  configurations (that is what the extra hardware buys);
* adding the context-switch trace itself is a small effect (paper:
  "the difference made by adding a trace of context switching code and
  data is insignificant (under 1%)") -- checked against a no-switch
  2-way run at one configuration.
"""

from repro.experiments import table5
from repro.systems.factory import twoway_machine


def test_table5_two_way(benchmark, runner, emit):
    output = benchmark.pedantic(table5.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    baseline = runner.grid("baseline")
    twoway = runner.grid("twoway")
    config = runner.config
    wins = sum(
        1
        for rate in config.issue_rates
        for size in config.sizes
        if twoway.cell(rate, size).time_ps <= baseline.cell(rate, size).time_ps * 1.01
    )
    total = len(config.issue_rates) * len(config.sizes)
    assert wins >= total * 0.7  # associativity wins almost everywhere


def test_switch_trace_effect_is_small(benchmark, runner):
    """Section 4.7: the switch trace itself changes run time by <1%
    (we allow 3% at reduced scale)."""
    rate = runner.config.fast_rate
    size = 1024

    def run_pair():
        with_switches = runner.record(
            "twoway", twoway_machine(rate, size, scheduled_switches=True)
        )
        without = runner.record(
            "twoway_nosw", twoway_machine(rate, size, scheduled_switches=False)
        )
        return with_switches, without

    with_switches, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    delta = abs(with_switches.time_ps - without.time_ps) / without.time_ps
    assert delta < 0.03
