"""Regenerates Figure 2: per-level time fractions at the slow issue rate.

Paper shape checked here (section 5.3):
* L1d time is a very low fraction (it is purely inclusion maintenance;
  data hits are fully pipelined);
* the conventional machine's DRAM fraction grows with block size;
* RAMpage spends a smaller fraction of its time in DRAM than the
  baseline at every size (its full associativity cuts misses).
"""

from repro.experiments.figures23 import run_figure2


def test_figure2_level_fractions(benchmark, runner, emit):
    output = benchmark.pedantic(run_figure2, args=(runner,), rounds=1, iterations=1)
    emit(output)
    baseline = output.data["baseline"]
    rampage = output.data["rampage"]
    for row in baseline + rampage:
        assert row["l1d"] < 0.2
    dram = [row["dram"] for row in baseline]
    assert dram[-1] > dram[0]  # grows with block size
    for base_row, ramp_row in zip(baseline, rampage):
        assert ramp_row["dram"] < base_row["dram"]
