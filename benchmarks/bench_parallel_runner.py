"""Parallel sweep engine: wall-clock cost of filling a small grid.

Not a paper experiment -- this measures the reproduction itself: how
long the serial :class:`Runner` and the pool-backed
:class:`ParallelRunner` take to fill the same cold grid.  On a
single-core host the two are expected to tie (the pool degrades to one
worker plus fork overhead); with cores to spare the parallel fill
should approach ``serial / min(workers, cells)``.
"""

import os

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import Runner

GRID_LABELS = ("baseline", "rampage")


def _config(tmp_dir):
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=tmp_dir,
    )


def _fill_serial(tmp_dir):
    runner = Runner(_config(tmp_dir))
    for label in GRID_LABELS:
        runner.grid(label)
    return runner


def _fill_parallel(tmp_dir, workers):
    runner = ParallelRunner(_config(tmp_dir), workers=workers)
    runner.prefetch(GRID_LABELS)
    for label in GRID_LABELS:
        runner.grid(label)
    return runner


def test_serial_grid_fill(benchmark, tmp_path_factory):
    def round():
        return _fill_serial(tmp_path_factory.mktemp("serial"))

    runner = benchmark.pedantic(round, rounds=3, iterations=1)
    assert len(runner.grid("baseline")) == 2


def test_parallel_grid_fill(benchmark, tmp_path_factory):
    workers = min(4, os.cpu_count() or 1)

    def round():
        return _fill_parallel(tmp_path_factory.mktemp("par"), workers)

    runner = benchmark.pedantic(round, rounds=3, iterations=1)
    assert len(runner.grid("baseline")) == 2
