"""Ablation (paper section 6.3): aggressive 64 KB 8-way L1 caches.

"A more realistic L1 cache would make differences between L2 or SRAM
main memory implementations clearer, as a higher fraction of execution
time would result from misses to DRAM."  This benchmark upgrades both
machines' L1s and checks that the DRAM share of run time indeed rises
relative to the SRAM-transfer share.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.systems.factory import aggressive_l1, baseline_machine, rampage_machine


def test_aggressive_l1_sharpens_dram_contrast(benchmark, runner, emit):
    from repro.experiments.runner import ExperimentOutput

    rate = runner.config.fast_rate
    size = 1024

    def run_ablation():
        cells = {}
        for label, params in (
            ("baseline", baseline_machine(rate, size)),
            ("baseline_bigL1", replace(baseline_machine(rate, size), l1=aggressive_l1())),
            ("rampage", rampage_machine(rate, size)),
            ("rampage_bigL1", replace(rampage_machine(rate, size), l1=aggressive_l1())),
        ):
            cells[label] = runner.record(label, params)
        return cells

    cells = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        (
            label,
            f"{record.seconds:.4f}",
            f"{record.level_fractions['dram']:.3f}",
            f"{record.level_fractions['l2']:.3f}",
        )
        for label, record in cells.items()
    ]
    text = render_table(
        "Ablation: 64 KB 8-way L1 caches (section 6.3)",
        headers=("machine", "seconds", "dram frac", "l2/sram frac"),
        rows=rows,
    )
    emit(ExperimentOutput("ablation_l1", "aggressive L1 ablation", text, {}))
    for kind in ("baseline", "rampage"):
        plain = cells[kind]
        big = cells[f"{kind}_bigL1"]
        # The bigger L1 absorbs SRAM-level traffic, so DRAM's *relative*
        # share of the remaining miss time grows.
        plain_ratio = plain.level_fractions["dram"] / max(
            plain.level_fractions["l2"], 1e-12
        )
        big_ratio = big.level_fractions["dram"] / max(
            big.level_fractions["l2"], 1e-12
        )
        assert big_ratio > plain_ratio
        # And it never slows the machine down.
        assert big.time_ps <= plain.time_ps * 1.02
