"""Ablation (paper section 6.3): a 1K-entry 2-way TLB.

The paper reports work in progress with a much larger TLB: "indications
are that with this improved hierarchy, RAMpage does become competitive
under a wider range of conditions (for example, faster than a 2-way
associative L2 cache with a 128-byte SRAM page)".  This benchmark swaps
the 64-entry TLB for the 1K-entry one and measures how much of the
small-page software overhead disappears.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.systems.factory import large_tlb, rampage_machine


def test_large_tlb_rescues_small_pages(benchmark, runner, emit):
    from repro.experiments.runner import ExperimentOutput

    rate = runner.config.fast_rate

    def run_ablation():
        rows = []
        for size in (128, 512, 4096):
            small = runner.record("rampage", rampage_machine(rate, size))
            big = runner.record(
                "rampage_bigtlb",
                replace(rampage_machine(rate, size), tlb=large_tlb()),
            )
            rows.append(
                (
                    size,
                    f"{small.seconds:.4f}",
                    f"{big.seconds:.4f}",
                    f"{small.overhead_ratio:.3f}",
                    f"{big.overhead_ratio:.3f}",
                )
            )
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        "Ablation: RAMpage with a 1K-entry 2-way TLB (section 6.3)",
        headers=("page", "64-TLB s", "1K-TLB s", "64 ovh", "1K ovh"),
        rows=rows,
        note="Paper: a larger TLB makes RAMpage competitive at smaller "
        "pages.  (At 4 KB the larger TLB trades a little run time back: "
        "fewer TLB refills mean fewer referenced-bit hints for the clock "
        "hand -- a genuine TLB/replacement-policy interaction.)",
    )
    emit(ExperimentOutput("ablation_tlb", "large TLB ablation", text, {"rows": rows}))
    # The big TLB must cut the 128-byte-page overhead substantially...
    assert float(rows[0][4]) < 0.75 * float(rows[0][3])
    # ...and speed up the 128-byte configuration outright.
    assert float(rows[0][2]) < float(rows[0][1])
