"""Regenerates Figure 3: per-level time fractions at the fast issue rate.

Paper shape checked here (section 5.3): "the RAMpage system is more
tolerant of the increased DRAM latency" -- scaling the CPU up without
the DRAM raises every DRAM fraction, but RAMpage's stays below the
conventional machine's.
"""

from repro.experiments.figures23 import run_figure2, run_figure3


def test_figure3_level_fractions(benchmark, runner, emit):
    output = benchmark.pedantic(run_figure3, args=(runner,), rounds=1, iterations=1)
    emit(output)
    slow = run_figure2(runner)  # cached: no extra simulation
    for panel in ("baseline", "rampage"):
        for slow_row, fast_row in zip(slow.data[panel], output.data[panel]):
            assert fast_row["dram"] > slow_row["dram"]
    for base_row, ramp_row in zip(output.data["baseline"], output.data["rampage"]):
        assert ramp_row["dram"] < base_row["dram"]
