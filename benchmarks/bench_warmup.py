"""Regenerates the section 4.2 warm-up claim.

"It takes about 50-million references before every page in the RAMpage
SRAM main memory is occupied [at 128-byte pages]; this figure drops off
with page size to about 25-million references [at 4 KB]" -- i.e. the
small-page memory takes roughly twice as long to fill.  At reduced
workload scale the absolute counts shrink proportionally; the checked
quantity is the ordering (128 B fills last) and a ratio above ~1.3.
"""

from repro.experiments import warmup


def test_warmup_fill_times(benchmark, runner, emit):
    output = benchmark.pedantic(warmup.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    curves = {c["page_bytes"]: c for c in output.data["curves"]}
    # The large-page memories fill essentially completely; the 128-byte
    # one is the laggard (its long tail of rarely-touched pages is the
    # paper's point -- it needs twice the references at full scale).
    assert curves[4096]["final_occupancy"] >= 0.99
    assert curves[1024]["final_occupancy"] >= 0.95
    assert curves[128]["final_occupancy"] >= 0.5
    # Ordering at the half-full milestone, which every size reaches.
    half_128 = curves[128]["milestones"][0.5]
    half_4k = curves[4096]["milestones"][0.5]
    assert half_128 > half_4k
    assert half_128 / half_4k > 1.3
