"""Regenerates Table 3: baseline direct-mapped L2 vs RAMpage run times.

Paper shape checked here (section 5.2):
* RAMpage's best time beats the baseline's best at the fastest issue
  rate (paper: 26% faster at 4 GHz);
* the RAMpage advantage grows as the CPU-DRAM speed gap grows
  (paper: 6% at 200 MHz -> 26% at 4 GHz);
* small RAMpage pages lose to larger ones -- TLB overhead (paper: "the
  RAMpage hierarchy performs better with larger page sizes in SRAM").
"""

from repro.experiments import table3


def test_table3_runtimes(benchmark, runner, emit):
    output = benchmark.pedantic(table3.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    summary = {e["issue_rate_hz"]: e for e in output.data["summary"]}
    slow = summary[min(summary)]
    fast = summary[max(summary)]
    # The win grows with the speed gap.
    assert fast["rampage_speedup"] > slow["rampage_speedup"]
    # At the fastest rate RAMpage wins outright.
    assert fast["rampage_speedup"] > 0
    # RAMpage's 128-byte pages are its worst configuration at 200 MHz.
    sizes = output.data["sizes"]
    slow_rampage = output.data["rampage_seconds"]["200MHz"]
    assert slow_rampage[sizes.index(128)] == max(slow_rampage)
