"""Ablation (paper section 3.2): victim cache and standby page list.

The paper lists Jouppi's victim cache as the hardware technique closest
to what RAMpage's standby page list does in software: "when a page is
replaced, it is moved to the standby page list; the page which is on
the list longest is the one actually discarded".  This benchmark
attaches a 16-block victim buffer to the direct-mapped L2 and a
64-page standby list to RAMpage, and measures how much of the
full-associativity win each recovers.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.systems.factory import baseline_machine, rampage_machine


def test_victim_structures_recover_misses(benchmark, runner, emit):
    from repro.experiments.runner import ExperimentOutput

    rate = runner.config.fast_rate
    size = 512

    def run_ablation():
        plain_l2 = runner.record("baseline", baseline_machine(rate, size))
        victim_l2 = runner.record(
            "baseline_victim",
            replace(baseline_machine(rate, size), victim_cache_blocks=16),
        )
        plain_rp = runner.record("rampage", rampage_machine(rate, size))
        standby_rp = runner.record(
            "rampage_standby",
            rampage_machine(rate, size, standby_pages=64),
        )
        return plain_l2, victim_l2, plain_rp, standby_rp

    plain_l2, victim_l2, plain_rp, standby_rp = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    rows = [
        ("L2 plain", f"{plain_l2.seconds:.4f}", plain_l2.stats["l2_misses"]),
        ("L2 + victim", f"{victim_l2.seconds:.4f}", victim_l2.stats["l2_misses"]),
        ("RAMpage plain", f"{plain_rp.seconds:.4f}", plain_rp.stats["page_faults"]),
        (
            "RAMpage + standby",
            f"{standby_rp.seconds:.4f}",
            standby_rp.stats["page_faults"],
        ),
    ]
    text = render_table(
        "Ablation: victim buffer on L2 / standby page list on RAMpage",
        headers=("machine", "seconds", "misses/faults"),
        rows=rows,
    )
    emit(ExperimentOutput("ablation_victim", "victim structures", text, {}))
    # The victim buffer reduces DRAM accesses of the direct-mapped L2.
    assert victim_l2.stats["dram_accesses"] <= plain_l2.stats["dram_accesses"]
    # The standby list converts some hard faults into soft reclaims.
    assert standby_rp.stats["dram_accesses"] <= plain_rp.stats["dram_accesses"] * 1.02
