"""Regenerates Table 2: the workload catalogue, plus generator throughput.

Checks the catalogue totals ~1.1 G references as in the paper and that
each synthetic generator's instruction-fetch fraction matches its
Table 2 row.  The benchmark measures trace-generation throughput, the
substrate cost under every simulation.
"""

import pytest

from repro.experiments import table2
from repro.trace.synthetic import build_workload


def test_table2_catalogue(benchmark, runner, emit):
    output = benchmark.pedantic(table2.run, args=(runner,), rounds=1, iterations=1)
    emit(output)
    assert output.data["total_millions"] == pytest.approx(1093.1, abs=0.5)
    for row in output.data["programs"]:
        assert row["ifetch_fraction_measured"] == pytest.approx(
            row["ifetch_fraction_paper"], abs=0.05
        )


def test_trace_generation_throughput(benchmark):
    def generate():
        total = 0
        for program in build_workload(scale=0.0002):
            for chunk in program.chunks():
                total += len(chunk)
        return total

    total = benchmark(generate)
    assert total > 200_000
