"""Simulator engine throughput.

Not a paper experiment -- this measures the reproduction itself:
references simulated per second on each machine, so regressions in the
hot chunk loop are caught.  pytest-benchmark runs these at full
precision (multiple rounds) because each round is cheap.
"""

from repro.systems.factory import baseline_machine, build_system, rampage_machine
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import build_workload

REFS = 120_000


def drive(params):
    system = build_system(params)
    workload = InterleavedWorkload(
        build_workload(scale=0.0002), slice_refs=10_000
    )
    consumed = 0
    while consumed < REFS:
        chunk = workload.next_chunk()
        if chunk is None:
            break
        consumed += system.run_chunk(chunk)
    return consumed


def test_conventional_throughput(benchmark):
    consumed = benchmark(drive, baseline_machine(10**9, 512))
    assert consumed >= REFS


def test_rampage_throughput(benchmark):
    consumed = benchmark(drive, rampage_machine(10**9, 1024))
    assert consumed >= REFS
