"""Ablation (paper section 6.3): cheaper context switches.

"It would be interesting to combine RAMpage with a hardware or software
implementation of threads: a cheaper mechanism for context switching
than that measured here would make better use of the relatively small
miss cost of a page fault to DRAM."  This benchmark shrinks the
~400-reference switch to 40 references (a hardware-thread-like context
swap) and checks that switch-on-miss becomes viable at smaller pages.
"""

from dataclasses import replace

from repro.analysis.report import render_table
from repro.core.params import HandlerCosts
from repro.systems.factory import rampage_machine

CHEAP_SWITCH = HandlerCosts(switch_instr=32, switch_data=8)  # 40 refs


def test_cheap_switches_extend_the_win(benchmark, runner, emit):
    from repro.experiments.runner import ExperimentOutput

    rate = runner.config.fast_rate

    def run_ablation():
        rows = []
        for size in (512, 2048, 4096):
            plain = runner.record("rampage", rampage_machine(rate, size))
            normal = runner.record(
                "rampage_som", rampage_machine(rate, size, switch_on_miss=True)
            )
            cheap = runner.record(
                "rampage_som_cheap",
                replace(
                    rampage_machine(rate, size, switch_on_miss=True),
                    handlers=CHEAP_SWITCH,
                ),
            )
            rows.append(
                (
                    size,
                    plain.seconds,
                    normal.seconds,
                    cheap.seconds,
                )
            )
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = render_table(
        "Ablation: 40-ref (thread-like) vs 400-ref context switches (section 6.3)",
        headers=("page", "no switch (s)", "400-ref switch (s)", "40-ref switch (s)"),
        rows=[(s, f"{a:.4f}", f"{b:.4f}", f"{c:.4f}") for s, a, b, c in rows],
        note="Paper: cheaper switching makes better use of the small miss "
        "cost of a DRAM page fault.",
    )
    emit(ExperimentOutput("ablation_switch_cost", "cheap switches", text, {}))
    for _, plain_s, normal_s, cheap_s in rows:
        # Cheaper switches never lose to the 400-reference ones.
        assert cheap_s <= normal_s * 1.005
    # At the smallest page, the cheap switch recovers more of the gap to
    # no-switch than the expensive one does.
    _, plain_s, normal_s, cheap_s = rows[0]
    assert (plain_s - cheap_s) >= (plain_s - normal_s)
