"""Ablation (paper section 2.3): virtually-indexed L1 caches on RAMpage.

"It is possible in principle to address the L1 cache virtually, in
which case the TLB would only be needed on a miss to the SRAM main
memory ... This possibility is not explored in this paper."  Explored
here.

Finding (reported honestly): in this timing model TLB hits are already
free ("fully pipelined", section 4.3), so virtual indexing cannot save
hit latency -- its entire benefit is the TLB misses that L1-*hitting*
references would have taken.  That reduces the TLB miss count and the
software overhead at every page size, most at small pages, but the
run-time gain is modest; the big win the idea promises in real hardware
(no translation power/latency on hits) is outside the model, and is
noted as such.
"""

from repro.analysis.runtime import RunRecord
from repro.analysis.report import render_table
from repro.experiments.runner import ExperimentOutput
from repro.systems.factory import rampage_machine
from repro.systems.simulator import Simulator
from repro.systems.virtual_l1 import VirtualL1RampageSystem
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import build_workload


def test_virtual_l1_cuts_tlb_traffic(benchmark, runner, emit):
    config = runner.config
    rate = config.fast_rate

    def run_ablation():
        rows = {}
        for size in (128, 512, 2048):
            phys = runner.record("rampage", rampage_machine(rate, size))
            system = VirtualL1RampageSystem(rampage_machine(rate, size))
            workload = InterleavedWorkload(
                build_workload(config.scale, seed=config.seed),
                slice_refs=config.slice_refs,
            )
            result = Simulator(system, workload).run()
            virt = RunRecord.from_result("rampage_virtual_l1", size, result)
            rows[size] = (phys, virt)
        return rows

    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table_rows = [
        (
            size,
            phys.stats["tlb_misses"],
            virt.stats["tlb_misses"],
            f"{phys.overhead_ratio:.3f}",
            f"{virt.overhead_ratio:.3f}",
            f"{phys.seconds:.4f}",
            f"{virt.seconds:.4f}",
        )
        for size, (phys, virt) in rows.items()
    ]
    text = render_table(
        "Ablation: virtually-indexed L1 on RAMpage (section 2.3)",
        headers=("page", "phys TLBm", "virt TLBm", "phys ovh", "virt ovh",
                 "phys s", "virt s"),
        rows=table_rows,
        note="Virtual L1s translate only on misses; with TLB hits already "
        "free in the model, the saving is the miss-count column -- the "
        "hardware hit-path saving is outside the timing model.",
    )
    emit(ExperimentOutput("ablation_virtual_l1", "virtual L1", text, {}))
    for size, (phys, virt) in rows.items():
        assert virt.stats["tlb_misses"] < phys.stats["tlb_misses"]
        # Residency behaviour is essentially unchanged (fault counts can
        # drift marginally: fewer TLB inserts mean fewer referenced-bit
        # hints for the clock hand).
        drift = abs(virt.stats["page_faults"] - phys.stats["page_faults"])
        assert drift <= max(5, phys.stats["page_faults"] * 0.02)
        assert virt.seconds <= phys.seconds * 1.02
