#!/usr/bin/env python3
"""Thin launcher for :mod:`repro.bench` (``rampage-sim bench``).

Kept so existing invocations (CI, docs, muscle memory) keep working:

    PYTHONPATH=src python tools/bench_snapshot.py [--rounds N] [--check] ...

The implementation lives in ``src/repro/bench.py``; this shim only
anchors the default snapshot path to the repository root (the package
default is the current directory).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import bench


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--out" not in argv:
        repo_root = Path(__file__).resolve().parent.parent
        argv += ["--out", str(repo_root / "BENCH_throughput.json")]
    return bench.main(argv)


if __name__ == "__main__":
    sys.exit(main())
