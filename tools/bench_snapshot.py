#!/usr/bin/env python3
"""Record a simulator-throughput snapshot in BENCH_throughput.json.

Measures references simulated per wall-clock second for each machine --
the same drive loop as ``benchmarks/bench_simulator_throughput.py`` --
and appends one snapshot to ``BENCH_throughput.json`` at the repo root,
so hot-loop regressions (or wins) are visible across commits without
digging through pytest-benchmark output.

Each round drives a fresh machine over ~120 k references; the best of
``--rounds`` (default 4) is recorded, which filters scheduler noise the
way pytest-benchmark's min-based ranking does.

Usage:
    PYTHONPATH=src python tools/bench_snapshot.py [--rounds N] [--note TEXT]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import date
from pathlib import Path

from repro.core.timer import ScopedTimer, refs_per_second
from repro.systems.factory import baseline_machine, build_system, rampage_machine
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import build_workload

REFS = 120_000
SCALE = 0.0002
SLICE_REFS = 10_000

MACHINES = {
    "conventional": lambda: baseline_machine(10**9, 512),
    "rampage": lambda: rampage_machine(10**9, 1024),
}


def drive(params) -> int:
    system = build_system(params)
    workload = InterleavedWorkload(
        build_workload(scale=SCALE), slice_refs=SLICE_REFS
    )
    consumed = 0
    while consumed < REFS:
        chunk = workload.next_chunk()
        if chunk is None:
            break
        consumed += system.run_chunk(chunk)
    return consumed


def measure(rounds: int) -> dict[str, int]:
    throughput: dict[str, int] = {}
    for name, build in MACHINES.items():
        best = 0.0
        for _ in range(rounds):
            params = build()
            with ScopedTimer() as timer:
                consumed = drive(params)
            best = max(best, refs_per_second(consumed, timer.elapsed))
        throughput[name] = int(round(best))
        print(f"{name}: {throughput[name]:,} refs/s (best of {rounds})")
    return throughput


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--note", default="", help="what changed since the last snapshot")
    args = parser.parse_args(argv)

    path = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"
    if path.exists():
        data = json.loads(path.read_text("utf-8"))
    else:
        data = {
            "unit": "refs_per_second",
            "workload": {"refs": REFS, "scale": SCALE, "slice_refs": SLICE_REFS},
            "snapshots": [],
        }

    snapshot = {
        "date": date.today().isoformat(),
        "host": platform.node(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "note": args.note,
        "throughput": measure(args.rounds),
    }
    data["snapshots"].append(snapshot)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
