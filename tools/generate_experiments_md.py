#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the cached experiment runs.

Runs every experiment through the standard cached
:class:`~repro.experiments.runner.Runner` (free if the benchmark suite
has populated ``.repro_cache/``) and writes the paper-vs-measured record
the deliverables require.

Usage:
    python tools/generate_experiments_md.py [output-path]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.report import format_rate
from repro.experiments import Runner
from repro.experiments import figure4, figure5, table1, table2, table3, table4, table5
from repro.experiments.figures23 import run_figure2, run_figure3


def fence(text: str) -> str:
    return f"```\n{text}\n```"


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    runner = Runner()
    config = runner.config

    t1 = table1.run(runner)
    t2 = table2.run(runner)
    t3 = table3.run(runner)
    t4 = table4.run(runner)
    t5 = table5.run(runner)
    f2 = run_figure2(runner)
    f3 = run_figure3(runner)
    f4 = figure4.run(runner)
    f5 = figure5.run(runner)

    t3_by_rate = {e["issue_rate_hz"]: e for e in t3.data["summary"]}
    t4_by_rate = {e["issue_rate_hz"]: e for e in t4.data["summary"]}
    slow, fast = min(t3_by_rate), max(t3_by_rate)

    f4_rows = f4.data["rows"]
    ramp_ovh = {row["size_bytes"]: row["rampage"] for row in f4_rows}
    base_ovh = {row["size_bytes"]: row["baseline"] for row in f4_rows}

    sections: list[str] = []
    sections.append(
        f"""# EXPERIMENTS — paper vs measured

Reproduction record for *Hardware-Software Trade-Offs in a Direct
Rambus Implementation of the RAMpage Memory Hierarchy* (ASPLOS 1998).
Regenerate with `python tools/generate_experiments_md.py` after
`pytest benchmarks/ --benchmark-only`.

**Run configuration.** Workload scale **{config.scale:g}** of the
paper's 1.1 G references (~{1093.1e6 * config.scale / 1e6:.1f} M refs
per simulation), scheduling quantum {config.slice_refs:,} references
(paper: 500,000), issue rates {{{', '.join(format_rate(r) for r in config.issue_rates)}}}
(paper sweeps 200 MHz-4 GHz), transfer sizes {list(config.sizes)} bytes,
seed {config.seed}.

**What the reduced scale preserves and distorts.** Absolute simulated
seconds scale with the workload, so only *shape* is compared: who wins,
in which region, and how the ordering moves with the CPU-DRAM gap.  Two
distortions are known and documented where they matter: (1) the shorter
quantum makes TLB refill after a process switch relatively more
expensive than in the paper, inflating all software-overhead ratios by
roughly an order of magnitude while leaving their shape (flat baseline,
steeply falling RAMpage curve) intact; (2) compulsory (cold) misses are
a larger fraction of all misses than in a 1.1 G-reference run, which
compresses the advantage of associativity; the paper's orderings emerge
from scale ~0.003 upward.
"""
    )

    sections.append(
        f"""## Table 1 — Rambus vs disk transfer efficiency

Analytic; matched exactly.  Paper's §3.5 worked example: a 4 KB transfer
at a 1 GHz issue rate costs ~10 M instructions on disk and ~2,600 on
Direct Rambus.  Measured: **{t1.data['disk_cost_instructions_4k_1ghz']:,.0f}**
and **{t1.data['rambus_cost_instructions_4k_1ghz']:,.0f}**.

{fence(t1.text)}
"""
    )

    worst = max(
        t2.data["programs"],
        key=lambda row: abs(
            row["ifetch_fraction_measured"] - row["ifetch_fraction_paper"]
        ),
    )
    sections.append(
        f"""## Table 2 — workload catalogue

Input data reproduced verbatim: 18 programs, {t2.data['total_millions']:.1f} M
references total (paper: "1.1-billion").  The synthetic generators'
measured instruction-fetch fractions match the catalogue within 0.05
(worst: {worst['name']}, paper {worst['ifetch_fraction_paper']:.3f} vs
measured {worst['ifetch_fraction_measured']:.3f}).

{fence(t2.text)}
"""
    )

    sections.append(
        f"""## Table 3 — baseline (direct-mapped L2) vs RAMpage run times

Paper: best RAMpage time is **6% faster** than the best baseline at
200 MHz and **26% faster** at 4 GHz; RAMpage suffers at small pages
(TLB overhead); the baseline's best block size is 128 B.

Measured: RAMpage **{t3_by_rate[slow]['rampage_speedup'] * 100:+.1f}%** at
{format_rate(slow)} and **{t3_by_rate[fast]['rampage_speedup'] * 100:+.1f}%** at
{format_rate(fast)} (best sizes: RAMpage {t3_by_rate[fast]['best_rampage_size']} B,
baseline {t3_by_rate[fast]['best_baseline_size']} B).  The win grows with
the speed gap, as in the paper; our crossover sits slightly later
(RAMpage roughly ties rather than leads at 200 MHz) because cold misses
weigh more at reduced scale.

{fence(t3.text)}
"""
    )

    sections.append(
        f"""## Figure 2 — fraction of run time per level, {format_rate(config.slow_rate)}

Paper's observations, all reproduced: L1d time is a very low fraction
(inclusion maintenance only); instruction fetch (L1i) time dominates at
the slow rate; the DRAM fraction of the conventional machine grows with
block size; RAMpage's DRAM fraction is smaller at every size.

{fence(f2.text)}
"""
    )

    sections.append(
        f"""## Figure 3 — fraction of run time per level, {format_rate(config.fast_rate)}

Paper: "the RAMpage system is more tolerant of the increased DRAM
latency."  Measured: every DRAM fraction rises versus Figure 2, and
RAMpage's stays below the baseline's at every size.

{fence(f3.text)}
"""
    )

    sections.append(
        f"""## Figure 4 — TLB miss + page fault handling overheads

Paper: RAMpage overhead "as high as 60%" of trace references at 128-byte
pages, falling steeply with page size; baseline flat across block sizes.
Measured: RAMpage **{ramp_ovh[min(ramp_ovh)] * 100:.0f}%** at 128 B falling to
**{ramp_ovh[max(ramp_ovh)] * 100:.0f}%** at 4 KB; baseline flat at
**{base_ovh[min(base_ovh)] * 100:.1f}%**.  The absolute levels are inflated
by the shorter scheduling quantum (see the header note); the shape —
steep RAMpage decline, flat baseline — matches.

{fence(f4.text)}
"""
    )

    sections.append(
        f"""## Table 4 — RAMpage with context switches on misses

Paper: "a modest speed improvement (up to 16% in the 4GHz case over the
best RAMpage time without context switches on misses)", larger pages
become more viable, and the value of switching grows with CPU speed.

Measured: **{t4_by_rate[slow]['speedup_vs_no_switch'] * 100:+.1f}%** at
{format_rate(slow)} growing to **{t4_by_rate[fast]['speedup_vs_no_switch'] * 100:+.1f}%**
at {format_rate(fast)}; the best switching page size
({t4_by_rate[fast]['best_som_size']} B) is at least as large as the best
no-switch size ({t4_by_rate[fast]['best_plain_size']} B).

{fence(t4.text)}
"""
    )

    sections.append(
        f"""## Table 5 — 2-way associative L2 with scheduled context switches

Paper: the 2-way machine narrows the gap to RAMpage; inserting the
switch trace itself changes run time by under 1% (checked in
`bench_table5.py`, under 3% at our scale).

{fence(t5.text)}
"""
    )

    sections.append(
        f"""## Figure 5 — RAMpage (switch on miss) vs 2-way L2, relative speed

Paper: "the closeness of the RAMpage and 2-way associative times"; n
means 1.n× slower than the per-rate best; RAMpage's bad region is small
pages.  Measured: the two hierarchies' best cells are close at the fast
rate and RAMpage's worst column is its smallest page, as in the paper.

{fence(f5.text)}
"""
    )

    sections.append(
        """## Ablations (paper §6.3 / §3.2 / §5.5)

Regenerated by `benchmarks/bench_ablation_*.py`; reports in `results/`.

* **1K-entry 2-way TLB** — paper's work-in-progress claim that a larger
  TLB makes RAMpage "competitive under a wider range of conditions":
  measured, it more than halves the 128-byte-page overhead and speeds
  that configuration up outright.
* **64 KB 8-way L1** — paper: a more aggressive L1 makes the lower
  levels' differences clearer; measured, DRAM's share of the remaining
  miss time grows for both machines.
* **Pipelined Direct Rambus** — never hurts; helps most at small pages,
  where per-transfer latency dominates (the paper's conjecture).
* **Victim buffer / standby page list** — the §3.2 pairing: a 16-block
  victim buffer cuts the direct-mapped L2's DRAM accesses; a 64-page
  standby list converts some RAMpage hard faults into soft reclaims.
* **Time-slice length** — the paper *conjectures* short slices favour
  larger blocks and lists the question as future work (§6.2); measured,
  the quantum materially moves the block-size trade-off, but with the
  opposite sign on this workload: shorter quanta raise total miss
  volume, and each large-block miss costs far more DRAM time.
* **Virtually-indexed L1** (§2.3's unexplored design point) — built and
  measured: translation moves entirely off the hit path; with TLB hits
  already free in the timing model the measurable gain is the reduced
  TLB-miss count (largest at small pages), with residency behaviour
  essentially unchanged.
* **Three-Cs decomposition** (`bench_three_cs.py`) — the direct-mapped
  L2 carries a substantial conflict-miss share that 2-way associativity
  mostly removes, with compulsory misses invariant — the mechanism
  behind RAMpage's miss advantage, measured directly.
* **Associativity sweep** (`bench_associativity.py`) — L2 misses fall
  monotonically from 1-way to 8-way; RAMpage's software full
  associativity reaches a DRAM-miss count below the direct-mapped L2's.
"""
    )

    out_path.write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
