#!/usr/bin/env python
"""End-to-end smoke test for the sweep-service daemon (CI gate).

Drives a real ``rampage-sim serve`` subprocess through the full service
contract over the standard six-cell bench grid (two machines, three
issue rates — the speed-ratio sweep every paper table runs):

1. start the daemon on a free port and wait for its ready line,
2. submit the grid over HTTP and stream SSE progress to completion,
3. fetch every record and assert it is **byte-identical** to what the
   serial in-process :class:`Runner` produces for the same cells, then
   fetch each grid's report over ``/v1/reports`` (json + svg) and
   assert completeness 1.0 and a well-formed SVG document,
4. SIGKILL the daemon mid-restart-resubmission, restart it over the
   same state directory, and assert the journalled job finishes
   entirely from cache (zero ``mode=full`` cells),
5. SIGTERM the daemon and check it drains gracefully (exit code 0).

Run it locally with ``python tools/service_smoke.py``.  Exits nonzero
on the first violated invariant.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from xml.etree import ElementTree

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.bench import (  # noqa: E402
    SWEEP_LABELS,
    SWEEP_RATES,
    SWEEP_SCALE,
    SWEEP_SIZES,
    SWEEP_SLICE_REFS,
)
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import Runner, iter_cache_files  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

READY_TIMEOUT_S = 30
JOB_TIMEOUT_S = 600


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"  ok: {message}")


def spec_payload() -> dict:
    return {
        "labels": list(SWEEP_LABELS),
        "rates": list(SWEEP_RATES),
        "sizes": list(SWEEP_SIZES),
        "scale": SWEEP_SCALE,
        "slice_refs": SWEEP_SLICE_REFS,
        "seed": 0,
    }


def start_daemon(cache_dir: Path) -> tuple[subprocess.Popen, str]:
    """Launch ``rampage-sim serve`` on a free port; return (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["PYTHONUNBUFFERED"] = "1"
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "2"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + READY_TIMEOUT_S
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"daemon exited before ready (rc={proc.poll()})")
        print(f"  [daemon] {line.rstrip()}")
        if "listening on" in line:
            url = line.split("listening on", 1)[1].split()[0]
            # Keep draining stdout in the background so the daemon can
            # never block on a full pipe while a sweep runs.
            threading.Thread(
                target=_drain, args=(proc,), daemon=True
            ).start()
            return proc, url
    proc.kill()
    fail("daemon never printed its ready line")
    raise AssertionError  # unreachable


def _drain(proc: subprocess.Popen) -> None:
    for line in proc.stdout:
        print(f"  [daemon] {line.rstrip()}")


def serial_ground_truth(work_dir: Path) -> dict[str, bytes]:
    """Run the same grid serially into a separate cache; key -> bytes."""
    serial_cache = work_dir / "serial-cache"
    runner = Runner(
        ExperimentConfig(
            scale=SWEEP_SCALE,
            slice_refs=SWEEP_SLICE_REFS,
            issue_rates=tuple(SWEEP_RATES),
            sizes=tuple(SWEEP_SIZES),
            seed=0,
            cache_dir=serial_cache,
        )
    )
    for label in SWEEP_LABELS:
        runner.grid(label)
    return {
        path.stem: path.read_bytes() for path in iter_cache_files(serial_cache)
    }


def main() -> int:
    work_dir = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    cache_dir = work_dir / "cache"
    proc = None
    try:
        print("== leg 1: serve + submit + stream + byte-identical fetch ==")
        proc, url = start_daemon(cache_dir)
        client = ServiceClient(url)
        health = client.health()
        check(health["status"] == "ok", "daemon reports healthy")

        job = client.submit(spec_payload())
        total = len(SWEEP_LABELS) * len(SWEEP_RATES) * len(SWEEP_SIZES)
        check(job["created"] and job["total"] == total,
              f"six-cell bench grid accepted as job {job['id']}")

        progress = []

        def on_event(name, payload):
            if name == "cell_completed":
                progress.append(payload)
                print(f"  [sse] cell {payload['done']}/{payload['total']} "
                      f"({payload['mode']}, {payload['label']})")

        final = client.wait(job["id"], timeout=JOB_TIMEOUT_S,
                            on_event=on_event)
        check(final["status"] == "completed", "job completed")
        check(len(progress) == total,
              f"SSE streamed all {total} cell completions")

        truth = serial_ground_truth(work_dir)
        manifest = client.records(job["id"])
        check(len(manifest["records"]) == total, "record manifest is full")
        for cell in manifest["records"]:
            fetched = client.fetch_record(cell["key"])
            if fetched != truth.get(cell["key"]):
                fail(f"record {cell['key']} differs from serial runner")
        print(f"  ok: all {total} fetched records byte-identical to "
              "the serial runner")

        resubmit = client.submit(spec_payload())
        check(not resubmit["created"] and resubmit["id"] == job["id"],
              "resubmission is idempotent (same job, no new work)")

        print("== report leg: /v1/reports over the freshly warmed cache ==")
        report_spec = {k: v for k, v in spec_payload().items()
                       if k != "labels"}
        for grid in SWEEP_LABELS:
            payload = json.loads(client.fetch_report(
                grid, format="json", min_complete=1.0, spec=report_spec))
            check(payload["completeness"] == 1.0,
                  f"report {grid} is fully backed by cached records")
            check(len(payload["cells"]) == len(SWEEP_RATES) * len(SWEEP_SIZES)
                  and all(cell["record"] for cell in payload["cells"]),
                  f"report {grid} carries every cell's record")
        svg = client.fetch_report(SWEEP_LABELS[-1], format="svg",
                                  min_complete=1.0, spec=report_spec)
        ElementTree.fromstring(svg.decode("utf-8"))
        check(svg.lstrip().startswith(b"<svg"),
              "svg report is a well-formed SVG document")
        index = client.reports()
        check(set(SWEEP_LABELS) <= set(index["reports"]),
              "report index lists the sweep grids")

        print("== leg 2: SIGKILL mid-flight, journal recovery on restart ==")
        # Rewind the journal to the unacked submission: the daemon
        # committed the job but died before finishing it.
        journal = cache_dir / "service" / "journal.jsonl"
        lines = journal.read_text("utf-8").splitlines()
        submit_line = next(
            line for line in lines if json.loads(line)["op"] == "submit"
        )
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        journal.write_text(submit_line + "\n", "utf-8")

        proc, url = start_daemon(cache_dir)
        client = ServiceClient(url)
        recovered = client.wait(job["id"], timeout=JOB_TIMEOUT_S)
        check(recovered["status"] == "completed",
              "journalled job resumed and completed after restart")
        modes = recovered["modes"]
        check(modes.get("full", 0) == 0 and modes == {"cached": total},
              f"recovery re-simulated nothing (modes={modes})")

        print("== leg 3: graceful SIGTERM drain ==")
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not drain within 60s of SIGTERM")
        check(rc == 0, f"daemon exited cleanly on SIGTERM (rc={rc})")

        print("SERVICE SMOKE PASS")
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
        shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
