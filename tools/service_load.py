#!/usr/bin/env python
"""Load-generation harness for the sweep-service daemon.

Stands up a real in-process daemon (the same ``ServiceThread`` harness
the HTTP tests use) and hammers it with hundreds of concurrent clients
mixing the production op profile:

* **warm re-submits** -- idempotent submissions of an already-completed
  grid (the dominant op for a result service: same job key, instant
  terminal response),
* **record fetches** -- raw cache bytes through the sharded/fetch path,
* **status + health polls**,
* a small fraction of **cold sweeps** -- fresh seeds that must actually
  simulate, exercising admission control (429s are counted, not errors).

Default mode measures sustained throughput (ops/s, terminal-job
responses/s) and latency percentiles, and ``--record`` folds a
``service_load`` entry into the newest BENCH_throughput.json snapshot.

``--smoke`` is the CI gate: a ``--fabric 2`` daemon serves the 9-cell
bench grid under a concurrent client burst, and the run fails on any
lease conflict in the journal or any record byte-mismatch against a
serial :class:`Runner` ground truth.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from datetime import date
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import (  # noqa: E402
    SWEEP_LABELS,
    SWEEP_RATES,
    SWEEP_SCALE,
    SWEEP_SIZES,
    SWEEP_SLICE_REFS,
    environment,
)
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import Runner, iter_cache_files  # noqa: E402
from repro.service import (  # noqa: E402
    ServiceClient,
    ServiceError,
    ServiceThread,
    SweepService,
)
from repro.service.jobs import JobStore  # noqa: E402

DEFAULT_BENCH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def small_config(cache_dir: Path) -> ExperimentConfig:
    """A 4-cell grid: small enough that the daemon, not the simulator,
    is the bottleneck under load."""
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache_dir,
    )


def bench_grid_config(cache_dir: Path) -> ExperimentConfig:
    """The 9-cell bench sweep (3 labels x 1 size x 3 rates)."""
    return ExperimentConfig(
        scale=SWEEP_SCALE,
        slice_refs=SWEEP_SLICE_REFS,
        issue_rates=SWEEP_RATES,
        sizes=SWEEP_SIZES,
        seed=0,
        cache_dir=cache_dir,
    )


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def scan_lease_conflicts(state_dir: Path) -> list[dict]:
    """Journal lease ops granted while another worker's live, unreleased
    lease covered the same group.  The claim protocol makes this
    impossible; any hit is a bug."""
    journal = Path(state_dir) / "journal.jsonl"
    if not journal.exists():
        return []
    held: dict[tuple[str, str], str] = {}
    conflicts: list[dict] = []
    for line in journal.read_text("utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        op = entry.get("op")
        if op == "lease":
            slot = (entry.get("id"), entry.get("group"))
            holder = held.get(slot)
            if holder is not None and holder != entry.get("worker"):
                conflicts.append(entry)
            held[slot] = entry.get("worker")
        elif op == "release":
            held.pop((entry.get("id"), entry.get("group")), None)
    return conflicts


# ----------------------------------------------------------------------
# Load mode
# ----------------------------------------------------------------------


def run_load(args: argparse.Namespace) -> dict:
    with tempfile.TemporaryDirectory(prefix="rampage-load-") as tmp:
        root = Path(tmp)
        config = small_config(root / "cache")
        svc = SweepService(
            config,
            port=0,
            workers=1,
            queue_limit=args.queue_limit,
            fabric=args.fabric,
        )
        thread = ServiceThread(svc)
        url = thread.start()
        try:
            seeder = ServiceClient(url)
            warm = seeder.submit({"labels": ["baseline", "rampage"]})
            final = seeder.wait(warm["id"], timeout=600)
            if final["status"] != "completed":
                raise RuntimeError(f"warm job did not complete: {final}")
            warm_id = warm["id"]
            record_keys = [cell["key"] for cell in final["cells"]]

            lock = threading.Lock()
            latencies_ms: list[float] = []
            counters = {
                "ops": 0,
                "terminal_jobs": 0,
                "throttled_429": 0,
                "errors": 0,
                "cold_submits": 0,
            }
            stop_at = time.monotonic() + args.duration

            def client_loop(index: int) -> None:
                rng = random.Random(index)
                client = ServiceClient(url, retries=0, timeout=30)
                while time.monotonic() < stop_at:
                    roll = rng.random()
                    started = time.perf_counter()
                    try:
                        if roll < args.cold_fraction:
                            job = client.submit(
                                {
                                    "labels": ["baseline"],
                                    "seed": rng.randrange(1, 10**6),
                                }
                            )
                            with lock:
                                counters["cold_submits"] += 1
                                if job["status"] in ("completed", "failed"):
                                    counters["terminal_jobs"] += 1
                        elif roll < args.cold_fraction + 0.45:
                            job = client.submit(
                                {"labels": ["baseline", "rampage"]}
                            )
                            with lock:
                                if job["status"] in ("completed", "failed"):
                                    counters["terminal_jobs"] += 1
                        elif roll < args.cold_fraction + 0.75:
                            client.fetch_record(rng.choice(record_keys))
                        elif roll < args.cold_fraction + 0.90:
                            client.job(warm_id)
                        else:
                            client.health()
                    except ServiceError as exc:
                        with lock:
                            if exc.status == 429:
                                counters["throttled_429"] += 1
                            else:
                                counters["errors"] += 1
                        continue
                    except Exception:
                        with lock:
                            counters["errors"] += 1
                        continue
                    elapsed_ms = (time.perf_counter() - started) * 1e3
                    with lock:
                        counters["ops"] += 1
                        latencies_ms.append(elapsed_ms)

            threads = [
                threading.Thread(target=client_loop, args=(index,), daemon=True)
                for index in range(args.clients)
            ]
            wall_start = time.monotonic()
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=args.duration + 120)
            wall = time.monotonic() - wall_start
        finally:
            thread.stop(timeout=120)

    return {
        "clients": args.clients,
        "duration_s": round(wall, 2),
        "fabric": args.fabric,
        "queue_limit": args.queue_limit,
        "ops": counters["ops"],
        "ops_per_s": round(counters["ops"] / wall, 1),
        "sustained_jobs_per_s": round(counters["terminal_jobs"] / wall, 1),
        "terminal_jobs": counters["terminal_jobs"],
        "cold_submits": counters["cold_submits"],
        "throttled_429": counters["throttled_429"],
        "errors": counters["errors"],
        "p50_ms": round(percentile(latencies_ms, 0.50), 2),
        "p99_ms": round(percentile(latencies_ms, 0.99), 2),
        "max_ms": round(max(latencies_ms), 2) if latencies_ms else 0.0,
    }


def record_entry(path: Path, entry: dict) -> None:
    """Fold a ``service_load`` entry into the newest snapshot."""
    data = json.loads(path.read_text("utf-8"))
    snapshots = data.get("snapshots", [])
    if not snapshots:
        raise SystemExit(f"{path} has no snapshots to annotate")
    snapshots[-1]["service_load"] = {
        "date": date.today().isoformat(),
        **{k: v for k, v in environment().items() if k in ("host", "cpu_count")},
        **entry,
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    print(f"recorded service_load entry in {path}")


# ----------------------------------------------------------------------
# Smoke mode (CI gate)
# ----------------------------------------------------------------------


def run_smoke(args: argparse.Namespace) -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="rampage-smoke-") as tmp:
        root = Path(tmp)
        config = bench_grid_config(root / "cache")
        state_dir = root / "cache" / "service"
        svc = SweepService(
            config, port=0, queue_limit=8, fabric=max(2, args.fabric)
        )
        thread = ServiceThread(svc)
        url = thread.start()
        try:
            client = ServiceClient(url)
            job = client.submit({"labels": list(SWEEP_LABELS)})

            # A concurrent client burst while the fabric executes.
            burst_errors: list[str] = []
            stop = threading.Event()

            def burst(index: int) -> None:
                poke = ServiceClient(url, retries=0)
                while not stop.is_set():
                    try:
                        poke.health()
                        poke.job(job["id"])
                    except ServiceError as exc:
                        if exc.status != 429:
                            burst_errors.append(str(exc))
                    except Exception as exc:  # noqa: BLE001
                        burst_errors.append(str(exc))
                    time.sleep(0.01)

            pokers = [
                threading.Thread(target=burst, args=(index,), daemon=True)
                for index in range(8)
            ]
            for poker in pokers:
                poker.start()
            final = client.wait(job["id"], timeout=600)
            stop.set()
            for poker in pokers:
                poker.join(timeout=10)

            if final["status"] != "completed":
                failures.append(f"job finished {final['status']}: {final}")
            if final["done"] != final["total"] == 9:
                failures.append(
                    f"expected 9/9 cells, got {final['done']}/{final['total']}"
                )
            if burst_errors:
                failures.append(
                    f"{len(burst_errors)} burst-client errors "
                    f"(first: {burst_errors[0]})"
                )

            fetched = {
                cell["key"]: client.fetch_record(cell["key"])
                for cell in final["cells"]
            }
        finally:
            thread.stop(timeout=120)

        # Ground truth: serial runner over an independent cache.
        serial_cache = root / "serial"
        serial = Runner(bench_grid_config(serial_cache))
        serial.prefetch(list(SWEEP_LABELS))
        serial_bytes = {
            path.stem: path.read_bytes()
            for path in iter_cache_files(serial_cache)
        }
        mismatches = [
            key
            for key, blob in fetched.items()
            if serial_bytes.get(key) != blob
        ]
        if mismatches:
            failures.append(
                f"{len(mismatches)} record byte-mismatches vs serial runner"
            )

        conflicts = scan_lease_conflicts(state_dir)
        if conflicts:
            failures.append(f"{len(conflicts)} lease conflicts in journal")

        store = JobStore(state_dir)
        store.recover()
        leftover = {
            job.id: job.leases for job in store.jobs() if job.leases
        }
        if leftover:
            failures.append(f"unreleased leases after completion: {leftover}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "smoke ok: 9/9 bench cells via 2-worker fabric, "
        "0 lease conflicts, 0 record mismatches"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: fabric daemon, bench grid, byte/lease checks",
    )
    parser.add_argument(
        "--clients", type=int, default=100, help="concurrent client threads"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="load phase seconds"
    )
    parser.add_argument(
        "--cold-fraction",
        type=float,
        default=0.02,
        help="fraction of ops that submit a fresh (cold) sweep",
    )
    parser.add_argument(
        "--fabric",
        type=int,
        default=0,
        help="fabric worker processes (0: in-daemon execution)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=8, help="admission queue bound"
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="fold the results into the newest BENCH_throughput.json snapshot",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_BENCH),
        help="snapshot file for --record",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args)
    entry = run_load(args)
    print(json.dumps(entry, indent=2))
    if args.record:
        record_entry(Path(args.out), entry)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
