#!/usr/bin/env python3
"""The paper's headline: RAMpage vs caches as the CPU-DRAM gap grows.

Sweeps the instruction issue rate from 200 MHz to 4 GHz (DRAM timing
held fixed, as in section 4.3), picks each hierarchy's best block/page
size at every rate, and prints the relative standings -- a textual
version of the paper's Table 3 / Figure 5 story.

Run:
    python examples/speed_gap_sweep.py [--scale 0.002]
"""

import argparse

from repro import (
    ISSUE_RATES_HZ,
    baseline_machine,
    build_workload,
    rampage_machine,
    simulate,
    twoway_machine,
)
from repro.analysis.report import format_rate, render_table

SIZES = (128, 512, 2048, 4096)


def best_time(make_params, rate: int, scale: float) -> tuple[float, int]:
    """Best simulated time over the size sweep; returns (seconds, size)."""
    best = None
    for size in SIZES:
        programs = build_workload(scale=scale)
        result = simulate(make_params(rate, size), programs, slice_refs=20_000)
        if best is None or result.seconds < best[0]:
            best = (result.seconds, size)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.002)
    parser.add_argument(
        "--rates",
        type=lambda s: tuple(int(x) for x in s.split(",")),
        default=(200_000_000, 1_000_000_000, 4_000_000_000),
        help="comma-separated issue rates in Hz",
    )
    args = parser.parse_args()

    hierarchies = {
        "baseline": lambda rate, size: baseline_machine(rate, size),
        "2-way": lambda rate, size: twoway_machine(rate, size),
        "rampage": lambda rate, size: rampage_machine(rate, size),
        "rampage+som": lambda rate, size: rampage_machine(
            rate, size, switch_on_miss=True
        ),
    }

    rows = []
    for rate in args.rates:
        results = {
            name: best_time(make, rate, args.scale)
            for name, make in hierarchies.items()
        }
        base_s = results["baseline"][0]
        rows.append(
            (
                format_rate(rate),
                *[
                    f"{seconds:.4f} @{size}B ({(base_s / seconds - 1) * 100:+.0f}%)"
                    for seconds, size in results.values()
                ],
            )
        )
        print(f"finished {format_rate(rate)}")

    print()
    print(
        render_table(
            "Best simulated time per hierarchy (percentage vs baseline best)",
            headers=("issue rate", *hierarchies),
            rows=rows,
            note="Paper (Table 3): RAMpage's edge over the baseline grows "
            "from 6% at 200MHz to 26% at 4GHz.",
        )
    )


if __name__ == "__main__":
    main()
