#!/usr/bin/env python3
"""Dynamic page-size tuning: RAMpage's software-only knob.

Section 6.2: "RAMpage offers another potential win: the ability to
change block size dynamically.  The only hardware support needed for
this is a TLB capable of managing variable page sizes."  A cache's line
size is frozen in silicon; RAMpage's page size is an OS parameter.

This example measures each Table 2 program *in isolation* at every page
size, reports the per-program optimum, and compares three policies:

* fixed global page size (the best single compromise),
* oracle per-program page size (the dynamic-tuning upper bound),
* the conventional cache, whose block size cannot change at all.

Run:
    python examples/dynamic_page_size.py [--refs 80000]
"""

import argparse

from repro import baseline_machine, rampage_machine, simulate
from repro.analysis.report import render_table
from repro.trace.benchmarks import TABLE2_PROGRAMS
from repro.trace.synthetic import SyntheticProgram

SIZES = (128, 512, 2048, 4096)
RATE = 1_000_000_000


def run_one(params, program) -> float:
    return simulate(params, [program], slice_refs=10**9).seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=80_000,
                        help="references simulated per program")
    parser.add_argument("--programs", type=int, default=6,
                        help="how many catalogue programs to study")
    args = parser.parse_args()

    specs = TABLE2_PROGRAMS[: args.programs]
    rows = []
    per_program_best = {}
    per_size_totals = {size: 0.0 for size in SIZES}
    cache_total = 0.0

    for spec in specs:
        times = {}
        for size in SIZES:
            program = SyntheticProgram(spec, total_refs=args.refs, seed=11)
            times[size] = run_one(rampage_machine(RATE, size), program)
            per_size_totals[size] += times[size]
        best_size = min(times, key=times.get)
        per_program_best[spec.name] = times[best_size]
        program = SyntheticProgram(spec, total_refs=args.refs, seed=11)
        cache_seconds = run_one(baseline_machine(RATE, 128), program)
        cache_total += cache_seconds
        rows.append(
            (
                spec.name,
                *[f"{times[size]:.4f}" for size in SIZES],
                best_size,
            )
        )
        print(f"measured {spec.name} (best page {best_size} B)")

    print()
    print(
        render_table(
            "Per-program RAMpage run time (s) by page size",
            headers=("program", *[f"{s}B" for s in SIZES], "best"),
            rows=rows,
        )
    )
    fixed_best_size = min(per_size_totals, key=per_size_totals.get)
    fixed = per_size_totals[fixed_best_size]
    oracle = sum(per_program_best.values())
    print()
    print(f"fixed global page size ({fixed_best_size} B): {fixed:.4f} s total")
    print(f"oracle per-program page size:       {oracle:.4f} s total "
          f"({(fixed / oracle - 1) * 100:+.1f}% over fixed)")
    print(f"conventional cache (128 B, frozen): {cache_total:.4f} s total")
    print()
    print("The paper's initial finding (section 6.3) was that a single page")
    print("size is near-optimal for most programs under one memory system --")
    print("compare 'oracle' with the fixed row to test that here.")


if __name__ == "__main__":
    main()
