#!/usr/bin/env python3
"""Characterise the Table 2 workload -- or your own traces.

Profiles each catalogue program (footprint, distinct pages per page
size, page-change rate, reuse-distance mix) and prints the aggregate
the calibration in docs/workload-model.md rests on: a combined working
set that overcommits the paper's 4 MB SRAM level.

Run:
    python examples/workload_characterization.py [--refs 30000]
"""

import argparse

from repro.analysis.characterize import characterize, reuse_distance_histogram
from repro.analysis.report import render_table
from repro.trace.benchmarks import TABLE2_PROGRAMS
from repro.trace.synthetic import SyntheticProgram

MIB = 1024 * 1024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=int, default=30_000,
                        help="references profiled per program")
    parser.add_argument("--programs", type=int, default=18)
    args = parser.parse_args()

    rows = []
    total_footprint = 0
    for spec in TABLE2_PROGRAMS[: args.programs]:
        program = SyntheticProgram(spec, total_refs=args.refs, seed=5)
        profile = characterize(program.chunks())
        hist = reuse_distance_histogram(
            SyntheticProgram(spec, total_refs=min(args.refs, 15_000), seed=5).chunks()
        )
        total_hist = sum(hist.values())
        short = sum(hist[k] for k in ("<=1", "<=8", "<=64")) / total_hist
        total_footprint += profile.footprint_bytes
        rows.append(
            (
                spec.name,
                f"{profile.ifetch_fraction:.2f}",
                f"{profile.footprint_bytes / 1024:.0f}K",
                profile.distinct_pages[4096],
                f"{profile.page_change_rate[4096]:.3f}",
                f"{short:.2f}",
            )
        )
        print(f"profiled {spec.name}")

    print()
    print(
        render_table(
            f"Workload characterisation ({args.refs} refs/program)",
            headers=("program", "ifetch", "footprint", "4K pages",
                     "page-change", "reuse<=64"),
            rows=rows,
            note=(
                f"combined footprint at this length: "
                f"{total_footprint / MIB:.1f} MiB (full-length combined "
                "working set ~5 MiB vs the 4 MiB SRAM level -- the "
                "capacity regime the paper's experiments need)"
            ),
        )
    )


if __name__ == "__main__":
    main()
