#!/usr/bin/env python3
"""Quickstart: compare the three hierarchies of the paper on one workload.

Builds the paper's three machines -- the direct-mapped-L2 baseline, the
2-way associative L2, and RAMpage -- runs the same interleaved Table 2
workload through each, and prints run times and miss statistics.

Run:
    python examples/quickstart.py [--scale 0.001] [--rate 1000000000]
"""

import argparse

from repro import (
    baseline_machine,
    build_workload,
    rampage_machine,
    simulate,
    twoway_machine,
)
from repro.analysis.report import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.001,
                        help="fraction of the paper's 1.1G references")
    parser.add_argument("--rate", type=int, default=1_000_000_000,
                        help="instruction issue rate in Hz")
    parser.add_argument("--size", type=int, default=1024,
                        help="L2 block / SRAM page size in bytes")
    args = parser.parse_args()

    machines = {
        "baseline (direct L2)": baseline_machine(args.rate, args.size),
        "2-way L2": twoway_machine(args.rate, args.size),
        "RAMpage": rampage_machine(args.rate, args.size),
        "RAMpage + switch-on-miss": rampage_machine(
            args.rate, args.size, switch_on_miss=True
        ),
    }

    rows = []
    for name, params in machines.items():
        # Each machine sees an identical, freshly-generated workload.
        programs = build_workload(scale=args.scale)
        result = simulate(params, programs, slice_refs=20_000)
        stats = result.stats
        misses = stats.l2_misses if params.kind == "conventional" else stats.page_faults
        rows.append(
            (
                name,
                f"{result.seconds:.4f}",
                f"{stats.miss_rate('l1d'):.3f}",
                f"{stats.miss_rate('tlb'):.4f}",
                misses,
                f"{result.level_fractions['dram']:.3f}",
            )
        )

    print(
        render_table(
            f"RAMpage quickstart: {args.scale:g} x Table 2 workload at "
            f"{args.rate / 1e6:.0f} MHz, {args.size} B transfer unit",
            headers=("machine", "sim time (s)", "L1d miss", "TLB miss",
                     "L2 miss / faults", "DRAM frac"),
            rows=rows,
        )
    )
    print()
    print("Lower simulated time is better.  Try --rate 4000000000 to see")
    print("RAMpage pull ahead as the CPU-DRAM speed gap grows (Table 3).")


if __name__ == "__main__":
    main()
