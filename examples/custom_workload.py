#!/usr/bin/env python3
"""Bring your own workload: custom programs and .din trace files.

Shows the two ways to drive the simulator with something other than the
built-in Table 2 catalogue:

1. define a custom :class:`ProgramSpec` (your own working-set sizes and
   pattern mix) and synthesise a stream from it;
2. write the stream to a dinero-style ``.din`` file, read it back, and
   run the references through a machine by hand -- the path you would
   use for traces captured from a real system.

Run:
    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import build_system, rampage_machine
from repro.trace import dinero
from repro.trace.benchmarks import PatternMix, ProgramSpec
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import SyntheticProgram
from repro.systems.simulator import Simulator

KIB = 1024


def make_database_like_program(pid: int) -> SyntheticProgram:
    """An OLTP-flavoured synthetic program: hot index, big heap scans."""
    spec = ProgramSpec(
        name="oltp",
        description="synthetic OLTP: hot B-tree root, heap scans, log writes",
        ifetch_millions=60.0,
        total_millions=100.0,
        code_bytes=96 * KIB,
        array_bytes=512 * KIB,   # heap scans
        hot_bytes=128 * KIB,     # index upper levels
        chase_bytes=64 * KIB,    # leaf-to-heap pointer chasing
        stack_bytes=8 * KIB,
        write_fraction=0.45,     # log/update heavy
        mix=PatternMix(sequential=0.25, strided=0.0, hot=0.35, chase=0.15, stack=0.25),
    )
    return SyntheticProgram(spec, total_refs=120_000, pid=pid, seed=7 + pid)


def run_synthetic() -> None:
    programs = [make_database_like_program(pid) for pid in range(4)]
    system = build_system(rampage_machine(1_000_000_000, 1024))
    result = Simulator(system, InterleavedWorkload(programs, slice_refs=10_000)).run()
    print("custom synthetic workload (4 x OLTP-like processes):")
    print(f"  simulated time : {result.seconds:.4f} s")
    print(f"  page faults    : {result.stats.page_faults}")
    print(f"  TLB overhead   : {result.overhead_ratio:.3f}")
    print()


def run_from_din_file() -> None:
    program = make_database_like_program(pid=0)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "oltp.din"
        written = dinero.write_din(path, program.chunks())
        print(f"wrote {written} references to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB of .din text)")

        system = build_system(rampage_machine(1_000_000_000, 1024))
        consumed = 0
        for chunk in dinero.read_din(path):
            consumed += system.run_chunk(chunk)
        result = system.finalize()
        print(f"replayed {consumed} references from the trace file:")
        print(f"  simulated time : {result.seconds:.4f} s")
        print(f"  page faults    : {result.stats.page_faults}")


if __name__ == "__main__":
    run_synthetic()
    run_from_din_file()
