#!/usr/bin/env python3
"""When is a context switch on a miss worth taking?

Section 5.4's question: the switch costs ~400 references of software
plus cache/TLB pollution, and buys the DRAM page transfer time back.
This example sweeps page size and issue rate and reports the speedup
(positive = switching wins), plus the analytic break-even: the transfer
time in CPU cycles vs the switch's reference count.

Run:
    python examples/context_switch_study.py [--scale 0.001]
"""

import argparse

from repro import build_workload, rampage_machine, simulate
from repro.analysis.report import format_rate, render_table
from repro.core.params import HandlerCosts, RambusParams
from repro.mem.dram import rambus_transfer_ps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.001)
    args = parser.parse_args()

    rates = (200_000_000, 1_000_000_000, 4_000_000_000)
    sizes = (512, 2048, 4096)
    switch_refs = HandlerCosts().switch_refs
    dram = RambusParams()

    rows = []
    for rate in rates:
        cycle_ps = 10**12 // rate
        for size in sizes:
            plain = simulate(
                rampage_machine(rate, size),
                build_workload(scale=args.scale),
                slice_refs=20_000,
            )
            switching = simulate(
                rampage_machine(rate, size, switch_on_miss=True),
                build_workload(scale=args.scale),
                slice_refs=20_000,
            )
            gain = plain.time_ps / switching.time_ps - 1.0
            transfer_cycles = rambus_transfer_ps(dram, size) // cycle_ps
            rows.append(
                (
                    format_rate(rate),
                    size,
                    transfer_cycles,
                    switch_refs,
                    f"{gain * 100:+.1f}%",
                )
            )
        print(f"finished {format_rate(rate)}")

    print()
    print(
        render_table(
            "Context switch on miss: measured gain vs the analytic trade",
            headers=(
                "issue rate",
                "page B",
                "transfer (cycles)",
                "switch (refs)",
                "measured gain",
            ),
            rows=rows,
            note="Switching pays once the hidden transfer (cycles) clearly "
            "exceeds the switch software cost -- i.e. for larger pages "
            "and faster CPUs (paper: up to 16% at 4GHz).",
        )
    )


if __name__ == "__main__":
    main()
