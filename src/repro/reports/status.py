"""Machine-readable cache and benchmark summaries.

These serializers back three consumers with one shape each:
``rampage-sim cache stats --json``, the daemon's ``GET /v1/bench``
route, and the dashboard's status cards.  Everything here is
read-only and tolerant -- an absent directory or a malformed
``BENCH_throughput.json`` yields a summary that *says so* instead of
raising.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.core.errors import CacheIntegrityError
from repro.core.observe import read_manifest
from repro.experiments.runner import (
    decode_cache_entry,
    iter_cache_files,
    iter_quarantined_files,
)
from repro.trace import filter as missplane
from repro.trace import materialize

#: Artifact layouts living under the cache directory, beyond the
#: ``<key>.json`` records: (kind, subdirectory resolver, validator).
ARTIFACT_LAYOUTS: tuple[tuple[str, Callable, Callable], ...] = (
    ("trace", materialize.trace_root, materialize.load_artifact),
    ("plane", missplane.plane_root, missplane.load_plane),
)


def dir_bytes(root: Path) -> int:
    """Total size of every file under an artifact directory."""
    return sum(
        path.stat().st_size for path in root.rglob("*") if path.is_file()
    )


def artifact_dirs(root: Path) -> tuple[list[Path], list[Path]]:
    """Committed and quarantined artifact directories under ``root``."""
    if not root.is_dir():
        return [], []
    live: list[Path] = []
    quarantined: list[Path] = []
    for path in sorted(root.iterdir()):
        if not path.is_dir() or path.name.startswith("."):
            continue
        if missplane.QUARANTINE_SUFFIX in path.name:
            quarantined.append(path)
        else:
            live.append(path)
    return live, quarantined


def cache_status(cache_dir: str | Path | None) -> dict:
    """One JSON-friendly summary of a run-record cache directory."""
    if cache_dir is None:
        return {"present": False, "path": None}
    cache_dir = Path(cache_dir)
    if not cache_dir.exists():
        return {"present": False, "path": str(cache_dir)}
    entries = list(iter_cache_files(cache_dir))
    quarantined = list(iter_quarantined_files(cache_dir))
    total_bytes = sum(path.stat().st_size for path in entries)
    by_label: dict[str, int] = {}
    undecodable = 0
    for path in entries:
        try:
            record = decode_cache_entry(path.read_text("utf-8"))
        except (OSError, CacheIntegrityError):
            undecodable += 1
            continue
        by_label[record.label] = by_label.get(record.label, 0) + 1
    artifacts = {}
    for kind, root, _ in ARTIFACT_LAYOUTS:
        live, held = artifact_dirs(root(cache_dir))
        artifacts[kind] = {
            "live": len(live),
            "live_bytes": sum(dir_bytes(path) for path in live),
            "quarantined": len(held),
            "quarantined_bytes": sum(dir_bytes(path) for path in held),
        }
    return {
        "present": True,
        "path": str(cache_dir),
        "records": len(entries),
        "record_bytes": total_bytes,
        "by_label": dict(sorted(by_label.items())),
        "undecodable": undecodable,
        "quarantined": len(quarantined),
        "artifacts": artifacts,
        "manifest": read_manifest(cache_dir),
    }


def _trend_point(snapshot: dict) -> dict:
    """One bench snapshot reduced to what a trend line needs."""
    point = {
        "date": snapshot.get("date"),
        "note": snapshot.get("note", ""),
        "throughput": snapshot.get("throughput", {}),
    }
    sweep = snapshot.get("sweep")
    if isinstance(sweep, dict):
        point["sweep"] = {
            key: sweep[key]
            for key in (
                "cells",
                "wall_s",
                "two_phase_wall_s",
                "speedup",
                "two_phase_speedup",
                "modes",
            )
            if key in sweep
        }
    replay = snapshot.get("replay_kernel")
    if isinstance(replay, dict):
        point["replay_kernel"] = {
            key: replay[key]
            for key in ("speedup", "mismatches")
            if key in replay
        }
    return point


def bench_status(path: str | Path | None) -> dict:
    """Summary of a ``BENCH_throughput.json`` snapshot file."""
    if path is None:
        return {"present": False, "path": None, "snapshots": 0, "trend": []}
    path = Path(path)
    if not path.exists():
        return {
            "present": False,
            "path": str(path),
            "snapshots": 0,
            "trend": [],
        }
    try:
        data = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return {
            "present": False,
            "path": str(path),
            "snapshots": 0,
            "trend": [],
            "error": str(error),
        }
    snapshots = data.get("snapshots", [])
    if not isinstance(snapshots, list):
        snapshots = []
    return {
        "present": True,
        "path": str(path),
        "unit": data.get("unit"),
        "workload": data.get("workload", {}),
        "snapshots": len(snapshots),
        "trend": [
            _trend_point(snapshot)
            for snapshot in snapshots
            if isinstance(snapshot, dict)
        ],
    }
