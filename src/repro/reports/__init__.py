"""Reports subsystem: cached run records rendered as documents.

The consumer layer over the experiment cache (docs/reports.md): the
builder resolves a named grid to cache keys and loads records without
simulating, the exporter renders one report to any of five formats,
the status serializers back ``cache stats --json`` and ``/v1/bench``,
and the dashboard page fronts it all in a browser.
"""

from repro.reports.builder import (
    REPORT_LABELS,
    GridReport,
    ReportCell,
    build_report,
    report_names,
)
from repro.reports.dashboard import DASHBOARD_HTML
from repro.reports.export import (
    CONTENT_TYPES,
    FORMATS,
    REPORT_SCHEMA,
    export_report,
)
from repro.reports.status import bench_status, cache_status

__all__ = [
    "REPORT_LABELS",
    "GridReport",
    "ReportCell",
    "build_report",
    "report_names",
    "DASHBOARD_HTML",
    "CONTENT_TYPES",
    "FORMATS",
    "REPORT_SCHEMA",
    "export_report",
    "bench_status",
    "cache_status",
]
