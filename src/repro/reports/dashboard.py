"""The sweep-service dashboard: one self-contained HTML page.

Served verbatim at ``GET /dashboard``.  Zero dependencies on either
side: the page is a single string (no template engine, no static-file
directory) and the browser side is plain ``fetch`` + ``EventSource``
against the daemon's existing JSON/SSE routes:

* ``/healthz`` and ``/v1/jobs`` are polled for liveness and the job
  table,
* selecting a job subscribes to ``/v1/jobs/<id>/events`` for live
  progress (cells done, the full/recorded/replayed/cached mode mix,
  fabric lease activity),
* ``/v1/bench`` fills the throughput-trend sparkline and cache card,
* ``/v1/reports`` links every report in every format.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>rampage sweep service</title>
<style>
  :root { --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
          --line: #e4e3df; --accent: #2a78d6; --ok: #1baf7a; --warn: #eda100; }
  @media (prefers-color-scheme: dark) {
    :root { --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
            --line: #3a3a38; --accent: #3987e5; --ok: #199e70; --warn: #c98500; }
  }
  body { font-family: system-ui, sans-serif; margin: 0; padding: 1.5rem;
         background: var(--surface); color: var(--ink); }
  h1 { font-size: 1.2rem; margin: 0 0 1rem; }
  h2 { font-size: 0.95rem; margin: 0 0 0.5rem; color: var(--ink-2); }
  .cards { display: flex; flex-wrap: wrap; gap: 1rem; }
  .card { border: 1px solid var(--line); border-radius: 8px; padding: 1rem;
          min-width: 16rem; flex: 1 1 16rem; }
  table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
  th, td { text-align: left; padding: 0.25rem 0.5rem;
           border-bottom: 1px solid var(--line); }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  tr.job { cursor: pointer; }
  tr.job.selected { outline: 2px solid var(--accent); }
  .bar { height: 8px; background: var(--line); border-radius: 4px;
         overflow: hidden; margin: 0.4rem 0; }
  .bar > div { height: 100%; background: var(--accent); width: 0; }
  .modes span { display: inline-block; margin-right: 0.6rem;
                font-size: 0.8rem; color: var(--ink-2); }
  .muted { color: var(--ink-2); font-size: 0.8rem; }
  .pill { display: inline-block; padding: 0 0.5rem; border-radius: 999px;
          font-size: 0.75rem; border: 1px solid var(--line); }
  .pill.ok { color: var(--ok); } .pill.warn { color: var(--warn); }
  a { color: var(--accent); }
  #spark { width: 100%; height: 60px; }
  ul.reports { margin: 0; padding-left: 1.1rem; }
  #log { font-family: ui-monospace, monospace; font-size: 0.75rem;
         max-height: 10rem; overflow-y: auto; white-space: pre-wrap; }
</style>
</head>
<body>
<h1>rampage sweep service
  <span id="health" class="pill">connecting&hellip;</span></h1>
<div class="cards">
  <div class="card">
    <h2>jobs</h2>
    <table><thead><tr><th>id</th><th>status</th><th>cells</th></tr></thead>
      <tbody id="jobs"><tr><td colspan="3" class="muted">none yet</td></tr>
    </tbody></table>
  </div>
  <div class="card">
    <h2>selected job</h2>
    <div id="job-title" class="muted">click a job to follow it live</div>
    <div class="bar"><div id="progress"></div></div>
    <div class="modes" id="modes"></div>
    <div class="muted" id="leases"></div>
    <div id="log"></div>
  </div>
  <div class="card">
    <h2>throughput trend</h2>
    <svg id="spark" viewBox="0 0 300 60" preserveAspectRatio="none"></svg>
    <div class="muted" id="bench-note">no BENCH_throughput.json yet</div>
    <h2 style="margin-top:0.8rem">cache</h2>
    <div class="muted" id="cache"></div>
  </div>
  <div class="card">
    <h2>reports</h2>
    <ul class="reports" id="reports"></ul>
  </div>
</div>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
let selected = null, source = null;

async function getJSON(url) {
  const response = await fetch(url);
  if (!response.ok) throw new Error(url + " -> " + response.status);
  return response.json();
}

async function refreshHealth() {
  try {
    const health = await getJSON("/healthz");
    $("health").textContent = health.status +
      " (queue " + health.admission.active + "/" + health.admission.limit + ")";
    $("health").className = "pill " + (health.status === "ok" ? "ok" : "warn");
  } catch (err) {
    $("health").textContent = "unreachable";
    $("health").className = "pill warn";
  }
}

function jobRow(job) {
  const row = document.createElement("tr");
  row.className = "job" + (job.id === selected ? " selected" : "");
  row.innerHTML = "<td>" + job.id.slice(0, 10) + "&hellip;</td><td>" +
    job.status + "</td><td class='num'>" + job.done + "/" + job.total + "</td>";
  row.onclick = () => follow(job);
  return row;
}

async function refreshJobs() {
  try {
    const jobs = await getJSON("/v1/jobs");
    const body = $("jobs");
    body.replaceChildren();
    if (!jobs.length) {
      body.innerHTML = "<tr><td colspan='3' class='muted'>none yet</td></tr>";
      return;
    }
    jobs.slice().reverse().forEach((job) => body.appendChild(jobRow(job)));
  } catch (err) { /* next poll retries */ }
}

function showProgress(job) {
  const pct = job.total ? (100 * job.done / job.total) : 0;
  $("progress").style.width = pct.toFixed(1) + "%";
  $("job-title").textContent =
    job.id.slice(0, 16) + "… " + job.status + " " +
    job.done + "/" + job.total + " cells";
  const modes = $("modes");
  modes.replaceChildren();
  Object.entries(job.modes || {}).forEach(([mode, count]) => {
    const span = document.createElement("span");
    span.textContent = mode + ": " + count;
    modes.appendChild(span);
  });
  const leases = Object.entries(job.leases || {});
  $("leases").textContent = leases.length
    ? "leases: " + leases.map(([group, info]) =>
        group + "@" + info.worker).join(", ")
    : "";
}

function logLine(text) {
  const log = $("log");
  log.textContent += text + "\\n";
  log.scrollTop = log.scrollHeight;
}

function follow(job) {
  selected = job.id;
  if (source) source.close();
  $("log").textContent = "";
  showProgress(job);
  source = new EventSource("/v1/jobs/" + job.id + "/events");
  source.addEventListener("job", (event) =>
    showProgress(JSON.parse(event.data)));
  source.addEventListener("cell_completed", (event) => {
    const cell = JSON.parse(event.data);
    logLine("[" + cell.done + "/" + cell.total + "] " + cell.key +
      " mode=" + cell.mode);
    refreshJobs();
  });
  ["job_running", "job_completed", "job_failed"].forEach((name) =>
    source.addEventListener(name, (event) => {
      showProgress(JSON.parse(event.data));
      logLine(name);
      refreshJobs();
      if (name !== "job_running") source.close();
    }));
  refreshJobs();
}

function sparkline(points) {
  const svg = $("spark");
  svg.replaceChildren();
  if (!points.length) return;
  const max = Math.max(...points, 1e-9);
  const step = points.length > 1 ? 300 / (points.length - 1) : 0;
  const path = points.map((value, idx) =>
    (idx ? "L" : "M") + (idx * step).toFixed(1) + "," +
    (55 - 50 * value / max).toFixed(1)).join(" ");
  const line = document.createElementNS("http://www.w3.org/2000/svg", "path");
  line.setAttribute("d", path);
  line.setAttribute("fill", "none");
  line.setAttribute("stroke", "var(--accent)");
  line.setAttribute("stroke-width", "2");
  svg.appendChild(line);
}

async function refreshBench() {
  try {
    const status = await getJSON("/v1/bench");
    const bench = status.bench;
    if (bench.present && bench.trend.length) {
      sparkline(bench.trend.map((point) =>
        (point.throughput || {}).rampage || 0));
      const last = bench.trend[bench.trend.length - 1];
      $("bench-note").textContent = bench.snapshots + " snapshots; last " +
        last.date + ((last.note && " (" + last.note + ")") || "");
    }
    const cache = status.cache;
    $("cache").textContent = cache.present
      ? cache.records + " records (" + cache.record_bytes + " bytes), " +
        cache.quarantined + " quarantined"
      : "no cache directory";
  } catch (err) { /* next poll retries */ }
}

async function listReports() {
  try {
    const index = await getJSON("/v1/reports");
    const list = $("reports");
    list.replaceChildren();
    index.reports.forEach((name) => {
      const item = document.createElement("li");
      item.innerHTML = "<a href='/v1/reports/" + name +
        "?format=html'>" + name + "</a> <span class='muted'>" +
        index.formats.map((format) =>
          "<a href='/v1/reports/" + name + "?format=" + format + "'>" +
          format + "</a>").join(" ") + "</span>";
      list.appendChild(item);
    });
  } catch (err) { /* static enough to skip retries */ }
}

refreshHealth(); refreshJobs(); refreshBench(); listReports();
setInterval(refreshHealth, 3000);
setInterval(refreshJobs, 3000);
setInterval(refreshBench, 10000);
</script>
</body>
</html>
"""
