"""Grid-oriented report builder: cached records in, report objects out.

A *report* is a named view over one or more experiment grids (the five
sweep grids of :data:`~repro.experiments.runner.GRID_BUILDERS`, or the
paper's figure groupings).  :func:`build_report` resolves the name to
its cell cache keys -- the same derivation the runner and the service
planner use -- then loads whatever records already exist through the
sharded/legacy-federated cache (:func:`~repro.experiments.runner.find_record`).

The contract the exporters and the HTTP route rely on:

* **Zero simulation work.**  Building a report only derives keys and
  reads files; a warm cache serves any report without touching the
  simulator, a cold one yields an all-gaps report, never a sweep.
* **Partial grids are data, not errors.**  A cell whose record is
  missing (or fails envelope validation) becomes an explicit gap;
  :attr:`GridReport.completeness` quantifies how much of the report is
  backed by records.  Loading is strictly read-only -- a corrupt file
  is reported as a gap but left in place for ``cache verify``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.figures_svg import FIGURE_GRID_LABELS
from repro.analysis.runtime import RunGrid, RunRecord
from repro.core.errors import CacheIntegrityError, ConfigurationError
from repro.core.observe import EventLog
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    GRID_BUILDERS,
    Runner,
    decode_cache_entry,
    find_record,
)

#: Report name -> the grid labels whose cells it covers.  Every sweep
#: grid is its own report; the figure reports group the grids the
#: paper's figures compare.
REPORT_LABELS: dict[str, tuple[str, ...]] = {
    **{label: (label,) for label in GRID_BUILDERS},
    "figure2": ("baseline", "rampage"),
    "figure3": ("baseline", "rampage"),
    "figure4": ("baseline", "rampage"),
    "figure5": ("rampage_som", "twoway"),
    "figures": FIGURE_GRID_LABELS,
}


def report_names() -> list[str]:
    """Every report name :func:`build_report` accepts, sorted."""
    return sorted(REPORT_LABELS)


@dataclass(frozen=True)
class ReportCell:
    """One grid cell of a report: identity plus its record, if cached."""

    label: str
    key: str
    kind: str
    issue_rate_hz: int
    size_bytes: int
    record: RunRecord | None

    @property
    def present(self) -> bool:
        return self.record is not None

    def as_dict(self, with_record: bool = True) -> dict:
        payload = {
            "label": self.label,
            "key": self.key,
            "kind": self.kind,
            "issue_rate_hz": self.issue_rate_hz,
            "size_bytes": self.size_bytes,
            "present": self.present,
        }
        if with_record:
            payload["record"] = (
                self.record.as_dict() if self.record is not None else None
            )
        return payload


@dataclass
class GridReport:
    """A named report over one or more grids, tolerant of gaps."""

    name: str
    labels: tuple[str, ...]
    config: ExperimentConfig
    cells: list[ReportCell]

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def present(self) -> int:
        return sum(1 for cell in self.cells if cell.present)

    @property
    def completeness(self) -> float:
        """Fraction of the report's cells backed by cached records."""
        return self.present / self.total if self.total else 0.0

    @property
    def complete(self) -> bool:
        return self.present == self.total

    def missing(self) -> list[ReportCell]:
        """The gap cells, in grid order."""
        return [cell for cell in self.cells if not cell.present]

    def label_cells(self, label: str) -> list[ReportCell]:
        return [cell for cell in self.cells if cell.label == label]

    def grid(self, label: str) -> RunGrid:
        """The (possibly partial) :class:`RunGrid` of one label."""
        grid = RunGrid(label)
        for cell in self.label_cells(label):
            if cell.record is not None:
                grid.add(cell.record)
        return grid

    def grids(self) -> dict[str, RunGrid]:
        return {label: self.grid(label) for label in self.labels}

    def completeness_payload(self) -> dict:
        """The machine-readable completeness summary (409 body, JSON)."""
        return {
            "report": self.name,
            "labels": list(self.labels),
            "total": self.total,
            "present": self.present,
            "completeness": round(self.completeness, 6),
            "missing": [cell.as_dict(with_record=False) for cell in self.missing()],
        }


def _load_record(config: ExperimentConfig, key: str, label: str) -> RunRecord | None:
    """Read one cached record, or ``None`` for any kind of miss.

    Strictly read-only: a file that fails envelope validation is a gap
    here (``cache verify`` still sees it), unlike the runner's
    quarantine-and-recompute path.  A hit computed under another grid
    label is relabelled on read, mirroring :meth:`Runner.record`.
    """
    if config.cache_dir is None:
        return None
    path = find_record(config.cache_dir, key)
    if path is None:
        return None
    try:
        text = path.read_text("utf-8")
    except OSError:
        return None
    try:
        record = decode_cache_entry(text)
    except CacheIntegrityError:
        return None
    if record.label != label:
        record = replace(record, label=label)
    return record


def build_report(name: str, config: ExperimentConfig) -> GridReport:
    """Resolve ``name`` to its cells and load whatever records exist.

    Raises :class:`ConfigurationError` for an unknown report name (the
    HTTP layer maps that to a 404).  Never simulates: the throwaway
    runner is used purely for grid enumeration and cache-key
    derivation, exactly like the service's job planner.
    """
    labels = REPORT_LABELS.get(name)
    if labels is None:
        raise ConfigurationError(
            f"unknown report {name!r}; known: {report_names()}"
        )
    runner = Runner(config, events=EventLog(None))
    cells: list[ReportCell] = []
    for label in labels:
        for params in runner.grid_params(label):
            key = runner._cache_key(params)
            cells.append(
                ReportCell(
                    label=label,
                    key=key,
                    kind=params.kind,
                    issue_rate_hz=params.issue_rate_hz,
                    size_bytes=params.transfer_unit_bytes,
                    record=_load_record(config, key, label),
                )
            )
    return GridReport(name=name, labels=labels, config=config, cells=cells)
