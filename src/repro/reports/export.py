"""Single format-dispatch exporter: one report, five output formats.

:func:`export_report` turns a :class:`~repro.reports.builder.GridReport`
into bytes in any of :data:`FORMATS`.  All formats share the same gap
semantics: a missing cell shows up as an explicit hole (``null`` record
in JSON, empty metric columns in CSV, an em-dash in the tables, a
placeholder panel in SVG) and the document carries the report's
completeness ratio -- a partial cache never makes an export fail.

Exports are deliberately timestamp-free so the same cache state always
produces the same bytes, whichever path rendered it (offline CLI,
``--server`` CLI, or a direct HTTP GET).
"""

from __future__ import annotations

import csv
import io
import json

from repro.analysis.figures_svg import (
    FIGURE_LEVELS,
    figure4_chart,
    figure5_chart,
    figure23_panel,
    stacked_fraction_panel,
)
from repro.analysis.fractions import level_fraction_rows
from repro.analysis.report import format_rate
from repro.core.errors import ConfigurationError
from repro.reports.builder import GridReport, ReportCell

#: Envelope identifier carried by the JSON export.
REPORT_SCHEMA = "rampage-report/1"

#: Formats :func:`export_report` understands, in documentation order.
FORMATS = ("svg", "html", "json", "md", "csv")

#: HTTP Content-Type per format.
CONTENT_TYPES = {
    "svg": "image/svg+xml",
    "html": "text/html; charset=utf-8",
    "json": "application/json",
    "md": "text/markdown; charset=utf-8",
    "csv": "text/csv; charset=utf-8",
}

_GAP = "—"  # em dash: the tables' explicit missing-cell marker

# Panel geometry shared by the SVG composition (the figure panels are
# 560x340 or 560x360; the composition cell is the larger of the two).
_PANEL_W = 560
_PANEL_H = 360
_HEADER_H = 40


def export_report(report: GridReport, fmt: str) -> bytes:
    """Render ``report`` as ``fmt`` bytes; raises on unknown formats."""
    try:
        render = _RENDERERS[fmt]
    except KeyError:
        raise ConfigurationError(
            f"unknown report format {fmt!r}; known: {list(FORMATS)}"
        ) from None
    return render(report).encode("utf-8")


# --------------------------------------------------------------------------
# shared helpers


def _workload_dict(report: GridReport) -> dict:
    config = report.config
    return {
        "scale": config.scale,
        "slice_refs": config.slice_refs,
        "issue_rates": list(config.issue_rates),
        "sizes": list(config.sizes),
        "seed": config.seed,
    }


def _completeness_line(report: GridReport) -> str:
    return (
        f"{report.present}/{report.total} cells cached "
        f"(completeness {report.completeness:.3f})"
    )


def _cell_metrics(cell: ReportCell) -> dict:
    """The per-cell metric columns CSV and HTML tables share."""
    record = cell.record
    if record is None:
        return {
            "seconds": "",
            "time_ps": "",
            "workload_refs": "",
            "overhead_ratio": "",
            "dram_fraction": "",
        }
    return {
        "seconds": f"{record.seconds:.6f}",
        "time_ps": record.time_ps,
        "workload_refs": record.workload_refs,
        "overhead_ratio": f"{record.overhead_ratio:.6f}",
        "dram_fraction": f"{record.level_fractions.get('dram', 0.0):.6f}",
    }


def _seconds_grid(
    report: GridReport, label: str
) -> tuple[list[int], list[int], dict[tuple[int, int], ReportCell]]:
    """Rate rows x size columns for one label's seconds table."""
    cells = report.label_cells(label)
    rates = sorted({cell.issue_rate_hz for cell in cells})
    sizes = sorted({cell.size_bytes for cell in cells})
    by_axis = {(cell.issue_rate_hz, cell.size_bytes): cell for cell in cells}
    return rates, sizes, by_axis


# --------------------------------------------------------------------------
# svg


def _gap_panel(title: str, detail: str) -> str:
    """Placeholder panel where a figure could not be drawn (gap cells)."""
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_PANEL_W}" '
        f'height="{_PANEL_H}" viewBox="0 0 {_PANEL_W} {_PANEL_H}" role="img">\n'
        f'<rect x="0" y="0" width="{_PANEL_W}" height="{_PANEL_H}" '
        f'fill="none" stroke="#b9b8b3" stroke-dasharray="6 4"/>\n'
        f'<text x="{_PANEL_W // 2}" y="{_PANEL_H // 2 - 10}" font-size="14" '
        f'font-weight="600" text-anchor="middle" fill="#52514e" '
        f'font-family="system-ui, sans-serif">{title}</text>\n'
        f'<text x="{_PANEL_W // 2}" y="{_PANEL_H // 2 + 14}" font-size="12" '
        f'text-anchor="middle" fill="#52514e" '
        f'font-family="system-ui, sans-serif">{detail}</text>\n'
        f"</svg>\n"
    )


def _figure_panels(report: GridReport) -> list[str]:
    """The report's panels in canonical order, gaps as placeholders."""
    grids = report.grids()
    config = report.config
    panels: list[str] = []

    def attempt(title: str, draw) -> None:
        try:
            panels.append(draw())
        except (ConfigurationError, ValueError):
            panels.append(_gap_panel(title, "missing records for this panel"))

    def figure23(fig_name: str, rate: int) -> None:
        for grid_label in ("baseline", "rampage"):
            attempt(
                f"{fig_name}: {grid_label}, {format_rate(rate)}",
                lambda gl=grid_label: figure23_panel(
                    grids[gl], rate, fig_name, gl
                ),
            )

    name = report.name
    if name in ("figure2", "figures"):
        figure23("figure2", config.slow_rate)
    if name in ("figure3", "figures"):
        figure23("figure3", config.fast_rate)
    if name in ("figure4", "figures"):
        attempt(
            f"figure4: handler overhead, {format_rate(config.slow_rate)}",
            lambda: figure4_chart(grids, config.slow_rate),
        )
    if name in ("figure5", "figures"):
        for rate in config.issue_rates:
            attempt(
                f"figure5: slowdown vs best, {format_rate(rate)}",
                lambda r=rate: figure5_chart(grids, r),
            )
    if name not in ("figure2", "figure3", "figure4", "figure5", "figures"):
        # A plain sweep grid: one stacked time-fraction panel per rate.
        sram_label = "SRAM" if name.startswith("rampage") else "L2"
        grid = grids[name]
        for rate in config.issue_rates:
            attempt(
                f"{name}: {format_rate(rate)}",
                lambda r=rate: stacked_fraction_panel(
                    level_fraction_rows(grid, r),
                    FIGURE_LEVELS,
                    title=f"{name}: {format_rate(r)}",
                    sram_label=sram_label,
                ),
            )
    return panels


def _render_svg(report: GridReport) -> str:
    """All panels composed into one two-column SVG document.

    Each panel is a complete standalone ``<svg>`` placed via a
    translated ``<g>``; their ``<style>`` blocks are document-scoped
    but identical, so the collision is harmless.
    """
    panels = _figure_panels(report)
    columns = 2 if len(panels) > 1 else 1
    rows = (len(panels) + columns - 1) // columns
    width = columns * _PANEL_W
    height = _HEADER_H + rows * _PANEL_H
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" role="img">',
        f'<text x="12" y="26" font-size="16" font-weight="700" '
        f'font-family="system-ui, sans-serif">report: {report.name} '
        f"&#8212; {_completeness_line(report)}</text>",
    ]
    for idx, panel in enumerate(panels):
        x = (idx % columns) * _PANEL_W
        y = _HEADER_H + (idx // columns) * _PANEL_H
        parts.append(f'<g transform="translate({x},{y})">\n{panel}</g>')
    parts.append("</svg>\n")
    return "\n".join(parts)


# --------------------------------------------------------------------------
# json


def _render_json(report: GridReport) -> str:
    payload = {
        "schema": REPORT_SCHEMA,
        "report": report.name,
        "labels": list(report.labels),
        "workload": _workload_dict(report),
        "total": report.total,
        "present": report.present,
        "completeness": round(report.completeness, 6),
        "missing": [cell.as_dict(with_record=False) for cell in report.missing()],
        "cells": [cell.as_dict() for cell in report.cells],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# --------------------------------------------------------------------------
# csv


def _render_csv(report: GridReport) -> str:
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(
        [
            "label",
            "key",
            "kind",
            "issue_rate_hz",
            "size_bytes",
            "present",
            "seconds",
            "time_ps",
            "workload_refs",
            "overhead_ratio",
            "dram_fraction",
        ]
    )
    for cell in report.cells:
        metrics = _cell_metrics(cell)
        writer.writerow(
            [
                cell.label,
                cell.key,
                cell.kind,
                cell.issue_rate_hz,
                cell.size_bytes,
                str(cell.present).lower(),
                metrics["seconds"],
                metrics["time_ps"],
                metrics["workload_refs"],
                metrics["overhead_ratio"],
                metrics["dram_fraction"],
            ]
        )
    return out.getvalue()


# --------------------------------------------------------------------------
# md


def _seconds_table_md(report: GridReport, label: str) -> list[str]:
    rates, sizes, by_axis = _seconds_grid(report, label)
    lines = [f"### `{label}` (simulated seconds)", ""]
    lines.append("| issue rate | " + " | ".join(f"{s} B" for s in sizes) + " |")
    lines.append("|---" * (len(sizes) + 1) + "|")
    for rate in rates:
        row = [format_rate(rate)]
        for size in sizes:
            cell = by_axis.get((rate, size))
            if cell is None or cell.record is None:
                row.append(_GAP)
            else:
                row.append(f"{cell.record.seconds:.6f}")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


def _render_md(report: GridReport) -> str:
    workload = _workload_dict(report)
    lines = [
        f"# Report `{report.name}`",
        "",
        f"Grids: {', '.join(f'`{label}`' for label in report.labels)}.",
        f"Completeness: {_completeness_line(report)}.",
        (
            f"Workload: scale {workload['scale']}, "
            f"slice {workload['slice_refs']} refs, seed {workload['seed']}."
        ),
        "",
    ]
    for label in report.labels:
        lines.extend(_seconds_table_md(report, label))
    missing = report.missing()
    if missing:
        lines.append("## Missing cells")
        lines.append("")
        for cell in missing:
            lines.append(
                f"- `{cell.label}` {format_rate(cell.issue_rate_hz)} "
                f"x {cell.size_bytes} B (key `{cell.key}`)"
            )
        lines.append("")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# html


def _seconds_table_html(report: GridReport, label: str) -> list[str]:
    rates, sizes, by_axis = _seconds_grid(report, label)
    lines = [f"<h3><code>{label}</code> (simulated seconds)</h3>", "<table>"]
    lines.append(
        "<tr><th>issue rate</th>"
        + "".join(f"<th>{size} B</th>" for size in sizes)
        + "</tr>"
    )
    for rate in rates:
        cells = []
        for size in sizes:
            cell = by_axis.get((rate, size))
            if cell is None or cell.record is None:
                cells.append(f'<td class="gap">{_GAP}</td>')
            else:
                cells.append(f"<td>{cell.record.seconds:.6f}</td>")
        lines.append(f"<tr><th>{format_rate(rate)}</th>" + "".join(cells) + "</tr>")
    lines.append("</table>")
    return lines


def _render_html(report: GridReport) -> str:
    lines = [
        "<!doctype html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>rampage report: {report.name}</title>",
        "<style>",
        "  body { font-family: system-ui, sans-serif; margin: 2rem;"
        " color: #0b0b0b; background: #fcfcfb; }",
        "  table { border-collapse: collapse; margin: 0.5rem 0 1.5rem; }",
        "  th, td { border: 1px solid #d8d7d2; padding: 0.3rem 0.7rem;"
        " text-align: right; font-variant-numeric: tabular-nums; }",
        "  td.gap { color: #a8a7a1; text-align: center; }",
        "  figure { margin: 1rem 0; overflow-x: auto; }",
        "  @media (prefers-color-scheme: dark) {"
        " body { color: #ffffff; background: #1a1a19; }"
        " th, td { border-color: #3a3a38; } }",
        "</style>",
        "</head>",
        "<body>",
        f"<h1>Report <code>{report.name}</code></h1>",
        f"<p>{_completeness_line(report)}</p>",
        "<figure>",
        _render_svg(report).rstrip("\n"),
        "</figure>",
    ]
    for label in report.labels:
        lines.extend(_seconds_table_html(report, label))
    missing = report.missing()
    if missing:
        lines.append("<h2>Missing cells</h2>")
        lines.append("<ul>")
        for cell in missing:
            lines.append(
                f"<li><code>{cell.label}</code> "
                f"{format_rate(cell.issue_rate_hz)} x {cell.size_bytes} B "
                f"(key <code>{cell.key}</code>)</li>"
            )
        lines.append("</ul>")
    lines.extend(["</body>", "</html>", ""])
    return "\n".join(lines)


_RENDERERS = {
    "svg": _render_svg,
    "html": _render_html,
    "json": _render_json,
    "md": _render_md,
    "csv": _render_csv,
}
