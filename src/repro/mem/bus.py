"""CPU <-> L2/SRAM bus timing derivation.

Section 4.4: "the bus connecting the L2 cache to the CPU is 128 bits
wide and runs at one third of the CPU clock rate ... Hits on the L2
cache take 4 cycles including the tag check and transfer to Ll."

The 12-CPU-cycle L1 miss penalty used throughout (``L1Params``) is not
an arbitrary constant -- it is the bus arithmetic: a 32-byte L1 block
over a 16-byte bus is 2 data beats, plus 2 beats of command/tag
overhead, at 3 CPU cycles per bus beat = (2 + 2) x 3 = 12.  This module
makes that derivation explicit so alternative bus widths or block sizes
produce consistent penalties, and the test suite pins the default
parameters to the paper's numbers.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.params import BusParams, L1Params

#: Bus beats of command/tag overhead per transaction (address + tag
#: check on the paper's 4-beat L2 hit).
OVERHEAD_BEATS = 2

#: Overhead beats for a RAMpage writeback: one beat less, since there
#: is no L2 tag to check/update (the paper's 9-cycle writeback = 3
#: beats x 3).
RAMPAGE_WRITEBACK_OVERHEAD_BEATS = 1


def transfer_cycles(
    bus: BusParams, nbytes: int, overhead_beats: int = OVERHEAD_BEATS
) -> int:
    """CPU cycles to move ``nbytes`` across the bus, with overhead."""
    if nbytes <= 0:
        raise ConfigurationError(f"nbytes must be positive, got {nbytes}")
    if overhead_beats < 0:
        raise ConfigurationError("overhead_beats must be >= 0")
    data_beats = -(-nbytes // bus.width_bytes)
    return (data_beats + overhead_beats) * bus.cpu_clock_divisor


def derived_miss_penalty_cycles(bus: BusParams, l1: L1Params) -> int:
    """The L1 miss penalty the bus geometry implies."""
    return transfer_cycles(bus, l1.block_bytes, OVERHEAD_BEATS)


def derived_rampage_writeback_cycles(bus: BusParams, l1: L1Params) -> int:
    """The RAMpage L1 writeback cost the bus geometry implies."""
    return transfer_cycles(bus, l1.block_bytes, RAMPAGE_WRITEBACK_OVERHEAD_BEATS)


def check_consistency(bus: BusParams, l1: L1Params) -> None:
    """Raise when the explicit L1 penalties contradict the bus model.

    Systems call this at construction so a user who widens the bus or
    the L1 block without adjusting the cycle constants gets a clear
    error instead of silently inconsistent timing.
    """
    expected = derived_miss_penalty_cycles(bus, l1)
    if l1.miss_penalty_cycles != expected:
        raise ConfigurationError(
            f"L1 miss penalty {l1.miss_penalty_cycles} cycles contradicts "
            f"the bus model ({expected} cycles for {l1.block_bytes}-byte "
            f"blocks over a {bus.width_bits}-bit bus at CPU/"
            f"{bus.cpu_clock_divisor}); adjust L1Params or BusParams"
        )
    expected_wb = derived_rampage_writeback_cycles(bus, l1)
    if l1.rampage_writeback_cycles != expected_wb:
        raise ConfigurationError(
            f"RAMpage writeback {l1.rampage_writeback_cycles} cycles "
            f"contradicts the bus model ({expected_wb} cycles)"
        )
