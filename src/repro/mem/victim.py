"""Small fully associative victim buffer (Jouppi-style victim cache).

Section 3.2 of the paper lists the victim cache as a hardware technique
that "can reduce misses without adding to the complexity of achieving
fast hits".  The ablation benchmarks attach one to the conventional L2
to quantify how much of RAMpage's associativity win such a buffer
recovers.

Replacement is FIFO over recently evicted blocks; a hit swaps the block
back into the cache proper.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.errors import ConfigurationError, SimulationError


class VictimBuffer:
    """FIFO buffer of ``(block_num -> dirty)`` entries."""

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup_remove(self, block_num: int) -> bool | None:
        """On a cache miss: fetch the block out of the buffer if present.

        Returns its dirty bit, or None on a buffer miss.
        """
        if not self.enabled:
            return None
        dirty = self._entries.pop(block_num, None)
        if dirty is None:
            self.misses += 1
            return None
        self.hits += 1
        return dirty

    def insert(self, block_num: int, dirty: bool) -> tuple[int, bool] | None:
        """Park an evicted block; returns a displaced ``(block, dirty)``.

        The displaced block is the oldest entry; a dirty displaced block
        must be written back to DRAM by the caller.
        """
        if not self.enabled:
            raise SimulationError("victim buffer is disabled (capacity 0)")
        if block_num in self._entries:
            raise SimulationError(f"block {block_num:#x} already buffered")
        self._entries[block_num] = dirty
        if len(self._entries) > self.capacity:
            self.evictions += 1
            old_block, old_dirty = self._entries.popitem(last=False)
            return old_block, old_dirty
        return None

    def contains(self, block_num: int) -> bool:
        return block_num in self._entries
