"""The RAMpage SRAM main memory.

The defining structure of the paper: the lowest SRAM level managed as a
paged, byte-addressed main memory (section 2.2).  This module owns the
placement state -- which virtual page sits in which SRAM frame -- and
the replacement machinery:

* an :class:`~repro.mem.inverted_page_table.InvertedPageTable` over the
  SRAM frames (translation + probe counts for handler costs),
* a :class:`~repro.mem.replacement.ClockReplacer` over the non-pinned
  frames (section 4.5's "standard clock algorithm"),
* frames ``[0, pinned_frames)`` reserved for the OS: handler code/data
  and the page table itself, pinned so that TLB misses and page faults
  never recurse into DRAM (sections 2.2-2.3, 4.5-4.6),
* an optional :class:`~repro.mem.replacement.StandbyList` implementing
  the section 3.2 victim-cache analogue.

Timing is charged by :class:`repro.systems.rampage.RampageSystem`; this
class reports *what happened* (victims, scan lengths, soft faults).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.core.params import RampageParams
from repro.mem.inverted_page_table import FREE, InvertedPageTable
from repro.mem.replacement import ClockReplacer, StandbyList


@dataclass(frozen=True)
class FaultOutcome:
    """What a page fault did.

    ``frame`` now holds the faulting page.  ``unmapped_vpn`` is a page
    that lost its SRAM translation this fault (its TLB entry must be
    flushed and its L1 blocks invalidated); ``writeback_vpn`` is a dirty
    page whose contents must go to DRAM (with ``writeback_frame`` naming
    the frame it occupied, for L1 flushing).  ``scanned`` is the clock
    scan length and ``soft`` marks a standby-list reclaim that avoided
    DRAM entirely.
    """

    frame: int
    unmapped_vpn: int | None
    writeback_vpn: int | None
    writeback_frame: int | None
    scanned: int
    soft: bool
    #: True when ``frame`` previously held another page, whose L1 blocks
    #: must be flushed before the frame is reused.
    reused: bool = False
    #: The page whose copy in ``frame`` is destroyed by the reuse (equal
    #: to ``unmapped_vpn`` on the direct path; the long-parked page on
    #: the standby path; None when a free frame was used).  Virtual-L1
    #: machines flush this page's lines even when it was clean.
    discarded_vpn: int | None = None


class SramMainMemory:
    """Paged SRAM main memory with clock replacement and pinned OS frames."""

    def __init__(self, params: RampageParams) -> None:
        self.params = params
        self.page_bytes = params.page_bytes
        self.page_bits = params.page_bytes.bit_length() - 1
        self.num_frames = params.num_frames
        self.pinned_frames = params.pinned_frames
        self.ipt = InvertedPageTable(self.num_frames)
        self.clock = ClockReplacer(
            params.user_frames, first_frame=self.pinned_frames
        )
        self._free = deque(range(self.pinned_frames, self.num_frames))
        self._dirty = bytearray(self.num_frames)
        self.standby = StandbyList(params.standby_pages)
        # With a standby list, its capacity in frames is reserved up
        # front: parked pages keep their frames, so the active set runs
        # `standby_pages` smaller and the list can fill without
        # cannibalising the page it just parked.
        self._reserve: deque[int] = deque()
        if self.standby.enabled:
            if params.standby_pages >= len(self._free):
                raise SimulationError(
                    "standby list cannot reserve more frames than exist"
                )
            for _ in range(params.standby_pages):
                frame = self._free.pop()
                # Reserved and parked frames hold no active page; pin
                # them so the clock hand never selects them.
                self.clock.pin(frame)
                self._reserve.append(frame)
        self.faults = 0
        self.soft_faults = 0

    # ------------------------------------------------------------------
    # Translation and access bookkeeping
    # ------------------------------------------------------------------

    def translate(self, vpn: int) -> tuple[int, int]:
        """Return ``(frame, probes)``; frame is -1 when not resident."""
        return self.ipt.lookup(vpn)

    def is_resident(self, vpn: int) -> bool:
        frame, _ = self.ipt.lookup(vpn)
        return frame != FREE

    def touch(self, frame: int) -> None:
        """Record a use of ``frame`` for the clock's referenced bit."""
        if frame >= self.pinned_frames:
            self.clock.touch(frame)

    def mark_dirty(self, frame: int) -> None:
        self._dirty[frame] = 1

    def is_dirty(self, frame: int) -> bool:
        return bool(self._dirty[frame])

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------

    def fault(self, vpn: int) -> FaultOutcome:
        """Bring ``vpn`` in; decide victim/writeback per the policy.

        The caller (the RAMpage system) charges handler software, DRAM
        transfers for the fetch and any writeback, TLB flushes and L1
        invalidations based on the returned outcome.
        """
        self.faults += 1

        if self.standby.enabled:
            parked_frame = self.standby.reclaim(vpn)
            if parked_frame is not None:
                # Soft fault: the page's contents are still in its frame.
                self.ipt.insert(vpn, parked_frame)
                self.clock.unpin(parked_frame)
                self.clock.touch(parked_frame)
                self.soft_faults += 1
                return FaultOutcome(
                    frame=parked_frame,
                    unmapped_vpn=None,
                    writeback_vpn=None,
                    writeback_frame=None,
                    scanned=0,
                    soft=True,
                    reused=False,
                )

        if self._free:
            frame = self._free.popleft()
            self._install(vpn, frame)
            return FaultOutcome(
                frame=frame,
                unmapped_vpn=None,
                writeback_vpn=None,
                writeback_frame=None,
                scanned=0,
                soft=False,
                reused=False,
            )

        if self.standby.enabled:
            return self._fault_with_standby(vpn)
        return self._fault_direct(vpn)

    def _fault_direct(self, vpn: int) -> FaultOutcome:
        frame, scanned = self.clock.choose_victim()
        victim_vpn, _ = self.ipt.remove_frame(frame)
        victim_dirty = bool(self._dirty[frame])
        victim_frame = frame
        self._install(vpn, frame)
        return FaultOutcome(
            frame=frame,
            unmapped_vpn=victim_vpn,
            writeback_vpn=victim_vpn if victim_dirty else None,
            writeback_frame=victim_frame if victim_dirty else None,
            scanned=scanned,
            soft=False,
            reused=True,
            discarded_vpn=victim_vpn,
        )

    def _fault_with_standby(self, vpn: int) -> FaultOutcome:
        # The clock hand demotes an active page to the standby list
        # (keeping its frame); the new page's frame comes from the
        # reserved pool while the list fills, and thereafter from the
        # page that has been parked the longest -- which is the one
        # truly discarded.
        victim_frame, scanned = self.clock.choose_victim()
        victim_vpn, _ = self.ipt.remove_frame(victim_frame)
        self.clock.pin(victim_frame)  # parked: out of the clock's reach
        if self._reserve:
            frame = self._reserve.popleft()
            self.clock.unpin(frame)
            displaced = self.standby.park(victim_vpn, victim_frame)
            if displaced is not None:  # pragma: no cover - sized to fit
                raise SimulationError("standby displaced while reserve held frames")
            self._install(vpn, frame)
            return FaultOutcome(
                frame=frame,
                unmapped_vpn=victim_vpn,
                writeback_vpn=None,
                writeback_frame=None,
                scanned=scanned,
                soft=False,
                reused=False,
            )
        displaced = self.standby.park(victim_vpn, victim_frame)
        if displaced is None:
            # Soft faults shrank the list below capacity: discard the
            # oldest parked page instead.
            displaced = self.standby.pop_oldest()
            if displaced is None:  # pragma: no cover - park() guarantees one
                raise SimulationError("standby list empty after park")
        discard_vpn, frame = displaced
        discard_dirty = bool(self._dirty[frame])
        self.clock.unpin(frame)
        self._install(vpn, frame)
        return FaultOutcome(
            frame=frame,
            unmapped_vpn=victim_vpn,
            writeback_vpn=discard_vpn if discard_dirty else None,
            writeback_frame=frame if discard_dirty else None,
            scanned=scanned,
            soft=False,
            reused=True,
            discarded_vpn=discard_vpn,
        )

    def _install(self, vpn: int, frame: int) -> None:
        self.ipt.insert(vpn, frame)
        self._dirty[frame] = 0
        if frame >= self.pinned_frames:
            self.clock.touch(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def user_frames(self) -> int:
        return self.num_frames - self.pinned_frames

    def resident_pages(self) -> int:
        """Pages currently mapped (excludes parked standby pages)."""
        return self.ipt.entries

    def free_frames(self) -> int:
        return len(self._free)

    def check_invariants(self) -> None:
        """Cross-check table, free list and standby state."""
        self.ipt.check_invariants()
        mapped_frames = {
            frame
            for frame in range(self.num_frames)
            if self.ipt.vpn_of(frame) != FREE
        }
        free_frames = set(self._free)
        if mapped_frames & free_frames:
            raise SimulationError("frame simultaneously mapped and free")
        parked_frames = {
            self.standby._entries[vpn] for vpn in self.standby._entries
        }
        reserve_frames = set(self._reserve)
        groups = [mapped_frames, free_frames, parked_frames, reserve_frames]
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1 :]:
                if group_a & group_b:
                    raise SimulationError("frame double-booked across pools")
        accounted = sum(len(group) for group in groups)
        if accounted != self.user_frames:
            raise SimulationError(
                f"frames unaccounted for: {accounted} of {self.user_frames}"
            )
