"""Translation lookaside buffer.

The paper's TLB is 64-entry, fully associative, with random replacement
(section 4.3); the section 6.3 ablation uses a 1K-entry 2-way TLB.  Both
shapes are supported: ``associativity == 0`` in
:class:`~repro.core.params.TlbParams` means fully associative.

In the conventional machine the TLB caches virtual -> DRAM-frame
translations; in RAMpage it caches virtual -> SRAM-frame translations
and an entry must be flushed when its SRAM page is replaced
(section 2.3) -- hence :meth:`flush_vpn`.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.params import TlbParams
from repro.core.rng import XorShiftRNG


class TLB:
    """Set-associative translation cache with random replacement.

    Each set is a dict (vpn -> frame) plus a parallel key list so a
    random victim can be chosen in O(1).
    """

    __slots__ = ("params", "ways", "num_sets", "_set_mask", "_maps", "_keys", "_rng",
                 "hits", "misses", "flushes")

    def __init__(self, params: TlbParams, rng: XorShiftRNG | None = None) -> None:
        self.params = params
        self.ways = params.ways
        self.num_sets = params.num_sets
        self._set_mask = self.num_sets - 1
        self._maps: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._keys: list[list[int]] = [[] for _ in range(self.num_sets)]
        self._rng = rng if rng is not None else XorShiftRNG()
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def _set_of(self, vpn: int) -> int:
        # Hashed set index (64-bit Fibonacci mix, high bits), the
        # ASID-hashed indexing style real set-associative TLBs use:
        # multiprogrammed processes share virtual region bases (every
        # stack lives at the same vaddr), so indexing by low vpn bits
        # alone would pile all 18 processes' hot pages onto the same
        # sets.  Taking high product bits makes the process-id bits
        # (the vpn's high bits) participate in the index.
        return (((vpn * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF) >> 48) & self._set_mask

    def lookup(self, vpn: int) -> int | None:
        """Return the frame for ``vpn`` or None; counts hit/miss."""
        frame = self._maps[self._set_of(vpn)].get(vpn)
        if frame is None:
            self.misses += 1
        else:
            self.hits += 1
        return frame

    def peek(self, vpn: int) -> int | None:
        """Lookup without touching the statistics (for invariants)."""
        return self._maps[self._set_of(vpn)].get(vpn)

    def insert(self, vpn: int, frame: int) -> int | None:
        """Install a translation; return the evicted vpn, if any."""
        set_idx = self._set_of(vpn)
        mapping = self._maps[set_idx]
        keys = self._keys[set_idx]
        if vpn in mapping:
            mapping[vpn] = frame
            return None
        evicted = None
        if len(keys) >= self.ways:
            victim_idx = self._rng.below(len(keys)) if len(keys) > 1 else 0
            evicted = keys[victim_idx]
            keys[victim_idx] = keys[-1]
            keys.pop()
            del mapping[evicted]
        mapping[vpn] = frame
        keys.append(vpn)
        return evicted

    def flush_vpn(self, vpn: int) -> bool:
        """Drop ``vpn``'s entry (page replaced under it); True if present."""
        set_idx = self._set_of(vpn)
        mapping = self._maps[set_idx]
        if vpn not in mapping:
            return False
        del mapping[vpn]
        keys = self._keys[set_idx]
        idx = keys.index(vpn)
        keys[idx] = keys[-1]
        keys.pop()
        self.flushes += 1
        return True

    def flush_all(self) -> int:
        """Empty the TLB; returns the number of entries dropped."""
        dropped = sum(len(keys) for keys in self._keys)
        for mapping in self._maps:
            mapping.clear()
        for keys in self._keys:
            keys.clear()
        self.flushes += dropped
        return dropped

    def __len__(self) -> int:
        return sum(len(keys) for keys in self._keys)

    def check_invariants(self) -> None:
        """Raise :class:`SimulationError` if internal state is corrupt."""
        for set_idx, (mapping, keys) in enumerate(zip(self._maps, self._keys)):
            if len(mapping) != len(keys):
                raise SimulationError(
                    f"TLB set {set_idx}: dict/key-list length mismatch"
                )
            if len(keys) > self.ways:
                raise SimulationError(f"TLB set {set_idx} over capacity")
            if set(keys) != set(mapping):
                raise SimulationError(f"TLB set {set_idx}: key list out of sync")
            for vpn in keys:
                if self._set_of(vpn) != set_idx:
                    raise SimulationError(
                        f"vpn {vpn:#x} stored in wrong TLB set {set_idx}"
                    )
