"""Hash-anchored inverted page table.

RAMpage translates with an inverted page table -- one entry per physical
frame, found through a hash anchor table (paper section 2.2, citing
Huck & Hays).  The structure is implemented for real, not approximated,
because the *probe count* of each lookup feeds the TLB-miss handler cost
model: a longer chain means more handler references.

Layout: ``anchor[h(vpn)]`` heads a singly linked chain of frame indices;
``frame_vpn[f]`` holds the vpn mapped to frame ``f`` (-1 when free) and
``chain[f]`` links frames whose vpns share a bucket.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError, SimulationError

_HASH_MULT = 2654435761  # Knuth multiplicative hash
FREE = -1


def _next_pow2(value: int) -> int:
    result = 1
    while result < value:
        result <<= 1
    return result


class InvertedPageTable:
    """Inverted page table over a fixed set of physical frames."""

    __slots__ = ("num_frames", "_bucket_mask", "anchor", "chain", "frame_vpn",
                 "lookups", "total_probes", "entries")

    def __init__(self, num_frames: int) -> None:
        if num_frames <= 0:
            raise ConfigurationError(f"num_frames must be positive, got {num_frames}")
        self.num_frames = num_frames
        buckets = _next_pow2(num_frames)
        self._bucket_mask = buckets - 1
        self.anchor = [FREE] * buckets
        self.chain = [FREE] * num_frames
        self.frame_vpn = [FREE] * num_frames
        self.lookups = 0
        self.total_probes = 0
        self.entries = 0

    def _bucket(self, vpn: int) -> int:
        # Multiplicative hash taking well-mixed mid bits: the >>16 shift
        # matters -- dense sequential vpn runs (every program region
        # produces them) cluster badly if low product bits are kept.
        return ((vpn * _HASH_MULT) >> 16) & self._bucket_mask

    def lookup(self, vpn: int) -> tuple[int, int]:
        """Return ``(frame, probes)``; frame is -1 when not mapped.

        ``probes`` counts chain entries examined (minimum 1), the
        quantity the TLB-miss handler cost scales with.
        """
        frame = self.anchor[self._bucket(vpn)]
        probes = 0
        chain = self.chain
        frame_vpn = self.frame_vpn
        while frame != FREE:
            probes += 1
            if frame_vpn[frame] == vpn:
                self.lookups += 1
                self.total_probes += probes
                return frame, probes
            frame = chain[frame]
        probes = max(1, probes)
        self.lookups += 1
        self.total_probes += probes
        return FREE, probes

    def insert(self, vpn: int, frame: int) -> int:
        """Map ``vpn`` to ``frame``; returns probes spent. Frame must be free."""
        if not 0 <= frame < self.num_frames:
            raise SimulationError(f"frame {frame} out of range")
        if self.frame_vpn[frame] != FREE:
            raise SimulationError(
                f"frame {frame} already maps vpn {self.frame_vpn[frame]:#x}"
            )
        bucket = self._bucket(vpn)
        # Insert at chain head: O(1), one probe.
        self.chain[frame] = self.anchor[bucket]
        self.anchor[bucket] = frame
        self.frame_vpn[frame] = vpn
        self.entries += 1
        return 1

    def remove_frame(self, frame: int) -> tuple[int, int]:
        """Unmap ``frame``; return ``(vpn, probes)``."""
        vpn = self.frame_vpn[frame]
        if vpn == FREE:
            raise SimulationError(f"remove_frame on free frame {frame}")
        bucket = self._bucket(vpn)
        probes = 1
        current = self.anchor[bucket]
        if current == frame:
            self.anchor[bucket] = self.chain[frame]
        else:
            while self.chain[current] != frame:
                current = self.chain[current]
                probes += 1
                if current == FREE:
                    raise SimulationError(
                        f"frame {frame} missing from its hash chain"
                    )
            self.chain[current] = self.chain[frame]
        self.chain[frame] = FREE
        self.frame_vpn[frame] = FREE
        self.entries -= 1
        return vpn, probes

    def vpn_of(self, frame: int) -> int:
        """The vpn mapped at ``frame`` (-1 when free)."""
        return self.frame_vpn[frame]

    @property
    def mean_probes(self) -> float:
        """Average probes per lookup so far (1.0 when chains never form)."""
        if self.lookups == 0:
            return 0.0
        return self.total_probes / self.lookups

    def check_invariants(self) -> None:
        """Validate chain structure; raises on corruption."""
        seen: set[int] = set()
        for bucket, head in enumerate(self.anchor):
            frame = head
            steps = 0
            while frame != FREE:
                if frame in seen:
                    raise SimulationError(f"frame {frame} on two chains")
                seen.add(frame)
                vpn = self.frame_vpn[frame]
                if vpn == FREE:
                    raise SimulationError(f"free frame {frame} on chain {bucket}")
                if self._bucket(vpn) != bucket:
                    raise SimulationError(
                        f"frame {frame} (vpn {vpn:#x}) chained in wrong bucket"
                    )
                frame = self.chain[frame]
                steps += 1
                if steps > self.num_frames:
                    raise SimulationError(f"cycle in bucket {bucket}")
        mapped = sum(1 for vpn in self.frame_vpn if vpn != FREE)
        if mapped != len(seen) or mapped != self.entries:
            raise SimulationError(
                f"entry count mismatch: {mapped} mapped, {len(seen)} chained, "
                f"{self.entries} counted"
            )
