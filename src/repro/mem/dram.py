"""DRAM and storage timing models.

Three timing models from section 3.3 of the paper:

* **Direct Rambus** (the simulated systems' DRAM): 50 ns before the
  first reference is started, thereafter 2 bytes every 1.25 ns, one
  channel, no pipelining -- "similar characteristics to an SDRAM
  implementation".  The section 6.3 pipelined extension lets queued
  transfers overlap the access latency, reaching the "theoretical 95%
  of peak bandwidth" the paper quotes for Direct Rambus.
* **SDRAM** (for context/efficiency comparisons): an initial delay then
  one bus-width beat per bus clock, e.g. 50 ns + 16 bytes / 10 ns.
* **Disk** (Table 1 only): pure latency + bandwidth.

:class:`RambusChannel` adds *occupancy*: a single channel can serve one
transfer at a time, and the context-switch-on-miss policy overlaps CPU
work with background page moves, so the channel tracks when it frees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.params import DiskParams, RambusParams


def rambus_transfer_ps(params: RambusParams, nbytes: int) -> int:
    """Picoseconds to move ``nbytes`` over an idle Direct Rambus channel."""
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0
    beats = -(-nbytes // params.bytes_per_beat)  # ceil
    return params.access_ps + beats * params.ps_per_beat


def rambus_pipelined_ps(params: RambusParams, nbytes: int) -> int:
    """Transfer time when the channel is already streaming.

    Pipelined Direct Rambus hides the access latency of queued
    references behind current data beats, achieving
    ``pipeline_efficiency`` of peak bandwidth "on units as small as
    2 bytes" (paper section 3.3).  The stretched beat time never
    exceeds the plain access + beats cost: pipelining cannot make a
    transfer slower.
    """
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0
    beats = -(-nbytes // params.bytes_per_beat)
    streamed = round(beats * params.ps_per_beat / params.pipeline_efficiency)
    return min(streamed, rambus_transfer_ps(params, nbytes))


def rambus_transfer_ps_array(params: RambusParams, nbytes) -> np.ndarray:
    """Vectorized :func:`rambus_transfer_ps` over an int64 size array.

    Element-for-element identical to the scalar function (a test sweeps
    both): the replay kernel prices a tape's distinct transfer sizes as
    one lookup table per Rambus timing instead of one Python call per
    access, so the per-size arithmetic must stay byte-exact.
    """
    sizes = np.asarray(nbytes, dtype=np.int64)
    if sizes.size and int(sizes.min()) < 0:
        raise ConfigurationError(
            f"nbytes must be >= 0, got {int(sizes.min())}"
        )
    beats = -(-sizes // params.bytes_per_beat)
    out = params.access_ps + beats * params.ps_per_beat
    return np.where(sizes == 0, 0, out).astype(np.int64)


def rambus_pipelined_ps_array(params: RambusParams, nbytes) -> np.ndarray:
    """Vectorized :func:`rambus_pipelined_ps` over an int64 size array.

    Matches the scalar function exactly, including the round-half-even
    of the stretched beat time (``np.rint`` and Python's ``round`` share
    IEEE nearest-even semantics on the identical float64 intermediate)
    and the never-slower-than-plain clamp.
    """
    sizes = np.asarray(nbytes, dtype=np.int64)
    plain = rambus_transfer_ps_array(params, sizes)
    beats = -(-sizes // params.bytes_per_beat)
    streamed = np.rint(
        beats * params.ps_per_beat / params.pipeline_efficiency
    ).astype(np.int64)
    return np.where(sizes == 0, 0, np.minimum(streamed, plain)).astype(
        np.int64
    )


@dataclass(frozen=True)
class SdramTiming:
    """SDRAM model: initial delay, then one bus-width beat per bus clock."""

    initial_ps: int = 50_000  # 50 ns
    beat_ps: int = 10_000  # 10 ns bus clock
    bus_bytes: int = 16  # 128-bit bus

    def __post_init__(self) -> None:
        if self.initial_ps < 0 or self.beat_ps <= 0 or self.bus_bytes <= 0:
            raise ConfigurationError("SDRAM timing values must be positive")


def sdram_transfer_ps(timing: SdramTiming, nbytes: int) -> int:
    """Picoseconds for an SDRAM burst of ``nbytes``."""
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0
    beats = -(-nbytes // timing.bus_bytes)
    return timing.initial_ps + beats * timing.beat_ps


def disk_transfer_s(params: DiskParams, nbytes: int) -> float:
    """Seconds for a disk transfer of ``nbytes`` (Table 1 comparison)."""
    if nbytes < 0:
        raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return 0.0
    return params.latency_s + nbytes / params.bandwidth_bytes_per_s


class RambusChannel:
    """A single Direct Rambus channel with occupancy tracking.

    Synchronous users (a blocking cache miss) call :meth:`synchronous`;
    the context-switch-on-miss path calls :meth:`begin_background` and
    lets the CPU run on, stalling later only if it needs the data (or
    the channel) before ``ready_at``.
    """

    __slots__ = ("params", "free_at_ps", "transfers", "bytes_moved", "busy_ps")

    def __init__(self, params: RambusParams) -> None:
        self.params = params
        self.free_at_ps = 0
        self.transfers = 0
        self.bytes_moved = 0
        self.busy_ps = 0

    def _cost_ps(self, nbytes: int, queued: bool) -> int:
        if self.params.pipelined and queued:
            return rambus_pipelined_ps(self.params, nbytes)
        return rambus_transfer_ps(self.params, nbytes)

    def synchronous(self, now_ps: int, nbytes: int) -> tuple[int, int]:
        """Blocking transfer; returns ``(wait_ps, transfer_ps)``.

        ``wait_ps`` is time spent queued behind an earlier background
        transfer; ``transfer_ps`` is the move itself.  The channel is
        busy until the transfer completes.
        """
        wait = max(0, self.free_at_ps - now_ps)
        queued = wait > 0
        cost = self._cost_ps(nbytes, queued)
        start = now_ps + wait
        self.free_at_ps = start + cost
        self._account(nbytes, cost)
        return wait, cost

    def begin_background(self, now_ps: int, nbytes: int) -> int:
        """Queue a transfer without blocking; returns its completion time."""
        start = max(now_ps, self.free_at_ps)
        queued = start > now_ps
        cost = self._cost_ps(nbytes, queued)
        self.free_at_ps = start + cost
        self._account(nbytes, cost)
        return self.free_at_ps

    def _account(self, nbytes: int, cost: int) -> None:
        self.transfers += 1
        self.bytes_moved += nbytes
        self.busy_ps += cost

    def utilisation(self, elapsed_ps: int) -> float:
        """Fraction of elapsed time the channel spent transferring."""
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.busy_ps / elapsed_ps)
