"""Generic set-associative cache state.

Used for the split L1 caches (direct-mapped in the paper's base
configuration, 8-way in the section 6.3 ablation) and the L2 cache
(direct-mapped baseline, 2-way "realistic" variant).  Replacement within
a set is random, as the paper specifies for its associative L2; random
replacement needs no per-access metadata, which also keeps the hit path
cheap.

The cache tracks *block numbers* (physical address >> block_bits), not
raw addresses; callers shift once and reuse the block number for
inclusion probes.  Timing is not modelled here -- systems charge cycles.
"""

from __future__ import annotations

from repro.core.errors import SimulationError
from repro.core.params import CacheParams
from repro.core.rng import XorShiftRNG

INVALID = -1


class SetAssociativeCache:
    """Placement/replacement state of one cache.

    Attributes
    ----------
    block_bits:
        log2(block size); callers compute ``block_num = paddr >> block_bits``.
    """

    __slots__ = (
        "params",
        "block_bits",
        "ways",
        "num_sets",
        "set_mask",
        "tags",
        "dirty",
        "_rng",
        "fills",
        "evictions",
    )

    def __init__(self, params: CacheParams, rng: XorShiftRNG | None = None) -> None:
        self.params = params
        self.block_bits = params.block_bytes.bit_length() - 1
        self.ways = params.ways
        self.num_sets = params.num_sets
        self.set_mask = self.num_sets - 1
        self.tags = [INVALID] * params.num_blocks
        self.dirty = bytearray(params.num_blocks)
        self._rng = rng if rng is not None else XorShiftRNG()
        self.fills = 0
        self.evictions = 0

    def slot_of(self, block_num: int) -> int:
        """Return the slot index holding ``block_num``, or -1."""
        base = (block_num & self.set_mask) * self.ways
        tags = self.tags
        for way in range(self.ways):
            if tags[base + way] == block_num:
                return base + way
        return -1

    def lookup(self, block_num: int) -> bool:
        """True when ``block_num`` is resident."""
        return self.slot_of(block_num) != -1

    def mark_dirty(self, block_num: int) -> None:
        """Set the dirty bit of a resident block."""
        slot = self.slot_of(block_num)
        if slot == -1:
            raise SimulationError(
                f"mark_dirty on non-resident block {block_num:#x}"
            )
        self.dirty[slot] = 1

    def fill(self, block_num: int, dirty: bool = False) -> tuple[int, bool]:
        """Install ``block_num``; return ``(victim_block, victim_dirty)``.

        The victim is ``INVALID`` when an empty way was used.  Installing
        an already-resident block is an error (systems only fill on
        miss).
        """
        base = (block_num & self.set_mask) * self.ways
        tags = self.tags
        empty = -1
        for way in range(self.ways):
            slot = base + way
            if tags[slot] == block_num:
                raise SimulationError(f"fill of resident block {block_num:#x}")
            if tags[slot] == INVALID and empty == -1:
                empty = slot
        if empty != -1:
            slot = empty
            victim, victim_dirty = INVALID, False
        else:
            slot = base + (self._rng.below(self.ways) if self.ways > 1 else 0)
            victim = tags[slot]
            victim_dirty = bool(self.dirty[slot])
            self.evictions += 1
        tags[slot] = block_num
        self.dirty[slot] = 1 if dirty else 0
        self.fills += 1
        return victim, victim_dirty

    def invalidate(self, block_num: int) -> tuple[bool, bool]:
        """Drop ``block_num`` if present; return ``(present, was_dirty)``."""
        slot = self.slot_of(block_num)
        if slot == -1:
            return False, False
        was_dirty = bool(self.dirty[slot])
        self.tags[slot] = INVALID
        self.dirty[slot] = 0
        return True, was_dirty

    def resident_blocks(self) -> list[int]:
        """All resident block numbers (for tests and invariant checks)."""
        return [tag for tag in self.tags if tag != INVALID]

    def occupancy(self) -> float:
        """Fraction of slots holding valid blocks."""
        valid = sum(1 for tag in self.tags if tag != INVALID)
        return valid / len(self.tags)
