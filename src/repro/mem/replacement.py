"""Page replacement policies for the SRAM main memory.

The paper's RAMpage replacement is "a standard clock algorithm" over
the inverted page table (section 4.5): a hand sweeps the frames,
clearing referenced bits, until it finds an unreferenced, unpinned frame
-- that frame is the victim.  The number of frames scanned is reported
so the page-fault handler can charge references for the scan.

:class:`StandbyList` implements the section 3.2 victim-cache analogue
the paper sketches ("when a page is replaced, it is moved to the standby
page list; the page which is on the list longest is the one actually
discarded"), used by the ablation benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.errors import ConfigurationError, SimulationError


class ClockReplacer:
    """Clock (second-chance) victim selection over a frame range.

    Frames ``[first_frame, first_frame + num_frames)`` participate;
    pinned frames are permanently skipped.
    """

    __slots__ = ("first_frame", "num_frames", "_referenced", "_pinned", "_hand",
                 "scans")

    def __init__(self, num_frames: int, first_frame: int = 0) -> None:
        if num_frames <= 0:
            raise ConfigurationError(f"num_frames must be positive, got {num_frames}")
        self.first_frame = first_frame
        self.num_frames = num_frames
        self._referenced = bytearray(num_frames)
        self._pinned = bytearray(num_frames)
        self._hand = 0
        self.scans = 0

    def _index(self, frame: int) -> int:
        idx = frame - self.first_frame
        if not 0 <= idx < self.num_frames:
            raise SimulationError(f"frame {frame} outside replacer range")
        return idx

    def pin(self, frame: int) -> None:
        self._pinned[self._index(frame)] = 1

    def unpin(self, frame: int) -> None:
        self._pinned[self._index(frame)] = 0

    def is_pinned(self, frame: int) -> bool:
        return bool(self._pinned[self._index(frame)])

    def touch(self, frame: int) -> None:
        """Set the referenced bit (page was used)."""
        self._referenced[self._index(frame)] = 1

    def pinned_count(self) -> int:
        return sum(self._pinned)

    def choose_victim(self) -> tuple[int, int]:
        """Advance the hand to a victim; return ``(frame, scanned)``.

        ``scanned`` counts frames examined (referenced bits cleared on
        the way), which the fault handler charges references for.
        Raises when every frame is pinned.
        """
        if self.pinned_count() >= self.num_frames:
            raise SimulationError("all frames pinned; no victim available")
        referenced = self._referenced
        pinned = self._pinned
        hand = self._hand
        scanned = 0
        # At most two sweeps: one clearing bits, one finding a clear bit.
        limit = 2 * self.num_frames + 1
        while True:
            scanned += 1
            if scanned > limit:
                raise SimulationError("clock hand failed to find a victim")
            idx = hand
            hand = (hand + 1) % self.num_frames
            if pinned[idx]:
                continue
            if referenced[idx]:
                referenced[idx] = 0
                continue
            self._hand = hand
            self.scans += scanned
            return self.first_frame + idx, scanned


class StandbyList:
    """FIFO of replaced-but-intact pages (VMS-style standby list).

    Pages evicted by the clock hand park here with their frame contents
    untouched; a fault on a parked page is a *soft fault* -- the page is
    reclaimed without touching DRAM.  The page longest on the list is
    the one truly discarded when a frame must be reused.
    """

    __slots__ = ("capacity", "_entries", "soft_faults", "discards")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()  # vpn -> frame
        self.soft_faults = 0
        self.discards = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def park(self, vpn: int, frame: int) -> tuple[int, int] | None:
        """Add a replaced page; returns a ``(vpn, frame)`` it displaced.

        The displaced entry (oldest) is the page truly discarded; its
        frame becomes reusable.  Returns None while under capacity.
        """
        if not self.enabled:
            raise SimulationError("standby list is disabled (capacity 0)")
        if vpn in self._entries:
            raise SimulationError(f"vpn {vpn:#x} already on standby")
        self._entries[vpn] = frame
        if len(self._entries) > self.capacity:
            old_vpn, old_frame = self._entries.popitem(last=False)
            self.discards += 1
            return old_vpn, old_frame
        return None

    def reclaim(self, vpn: int) -> int | None:
        """Soft-fault ``vpn`` back; returns its frame or None."""
        frame = self._entries.pop(vpn, None)
        if frame is not None:
            self.soft_faults += 1
        return frame

    def pop_oldest(self) -> tuple[int, int] | None:
        """Discard the oldest parked page; returns ``(vpn, frame)``."""
        if not self._entries:
            return None
        self.discards += 1
        return self._entries.popitem(last=False)

    def contains(self, vpn: int) -> bool:
        return vpn in self._entries
