"""Memory-hierarchy components.

State-holding building blocks of both simulated machines.  Components
manage placement/replacement state only; *timing* and *statistics* are
charged by the system models in :mod:`repro.systems`, so each component
stays independently testable.

* :mod:`repro.mem.cache` -- generic set-associative cache (L1 and L2).
* :mod:`repro.mem.victim` -- small fully associative victim buffer.
* :mod:`repro.mem.tlb` -- translation lookaside buffer.
* :mod:`repro.mem.inverted_page_table` -- hash-anchored inverted page
  table with real probe counts (drives handler cost).
* :mod:`repro.mem.replacement` -- clock replacement and standby list.
* :mod:`repro.mem.sram_memory` -- the RAMpage SRAM main memory.
* :mod:`repro.mem.dram` -- Direct Rambus / SDRAM / disk timing models.
"""

from repro.mem.cache import SetAssociativeCache
from repro.mem.dram import RambusChannel, rambus_transfer_ps, sdram_transfer_ps
from repro.mem.inverted_page_table import InvertedPageTable
from repro.mem.replacement import ClockReplacer, StandbyList
from repro.mem.sram_memory import SramMainMemory
from repro.mem.tlb import TLB
from repro.mem.victim import VictimBuffer

__all__ = [
    "SetAssociativeCache",
    "RambusChannel",
    "rambus_transfer_ps",
    "sdram_transfer_ps",
    "InvertedPageTable",
    "ClockReplacer",
    "StandbyList",
    "SramMainMemory",
    "TLB",
    "VictimBuffer",
]
