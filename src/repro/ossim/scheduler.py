"""Context-switching policy.

Two switching mechanisms appear in the paper:

* **scheduled switches** -- the multiprogramming workload rotates every
  time slice; sections 4.6-4.7 add a ~400-reference context-switch trace
  at each rotation ("a context switch trace is inserted between switches
  from one benchmark to another"),
* **switch on miss** -- the RAMpage-only policy (section 5.4): on a page
  fault to DRAM, instead of stalling, the OS switches to another process
  and overlaps the transfer with its work.

:class:`SwitchPolicy` is the declarative description; the simulator and
the RAMpage system consult it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class SwitchPolicy:
    """When context switches happen and what they cost.

    ``scheduled`` inserts the switch trace at slice boundaries;
    ``on_miss`` additionally preempts the faulting process on a page
    fault from the SRAM main memory (RAMpage only -- the conventional
    machine has no software miss path to hook).
    """

    scheduled: bool = False
    on_miss: bool = False

    @classmethod
    def none(cls) -> "SwitchPolicy":
        """No context-switch modelling (the Table 3 baseline runs)."""
        return cls(scheduled=False, on_miss=False)

    @classmethod
    def scheduled_only(cls) -> "SwitchPolicy":
        """Switch trace at slice boundaries (Tables 4-5 comparisons)."""
        return cls(scheduled=True, on_miss=False)

    @classmethod
    def switch_on_miss(cls) -> "SwitchPolicy":
        """Scheduled switches plus RAMpage's switch-on-miss (Table 4)."""
        return cls(scheduled=True, on_miss=True)

    def validate_for(self, kind: str) -> None:
        """Reject combinations the paper's hardware cannot express."""
        if self.on_miss and kind != "rampage":
            raise ConfigurationError(
                "switch-on-miss requires the RAMpage machine; a "
                "conventional cache miss is invisible to software"
            )
