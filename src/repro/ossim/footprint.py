"""OS memory layout.

Section 4.5: "the operating system uses 6 pages of the SRAM main memory
when simulating a 4 Kbyte SRAM page ... up to 5336 pages for a 128 byte
block size, a total of 667 Kbytes", because the inverted page table has
one entry per SRAM frame and is pinned along with the handler code.
:func:`rampage_layout` reproduces that footprint from
:class:`~repro.core.params.RampageParams` (whose ``pinned_bytes``
implements the formula); :func:`conventional_layout` places the
equivalent OS code and page table in a reserved region of DRAM physical
memory, where -- as the paper notes -- it competes for L2/L1 space with
user data instead of being pinned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.params import RampageParams

#: Physical base of the conventional machine's OS region.  DRAM frames
#: for user pages are allocated upward from zero and the simulator
#: guards against ever reaching this base.
CONVENTIONAL_OS_BASE = 0xF000_0000


@dataclass(frozen=True)
class OsLayout:
    """Physical placement of OS code, data and the page table."""

    code_base: int
    code_bytes: int
    data_base: int
    data_bytes: int
    table_base: int
    table_entries: int
    entry_bytes: int

    def __post_init__(self) -> None:
        if self.code_bytes <= 0 or self.data_bytes <= 0:
            raise ConfigurationError("OS code/data sizes must be positive")
        if self.table_entries <= 0 or self.entry_bytes <= 0:
            raise ConfigurationError("page table dimensions must be positive")
        regions = [
            (self.code_base, self.code_bytes),
            (self.data_base, self.data_bytes),
            (self.table_base, self.table_entries * self.entry_bytes),
        ]
        regions.sort()
        for (base_a, len_a), (base_b, _) in zip(regions, regions[1:]):
            if base_a + len_a > base_b:
                raise ConfigurationError("OS regions overlap")

    @property
    def table_bytes(self) -> int:
        return self.table_entries * self.entry_bytes

    @property
    def total_bytes(self) -> int:
        return self.code_bytes + self.data_bytes + self.table_bytes

    def entry_addr(self, index: int) -> int:
        """Physical address of page-table entry ``index`` (wrapping)."""
        return self.table_base + (index % self.table_entries) * self.entry_bytes


def rampage_layout(params: RampageParams) -> OsLayout:
    """Lay the OS out in the pinned SRAM frames.

    Frame 0 upward: handler code, then handler data (PCBs, clock state),
    then the inverted page table -- matching ``params.pinned_bytes``.
    """
    code_bytes = params.pinned_code_data_bytes * 2 // 3
    data_bytes = params.pinned_code_data_bytes - code_bytes
    return OsLayout(
        code_base=0,
        code_bytes=code_bytes,
        data_base=code_bytes,
        data_bytes=data_bytes,
        table_base=params.pinned_code_data_bytes,
        table_entries=params.num_frames,
        entry_bytes=params.ipt_entry_bytes,
    )


def conventional_layout(
    table_entries: int = 65_536,
    entry_bytes: int = 16,
    code_bytes: int = 8 * 1024,
    data_bytes: int = 4 * 1024,
) -> OsLayout:
    """Lay the OS out in the reserved DRAM region.

    The conventional machine's page table maps DRAM (4 KB pages), so the
    entry count is fixed rather than scaling with the swept block size
    -- which is why Figure 4's baseline overhead "is the same across all
    block sizes".
    """
    return OsLayout(
        code_base=CONVENTIONAL_OS_BASE,
        code_bytes=code_bytes,
        data_base=CONVENTIONAL_OS_BASE + code_bytes,
        data_bytes=data_bytes,
        table_base=CONVENTIONAL_OS_BASE + code_bytes + data_bytes,
        table_entries=table_entries,
        entry_bytes=entry_bytes,
    )
