"""Handler reference-sequence synthesis.

The paper models OS activity by interleaving traces of handler code:
"misses modeled by interleaving a trace of page lookup software"
(section 4.3) and "a trace of simulated context switch code
(approximately 400 references per context switch)" based on "a standard
textbook algorithm" (section 4.6).

:class:`HandlerLibrary` turns :class:`~repro.core.params.HandlerCosts`
plus an :class:`~repro.ossim.footprint.OsLayout` into concrete
``(kind, physical address)`` sequences.  The sequences are executed
through the simulated hierarchy by the system models, so handler code
populates (and pollutes) the caches exactly as the paper's interleaved
traces do.

Instruction fetches walk the handler's code region sequentially (real
handlers are straight-line); data references touch the page-table
entries involved.  Entry addresses for hash-chain probes are derived
deterministically from the vpn so repeated misses to the same page
touch the same table memory.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.params import HandlerCosts
from repro.ossim.footprint import OsLayout
from repro.trace.record import IFETCH, READ, WRITE

_WORD = 4
_HASH_MULT = 2654435761

#: The clock hand's referenced bits live in a bitmap, one word covering
#: 32 frames, so a scan of N frames costs ceil(N/32) word loads plus a
#: few instructions per word examined.
SCAN_FRAMES_PER_WORD = 32
SCAN_INSTR_PER_WORD = 4
SCAN_DATA_PER_WORD = 1


class HandlerLibrary:
    """Builds handler reference sequences for one machine."""

    def __init__(self, costs: HandlerCosts, layout: OsLayout) -> None:
        self.costs = costs
        self.layout = layout
        # Handler code occupies disjoint slices of the code region so the
        # three handlers do not artificially share I-cache blocks.
        third = max(_WORD, (layout.code_bytes // 3) & ~(_WORD - 1))
        self._tlb_code = layout.code_base
        self._fault_code = layout.code_base + third
        self._switch_code = layout.code_base + 2 * third
        self._code_limit = layout.code_base + layout.code_bytes
        self._switch_cache: dict[int, list[tuple[int, int]]] = {}

    def _code_refs(self, base: int, count: int) -> list[tuple[int, int]]:
        limit = self._code_limit
        span = max(_WORD, limit - base)
        return [
            (IFETCH, base + (i * _WORD) % span) for i in range(count)
        ]

    def _entry_addr(self, vpn: int, probe: int) -> int:
        index = ((vpn * _HASH_MULT) >> 7) + probe
        return self.layout.entry_addr(index)

    def tlb_miss_refs(self, vpn: int, probes: int) -> list[tuple[int, int]]:
        """The inverted-page-table lookup for one TLB miss.

        ``probes`` comes from the real hash-chain walk; each probe past
        the first adds chain-following instructions and entry loads.
        """
        if probes < 1:
            raise ConfigurationError(f"probes must be >= 1, got {probes}")
        costs = self.costs
        refs = self._code_refs(self._tlb_code, costs.tlb_instr)
        for d in range(costs.tlb_data):
            refs.append((READ, self._entry_addr(vpn, d)))
        for probe in range(1, probes):
            refs.extend(
                self._code_refs(self._tlb_code, costs.tlb_probe_instr)
            )
            for d in range(costs.tlb_probe_data):
                refs.append((READ, self._entry_addr(vpn, probe * 4 + d)))
        return refs

    def page_fault_refs(self, vpn: int, scanned: int) -> list[tuple[int, int]]:
        """The page-fault path: fault dispatch, clock scan, table update.

        ``scanned`` is the number of frames the clock hand examined; the
        referenced bits are a bitmap, so the scan costs one word load
        (plus a few instructions) per 32 frames examined.
        """
        if scanned < 0:
            raise ConfigurationError(f"scanned must be >= 0, got {scanned}")
        costs = self.costs
        refs = self._code_refs(self._fault_code, costs.fault_instr)
        for d in range(costs.fault_data):
            kind = WRITE if d % 3 == 2 else READ
            refs.append((kind, self._entry_addr(vpn, d)))
        if scanned:
            words = -(-scanned // SCAN_FRAMES_PER_WORD)
            refs.extend(
                self._code_refs(self._fault_code, SCAN_INSTR_PER_WORD * words)
            )
            for word in range(words):
                refs.append((WRITE, self._entry_addr(vpn + 1, word)))
        return refs

    def context_switch_refs(self, pid: int) -> list[tuple[int, int]]:
        """The ~400-reference context switch (section 4.6).

        Data references save/restore the process control block, whose
        address depends on the pid; sequences are cached per pid.
        """
        cached = self._switch_cache.get(pid)
        if cached is not None:
            return cached
        costs = self.costs
        refs = self._code_refs(self._switch_code, costs.switch_instr)
        pcb_bytes = 256
        slots = max(1, self.layout.data_bytes // pcb_bytes)
        pcb_base = self.layout.data_base + (pid % slots) * pcb_bytes
        for d in range(costs.switch_data):
            kind = WRITE if d % 2 == 0 else READ
            refs.append((kind, pcb_base + (d * _WORD) % pcb_bytes))
        self._switch_cache[pid] = refs
        return refs

    def tlb_miss_ref_count(self, probes: int) -> int:
        """Reference count of :meth:`tlb_miss_refs` without building it."""
        costs = self.costs
        extra = (probes - 1) * (costs.tlb_probe_instr + costs.tlb_probe_data)
        return costs.tlb_instr + costs.tlb_data + extra

    def page_fault_ref_count(self, scanned: int) -> int:
        """Reference count of :meth:`page_fault_refs` without building it."""
        costs = self.costs
        words = -(-scanned // SCAN_FRAMES_PER_WORD) if scanned else 0
        scan = words * (SCAN_INSTR_PER_WORD + SCAN_DATA_PER_WORD)
        return costs.fault_instr + costs.fault_data + scan
