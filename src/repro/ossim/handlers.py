"""Handler reference-sequence synthesis.

The paper models OS activity by interleaving traces of handler code:
"misses modeled by interleaving a trace of page lookup software"
(section 4.3) and "a trace of simulated context switch code
(approximately 400 references per context switch)" based on "a standard
textbook algorithm" (section 4.6).

:class:`HandlerLibrary` turns :class:`~repro.core.params.HandlerCosts`
plus an :class:`~repro.ossim.footprint.OsLayout` into concrete
``(kind, physical address)`` sequences.  The sequences are executed
through the simulated hierarchy by the system models, so handler code
populates (and pollutes) the caches exactly as the paper's interleaved
traces do.

Instruction fetches walk the handler's code region sequentially (real
handlers are straight-line); data references touch the page-table
entries involved.  Entry addresses for hash-chain probes are derived
deterministically from the vpn so repeated misses to the same page
touch the same table memory.

Sequences are produced as ordered **parts**, ``(shared, refs)`` pairs:
the code walks are pure functions of ``(base, count)`` and repeat on
every invocation, so those lists are memoized and shared across calls
(the ``shared`` flag tells executors the list object is stable and
worth compiling into runs).  Data parts are small per-call lists:
page-fault vpns almost never repeat, so memoizing fault data would
only churn, while TLB misses cluster on hot pages, so whole TLB-miss
parts lists are memoized by ``(vpn, probes)``.  Memoized lists are
immutable by contract, the same rule the per-pid context switch cache
has always imposed.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.params import HandlerCosts
from repro.ossim.footprint import OsLayout
from repro.trace.record import IFETCH, READ, WRITE

_WORD = 4
_HASH_MULT = 2654435761

#: The clock hand's referenced bits live in a bitmap, one word covering
#: 32 frames, so a scan of N frames costs ceil(N/32) word loads plus a
#: few instructions per word examined.
SCAN_FRAMES_PER_WORD = 32
SCAN_INSTR_PER_WORD = 4
SCAN_DATA_PER_WORD = 1

#: Bound on memoized code walks.  A full memo is cleared wholesale:
#: rebuild is one list per entry and the handful of hot shapes is
#: restored immediately.
_MEMO_MAX = 4096

#: One handler part: a shared/compile-worthy flag plus the references.
Part = tuple[bool, list[tuple[int, int]]]


class HandlerLibrary:
    """Builds handler reference sequences for one machine."""

    def __init__(self, costs: HandlerCosts, layout: OsLayout) -> None:
        self.costs = costs
        self.layout = layout
        # Handler code occupies disjoint slices of the code region so the
        # three handlers do not artificially share I-cache blocks.
        third = max(_WORD, (layout.code_bytes // 3) & ~(_WORD - 1))
        self._tlb_code = layout.code_base
        self._fault_code = layout.code_base + third
        self._switch_code = layout.code_base + 2 * third
        self._code_limit = layout.code_base + layout.code_bytes
        self._switch_parts: dict[int, tuple[Part, ...]] = {}
        self._switch_flat: dict[int, list[tuple[int, int]]] = {}
        self._code_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self._tlb_parts_cache: dict[tuple[int, int], list[Part]] = {}

    def _code_refs(self, base: int, count: int) -> list[tuple[int, int]]:
        key = (base, count)
        cached = self._code_cache.get(key)
        if cached is None:
            if len(self._code_cache) >= _MEMO_MAX:
                self._code_cache.clear()
            span = max(_WORD, self._code_limit - base)
            cached = self._code_cache[key] = [
                (IFETCH, base + (i * _WORD) % span) for i in range(count)
            ]
        return cached

    def _entry_addr(self, vpn: int, probe: int) -> int:
        index = ((vpn * _HASH_MULT) >> 7) + probe
        return self.layout.entry_addr(index)

    def tlb_miss_parts(self, vpn: int, probes: int) -> list[Part]:
        """The inverted-page-table lookup for one TLB miss.

        ``probes`` comes from the real hash-chain walk; each probe past
        the first adds chain-following instructions and entry loads.

        TLB misses cluster on a small set of hot pages (unlike faults,
        whose vpns almost never repeat), so built parts lists are
        memoized by ``(vpn, probes)``.
        """
        if probes < 1:
            raise ConfigurationError(f"probes must be >= 1, got {probes}")
        key = (vpn, probes)
        cached = self._tlb_parts_cache.get(key)
        if cached is not None:
            return cached
        costs = self.costs
        entry = self._entry_addr
        parts: list[Part] = [
            (True, self._code_refs(self._tlb_code, costs.tlb_instr)),
            (False, [(READ, entry(vpn, d)) for d in range(costs.tlb_data)]),
        ]
        for probe in range(1, probes):
            parts.append(
                (True, self._code_refs(self._tlb_code, costs.tlb_probe_instr))
            )
            parts.append(
                (
                    False,
                    [
                        (READ, entry(vpn, probe * 4 + d))
                        for d in range(costs.tlb_probe_data)
                    ],
                )
            )
        if len(self._tlb_parts_cache) >= _MEMO_MAX:
            self._tlb_parts_cache.clear()
        self._tlb_parts_cache[key] = parts
        return parts

    def tlb_miss_refs(self, vpn: int, probes: int) -> list[tuple[int, int]]:
        """Flattened :meth:`tlb_miss_parts` (scalar paths, tests)."""
        refs: list[tuple[int, int]] = []
        for _, part in self.tlb_miss_parts(vpn, probes):
            refs.extend(part)
        return refs

    def page_fault_parts(self, vpn: int, scanned: int) -> list[Part]:
        """The page-fault path: fault dispatch, clock scan, table update.

        ``scanned`` is the number of frames the clock hand examined; the
        referenced bits are a bitmap, so the scan costs one word load
        (plus a few instructions) per 32 frames examined.
        """
        if scanned < 0:
            raise ConfigurationError(f"scanned must be >= 0, got {scanned}")
        costs = self.costs
        entry = self._entry_addr
        parts: list[Part] = [
            (True, self._code_refs(self._fault_code, costs.fault_instr)),
            (
                False,
                [
                    (WRITE if d % 3 == 2 else READ, entry(vpn, d))
                    for d in range(costs.fault_data)
                ],
            ),
        ]
        words = -(-scanned // SCAN_FRAMES_PER_WORD)
        if words:
            parts.append(
                (
                    True,
                    self._code_refs(
                        self._fault_code, SCAN_INSTR_PER_WORD * words
                    ),
                )
            )
            parts.append(
                (False, [(WRITE, entry(vpn + 1, w)) for w in range(words)])
            )
        return parts

    def page_fault_refs(self, vpn: int, scanned: int) -> list[tuple[int, int]]:
        """Flattened :meth:`page_fault_parts` (scalar paths, tests)."""
        refs: list[tuple[int, int]] = []
        for _, part in self.page_fault_parts(vpn, scanned):
            refs.extend(part)
        return refs

    def context_switch_parts(self, pid: int) -> tuple[Part, ...]:
        """The ~400-reference context switch (section 4.6).

        Data references save/restore the process control block, whose
        address depends on the pid; both parts are stable per pid (and
        cached), so both are shared/compile-worthy.
        """
        cached = self._switch_parts.get(pid)
        if cached is not None:
            return cached
        costs = self.costs
        pcb_bytes = 256
        slots = max(1, self.layout.data_bytes // pcb_bytes)
        pcb_base = self.layout.data_base + (pid % slots) * pcb_bytes
        data = [
            (WRITE if d % 2 == 0 else READ, pcb_base + (d * _WORD) % pcb_bytes)
            for d in range(costs.switch_data)
        ]
        cached = self._switch_parts[pid] = (
            (True, self._code_refs(self._switch_code, costs.switch_instr)),
            (True, data),
        )
        return cached

    def context_switch_refs(self, pid: int) -> list[tuple[int, int]]:
        """Flattened :meth:`context_switch_parts`, cached per pid."""
        cached = self._switch_flat.get(pid)
        if cached is None:
            cached = self._switch_flat[pid] = [
                ref
                for _, part in self.context_switch_parts(pid)
                for ref in part
            ]
        return cached

    def tlb_miss_ref_count(self, probes: int) -> int:
        """Reference count of :meth:`tlb_miss_parts` without building it."""
        costs = self.costs
        extra = (probes - 1) * (costs.tlb_probe_instr + costs.tlb_probe_data)
        return costs.tlb_instr + costs.tlb_data + extra

    def page_fault_ref_count(self, scanned: int) -> int:
        """Reference count of :meth:`page_fault_parts` without building it."""
        costs = self.costs
        words = -(-scanned // SCAN_FRAMES_PER_WORD) if scanned else 0
        scan = words * (SCAN_INSTR_PER_WORD + SCAN_DATA_PER_WORD)
        return costs.fault_instr + costs.fault_data + scan
