"""Operating-system model.

RAMpage trades hardware for software: TLB misses, page faults and
context switches run as OS code through the simulated hierarchy.  The
paper models this by interleaving traces of handler software
(sections 4.3 and 4.6); this package synthesises those handler
reference sequences and lays out the OS's pinned footprint.

* :mod:`repro.ossim.footprint` -- where OS code, data and the inverted
  page table live (pinned SRAM frames for RAMpage, a reserved DRAM
  region for the conventional machine).
* :mod:`repro.ossim.handlers` -- reference sequences for the TLB-miss,
  page-fault and context-switch handlers.
* :mod:`repro.ossim.scheduler` -- switching policy (scheduled slices,
  context switch on miss).
"""

from repro.ossim.footprint import OsLayout, conventional_layout, rampage_layout
from repro.ossim.handlers import HandlerLibrary
from repro.ossim.scheduler import SwitchPolicy

__all__ = [
    "OsLayout",
    "conventional_layout",
    "rampage_layout",
    "HandlerLibrary",
    "SwitchPolicy",
]
