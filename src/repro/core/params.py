"""Validated parameter dataclasses for the simulated machines.

Every number in section 4 of the paper ("Simulated Systems") appears
here as an explicit, documented default.  Parameter objects are frozen:
a machine is fully described by one :class:`MachineParams` value, which
can be hashed and used as a cache key by the experiment runner.

Units: sizes in bytes, times in CPU cycles or picoseconds (ps), rates in
Hz.  See :mod:`repro.core.clock` for the ps convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.core.clock import PS_PER_NS
from repro.core.errors import ConfigurationError

KIB = 1024
MIB = 1024 * KIB


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def _require_pow2(value: int, name: str) -> None:
    if not is_power_of_two(value):
        raise ConfigurationError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheParams:
    """Geometry of a set-associative cache.

    ``associativity == 0`` means fully associative (one set spanning the
    whole cache).
    """

    total_bytes: int
    block_bytes: int
    associativity: int = 1

    def __post_init__(self) -> None:
        _require_pow2(self.total_bytes, "total_bytes")
        _require_pow2(self.block_bytes, "block_bytes")
        if self.block_bytes > self.total_bytes:
            raise ConfigurationError(
                f"block size {self.block_bytes} exceeds cache size {self.total_bytes}"
            )
        if self.associativity < 0:
            raise ConfigurationError(
                f"associativity must be >= 0, got {self.associativity}"
            )
        ways = self.ways
        if self.num_blocks % ways != 0:
            raise ConfigurationError(
                f"{self.num_blocks} blocks not divisible into {ways} ways"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"cache with {self.num_blocks} blocks / {ways} ways yields "
                f"{self.num_sets} sets, which is not a power of two"
            )

    @property
    def num_blocks(self) -> int:
        return self.total_bytes // self.block_bytes

    @property
    def ways(self) -> int:
        """Effective way count (fully associative -> all blocks)."""
        return self.num_blocks if self.associativity == 0 else self.associativity

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.ways

    @property
    def is_direct_mapped(self) -> bool:
        return self.ways == 1


@dataclass(frozen=True)
class L1Params:
    """Split L1 instruction/data caches (paper section 4.3).

    Defaults: 16 KB each, direct-mapped, 32-byte blocks, 1-cycle read
    hit, 12-cycle miss penalty to the next level (9-cycle writeback in
    the RAMpage machine because there is no L2 tag to update).
    """

    icache: CacheParams = field(
        default_factory=lambda: CacheParams(16 * KIB, 32, associativity=1)
    )
    dcache: CacheParams = field(
        default_factory=lambda: CacheParams(16 * KIB, 32, associativity=1)
    )
    hit_cycles: int = 1
    miss_penalty_cycles: int = 12
    writeback_cycles: int = 12
    rampage_writeback_cycles: int = 9

    def __post_init__(self) -> None:
        if self.icache.block_bytes != self.dcache.block_bytes:
            raise ConfigurationError(
                "L1 I and D caches must share a block size "
                f"({self.icache.block_bytes} != {self.dcache.block_bytes})"
            )
        for name in (
            "hit_cycles",
            "miss_penalty_cycles",
            "writeback_cycles",
            "rampage_writeback_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @property
    def block_bytes(self) -> int:
        return self.icache.block_bytes


@dataclass(frozen=True)
class TlbParams:
    """TLB geometry (paper: 64 entries, fully associative, random).

    ``associativity == 0`` means fully associative.
    """

    entries: int = 64
    associativity: int = 0
    hit_cycles: int = 1  # fully pipelined: charged 0 on the fast path

    def __post_init__(self) -> None:
        _require_pow2(self.entries, "entries")
        if self.associativity < 0:
            raise ConfigurationError("associativity must be >= 0")
        ways = self.ways
        if self.entries % ways != 0 or not is_power_of_two(self.entries // ways):
            raise ConfigurationError(
                f"{self.entries}-entry TLB cannot be divided into {ways} ways"
            )

    @property
    def ways(self) -> int:
        return self.entries if self.associativity == 0 else self.associativity

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class BusParams:
    """CPU <-> L2/SRAM bus: 128 bits wide at one third of the CPU clock."""

    width_bits: int = 128
    cpu_clock_divisor: int = 3

    def __post_init__(self) -> None:
        _require_pow2(self.width_bits, "width_bits")
        if self.cpu_clock_divisor <= 0:
            raise ConfigurationError("cpu_clock_divisor must be positive")

    @property
    def width_bytes(self) -> int:
        return self.width_bits // 8


@dataclass(frozen=True)
class RambusParams:
    """Direct Rambus timing (paper sections 3.3 and 4.3).

    50 ns before the first reference is started, thereafter 2 bytes per
    1.25 ns.  ``pipelined`` enables the section-6.3 future-work model in
    which independent transfers overlap the access latency of later ones
    (up to ``pipeline_efficiency`` of peak bandwidth).
    """

    access_ps: int = 50 * PS_PER_NS
    ps_per_beat: int = 1250  # 1.25 ns
    bytes_per_beat: int = 2
    pipelined: bool = False
    pipeline_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.access_ps < 0 or self.ps_per_beat <= 0 or self.bytes_per_beat <= 0:
            raise ConfigurationError("Rambus timing values must be positive")
        if not 0.0 < self.pipeline_efficiency <= 1.0:
            raise ConfigurationError("pipeline_efficiency must be in (0, 1]")

    @property
    def peak_bytes_per_second(self) -> float:
        """Peak bandwidth (1.5 GB/s for the default 2 B / 1.25 ns)."""
        return self.bytes_per_beat / (self.ps_per_beat * 1e-12)


# Backwards-compatible alias: the DRAM level of both machines is a Rambus.
DramParams = RambusParams


@dataclass(frozen=True)
class DiskParams:
    """Disk used only for the Table 1 efficiency comparison."""

    latency_s: float = 10e-3  # 10 ms
    bandwidth_bytes_per_s: float = 40e6  # 40 MB/s

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("disk parameters must be positive")


@dataclass(frozen=True)
class HandlerCosts:
    """Reference counts for the simulated OS software.

    The paper models OS activity by interleaving traces of handler code
    (sections 4.3 and 4.6); it pins the context switch at "approximately
    400 references" and leaves the TLB-miss and page-fault handlers to
    the page-lookup software trace.  The defaults below are sized from
    an inverted-page-table lookup written in a RISC-like ISA:

    * TLB miss: ~12 instructions of hash/dispatch plus 2 data references
      for the anchor probe, and 6 instructions + 2 data references per
      extra chain probe (a tuned assembly inverted-table refill).
    * Page fault: ~100 instructions and ~20 data references covering the
      fault path and table updates, plus the clock-hand scan, whose
      reference bits live in a bitmap (one word covers 32 frames -- see
      :mod:`repro.ossim.handlers`).
    * Context switch: 400 references, 4:1 instruction:data (the paper's
      "standard textbook algorithm" trace).
    """

    tlb_instr: int = 12
    tlb_data: int = 2
    tlb_probe_instr: int = 6
    tlb_probe_data: int = 2
    fault_instr: int = 100
    fault_data: int = 20
    switch_instr: int = 320
    switch_data: int = 80

    def __post_init__(self) -> None:
        for name in (
            "tlb_instr",
            "tlb_data",
            "tlb_probe_instr",
            "tlb_probe_data",
            "fault_instr",
            "fault_data",
            "switch_instr",
            "switch_data",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @property
    def switch_refs(self) -> int:
        return self.switch_instr + self.switch_data


@dataclass(frozen=True)
class RampageParams:
    """RAMpage SRAM main memory (paper sections 2.2 and 4.5).

    The SRAM level is the conventional L2's 4 MB plus a bonus equal to
    the tag storage the cache would have needed: the paper gives
    128 KB extra at 128-byte pages, "scaled down for larger page sizes",
    i.e. ``tag_bytes_per_block`` (= 4) per page frame.
    """

    page_bytes: int = 1 * KIB
    base_bytes: int = 4 * MIB
    tag_bytes_per_block: int = 4
    pinned_code_data_bytes: int = 4 * KIB
    ipt_entry_bytes: int = 20
    standby_pages: int = 0  # victim-buffer analogue (section 3.2), 0 = off

    def __post_init__(self) -> None:
        _require_pow2(self.page_bytes, "page_bytes")
        _require_pow2(self.base_bytes, "base_bytes")
        if self.tag_bytes_per_block < 0:
            raise ConfigurationError("tag_bytes_per_block must be >= 0")
        if self.pinned_code_data_bytes < 0 or self.ipt_entry_bytes <= 0:
            raise ConfigurationError("pinning parameters must be positive")
        if self.standby_pages < 0:
            raise ConfigurationError("standby_pages must be >= 0")
        if self.num_frames <= self.pinned_frames:
            raise ConfigurationError(
                "OS pinning would consume the whole SRAM main memory "
                f"({self.pinned_frames} of {self.num_frames} frames)"
            )

    @property
    def total_bytes(self) -> int:
        """SRAM size including the tag-equivalent bonus."""
        base_frames = self.base_bytes // self.page_bytes
        return self.base_bytes + self.tag_bytes_per_block * base_frames

    @property
    def num_frames(self) -> int:
        return self.total_bytes // self.page_bytes

    @property
    def pinned_bytes(self) -> int:
        """OS-resident bytes: handler code/data plus the inverted page table.

        Reproduces section 4.5's footprint: ~24 KB (6 pages) at 4 KB
        pages up to ~667 KB (5336 pages) at 128-byte pages, because the
        table has one entry per SRAM frame.
        """
        return self.pinned_code_data_bytes + self.ipt_entry_bytes * self.num_frames

    @property
    def pinned_frames(self) -> int:
        pages, rem = divmod(self.pinned_bytes, self.page_bytes)
        return pages + (1 if rem else 0)

    @property
    def user_frames(self) -> int:
        return self.num_frames - self.pinned_frames


SystemKind = Literal["conventional", "rampage"]


@dataclass(frozen=True)
class MachineParams:
    """Complete description of one simulated machine.

    ``kind`` selects the hierarchy: ``"conventional"`` uses ``l2``
    (ignoring ``rampage``); ``"rampage"`` uses ``rampage`` (ignoring
    ``l2``).  The factory functions in :mod:`repro.systems.factory`
    build the paper's exact configurations.
    """

    kind: SystemKind
    issue_rate_hz: int = 200_000_000
    l1: L1Params = field(default_factory=L1Params)
    tlb: TlbParams = field(default_factory=TlbParams)
    bus: BusParams = field(default_factory=BusParams)
    dram: RambusParams = field(default_factory=RambusParams)
    l2: CacheParams = field(
        default_factory=lambda: CacheParams(4 * MIB, 128, associativity=1)
    )
    rampage: RampageParams = field(default_factory=RampageParams)
    handlers: HandlerCosts = field(default_factory=HandlerCosts)
    dram_page_bytes: int = 4 * KIB
    victim_cache_blocks: int = 0  # conventional-only extension, 0 = off
    switch_on_miss: bool = False
    scheduled_switches: bool = False
    virtual_l1: bool = False  # RAMpage-only: translate on L1 miss (section 2.3)
    vaddr_bits: int = 32
    seed: int = 0x52414D70  # "RAMp" in ASCII; seeds the replacement RNGs

    def __post_init__(self) -> None:
        if self.kind not in ("conventional", "rampage"):
            raise ConfigurationError(f"unknown system kind {self.kind!r}")
        _require_pow2(self.dram_page_bytes, "dram_page_bytes")
        if self.victim_cache_blocks < 0:
            raise ConfigurationError("victim_cache_blocks must be >= 0")
        if self.virtual_l1 and self.kind != "rampage":
            raise ConfigurationError(
                "virtual L1 caches are RAMpage-only (a conventional "
                "hierarchy maintains inclusion by physical block)"
            )
        if self.kind == "conventional":
            if self.switch_on_miss:
                raise ConfigurationError(
                    "context switch on miss is a RAMpage policy; the "
                    "conventional machine cannot take one"
                )
            if self.l2.block_bytes < self.l1.block_bytes:
                raise ConfigurationError(
                    "L2 block smaller than L1 block breaks inclusion"
                )
        else:
            if self.rampage.page_bytes < self.l1.block_bytes:
                raise ConfigurationError(
                    "SRAM page smaller than the L1 block breaks inclusion"
                )
            if self.rampage.page_bytes > self.dram_page_bytes:
                raise ConfigurationError(
                    "SRAM page larger than the DRAM page is not supported: "
                    "a single SRAM page fault must be served by one DRAM page"
                )
        if not 16 <= self.vaddr_bits <= 48:
            raise ConfigurationError("vaddr_bits must be between 16 and 48")

    @property
    def transfer_unit_bytes(self) -> int:
        """The DRAM transfer unit: L2 block or SRAM page."""
        if self.kind == "conventional":
            return self.l2.block_bytes
        return self.rampage.page_bytes

    @property
    def translation_page_bytes(self) -> int:
        """Page size the TLB translates: DRAM pages (conventional) or
        SRAM pages (RAMpage, section 2.3)."""
        if self.kind == "conventional":
            return self.dram_page_bytes
        return self.rampage.page_bytes

    def with_issue_rate(self, issue_rate_hz: int) -> "MachineParams":
        """Return a copy at a different issue rate (for sweeps)."""
        return replace(self, issue_rate_hz=issue_rate_hz)

    def with_transfer_unit(self, size_bytes: int) -> "MachineParams":
        """Return a copy with a different L2 block / SRAM page size."""
        if self.kind == "conventional":
            return replace(self, l2=replace(self.l2, block_bytes=size_bytes))
        return replace(
            self, rampage=replace(self.rampage, page_bytes=size_bytes)
        )
