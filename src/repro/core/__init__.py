"""Core building blocks shared across the simulator.

This subpackage holds the pieces every other layer depends on:

* :mod:`repro.core.errors` -- the exception hierarchy.
* :mod:`repro.core.rng` -- a deterministic xorshift generator used for
  random replacement so simulations are reproducible bit-for-bit.
* :mod:`repro.core.clock` -- integer-picosecond time accounting.
* :mod:`repro.core.params` -- validated parameter dataclasses describing
  the simulated machines (the paper's section 4 configurations).
* :mod:`repro.core.stats` -- counters and the per-level time breakdown
  used for the paper's figures.
* :mod:`repro.core.timer` -- wall-clock instrumentation (simulator
  throughput, as opposed to simulated time).
"""

from repro.core.clock import (
    PS_PER_NS,
    PS_PER_SECOND,
    SimClock,
    cycle_time_ps,
    ps_to_seconds,
    seconds_to_ps,
)
from repro.core.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.core.params import (
    BusParams,
    CacheParams,
    DiskParams,
    DramParams,
    HandlerCosts,
    L1Params,
    MachineParams,
    RambusParams,
    RampageParams,
    TlbParams,
)
from repro.core.rng import XorShiftRNG
from repro.core.stats import LevelTimes, SimStats
from repro.core.timer import ScopedTimer, refs_per_second

__all__ = [
    "PS_PER_NS",
    "PS_PER_SECOND",
    "SimClock",
    "cycle_time_ps",
    "ps_to_seconds",
    "seconds_to_ps",
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "TraceFormatError",
    "BusParams",
    "CacheParams",
    "DiskParams",
    "DramParams",
    "HandlerCosts",
    "L1Params",
    "MachineParams",
    "RambusParams",
    "RampageParams",
    "TlbParams",
    "XorShiftRNG",
    "LevelTimes",
    "SimStats",
    "ScopedTimer",
    "refs_per_second",
]
