"""Deterministic pseudo-random number generator for replacement policies.

The paper's 2-way associative L2 and the fully associative TLB both use
*random* replacement (sections 4.3 and 4.7).  Simulations must be exactly
reproducible, so instead of :mod:`random` (whose sequence may change
between Python versions for some methods) we use a tiny xorshift64*
generator with an explicit seed.  It is fast enough to sit on the miss
path of a trace-driven simulator.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_MULT = 0x2545F4914F6CDD1D


class XorShiftRNG:
    """xorshift64* generator producing uniform integers.

    Parameters
    ----------
    seed:
        Any integer; a zero seed is remapped to a fixed non-zero value
        because xorshift has an all-zero fixed point.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        state = seed & _MASK64
        if state == 0:
            state = 0x9E3779B97F4A7C15
        self._state = state

    def next_u64(self) -> int:
        """Return the next 64-bit unsigned integer in the sequence."""
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * _MULT) & _MASK64

    def below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)``.

        Uses simple modulo reduction; the bias is negligible for the
        tiny bounds (way counts, TLB sizes) used in replacement.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_u64() % bound

    def coin(self) -> bool:
        """Return a uniformly random boolean."""
        return bool(self.next_u64() & 1)

    def fork(self) -> "XorShiftRNG":
        """Return a new generator seeded from this one's stream.

        Used to hand independent streams to each cache/TLB so adding a
        component does not perturb the replacement decisions of others.
        """
        return XorShiftRNG(self.next_u64())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XorShiftRNG(state={self._state:#x})"
