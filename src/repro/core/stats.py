"""Counters and per-level time breakdown.

The paper reports three kinds of measurement:

* simulated run time (Tables 3-5),
* fraction of run time spent in each level of the hierarchy
  (Figures 2-3) -- buckets ``l1i``, ``l1d``, ``l2`` (or ``sram``),
  ``dram``, plus ``other`` for software that is not attributable to a
  level (handler instruction issue is attributed to the level its
  references hit, exactly like the paper's interleaved handler traces),
* software overhead as a *reference-count* ratio (Figure 4): extra
  TLB-miss/page-fault handler references divided by workload references.

:class:`SimStats` gathers all of it.  Times are integer picoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class LevelTimes:
    """Picoseconds attributed to each hierarchy level.

    ``l2`` doubles as the SRAM-main-memory bucket in RAMpage runs; the
    reporting layer labels it appropriately.
    """

    __slots__ = ("l1i", "l1d", "l2", "dram", "other")

    def __init__(self) -> None:
        self.l1i = 0
        self.l1d = 0
        self.l2 = 0
        self.dram = 0
        self.other = 0

    @property
    def total(self) -> int:
        return self.l1i + self.l1d + self.l2 + self.dram + self.other

    def as_dict(self) -> dict[str, int]:
        return {
            "l1i": self.l1i,
            "l1d": self.l1d,
            "l2": self.l2,
            "dram": self.dram,
            "other": self.other,
        }

    def fractions(self) -> dict[str, float]:
        """Return each bucket as a fraction of the total (0.0 if empty)."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in self.as_dict()}
        return {name: value / total for name, value in self.as_dict().items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"LevelTimes({inner})"


@dataclass
class SimStats:
    """Everything a single simulation run counts.

    Reference counts split workload references (from the benchmark
    traces) from overhead references (handler software), because
    Figure 4 is the ratio of the latter to the former.
    """

    # Workload references, by kind.
    ifetches: int = 0
    reads: int = 0
    writes: int = 0

    # Overhead references injected by software handlers.
    tlb_handler_refs: int = 0
    fault_handler_refs: int = 0
    switch_refs: int = 0

    # Event counts.
    l1i_hits: int = 0
    l1i_misses: int = 0
    l1d_hits: int = 0
    l1d_misses: int = 0
    l1_writebacks: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l2_writebacks: int = 0
    tlb_hits: int = 0
    tlb_misses: int = 0
    page_faults: int = 0
    page_writebacks: int = 0
    context_switches: int = 0
    switches_on_miss: int = 0
    dram_accesses: int = 0
    dram_stall_ps: int = 0
    dram_overlap_ps: int = 0
    inclusion_invalidations: int = 0

    # Time, split per level.
    level_times: LevelTimes = field(default_factory=LevelTimes)

    # Per-process attribution, filled on the slow paths only: how many
    # TLB misses and page faults each pid suffered (the paper's
    # section 6.3 "individual application behaviour").
    tlb_misses_by_pid: dict[int, int] = field(default_factory=dict)
    faults_by_pid: dict[int, int] = field(default_factory=dict)

    @property
    def workload_refs(self) -> int:
        """References that came from the benchmark traces."""
        return self.ifetches + self.reads + self.writes

    @property
    def overhead_refs(self) -> int:
        """References injected by TLB-miss and page-fault handlers.

        Context-switch references are excluded here to match Figure 4,
        which plots "TLB miss and page fault handling overheads".
        """
        return self.tlb_handler_refs + self.fault_handler_refs

    @property
    def overhead_ratio(self) -> float:
        """Figure 4's y-axis: handler refs / workload refs."""
        if self.workload_refs == 0:
            return 0.0
        return self.overhead_refs / self.workload_refs

    @property
    def total_time_ps(self) -> int:
        return self.level_times.total

    @property
    def l1i_references(self) -> int:
        return self.l1i_hits + self.l1i_misses

    @property
    def l1d_references(self) -> int:
        return self.l1d_hits + self.l1d_misses

    def miss_rate(self, level: str) -> float:
        """Return the miss rate of ``level`` (``l1i``/``l1d``/``l2``/``tlb``)."""
        pairs = {
            "l1i": (self.l1i_misses, self.l1i_hits + self.l1i_misses),
            "l1d": (self.l1d_misses, self.l1d_hits + self.l1d_misses),
            "l2": (self.l2_misses, self.l2_hits + self.l2_misses),
            "tlb": (self.tlb_misses, self.tlb_hits + self.tlb_misses),
        }
        if level not in pairs:
            raise KeyError(f"unknown level {level!r}")
        misses, refs = pairs[level]
        if refs == 0:
            return 0.0
        return misses / refs

    def as_dict(self) -> dict[str, object]:
        """Flatten to plain types, for JSON reports and test assertions."""
        data: dict[str, object] = {
            name: getattr(self, name)
            for name in (
                "ifetches",
                "reads",
                "writes",
                "tlb_handler_refs",
                "fault_handler_refs",
                "switch_refs",
                "l1i_hits",
                "l1i_misses",
                "l1d_hits",
                "l1d_misses",
                "l1_writebacks",
                "l2_hits",
                "l2_misses",
                "l2_writebacks",
                "tlb_hits",
                "tlb_misses",
                "page_faults",
                "page_writebacks",
                "context_switches",
                "switches_on_miss",
                "dram_accesses",
                "dram_stall_ps",
                "dram_overlap_ps",
                "inclusion_invalidations",
            )
        }
        data["level_times"] = self.level_times.as_dict()
        data["total_time_ps"] = self.total_time_ps
        data["tlb_misses_by_pid"] = {
            str(pid): count for pid, count in sorted(self.tlb_misses_by_pid.items())
        }
        data["faults_by_pid"] = {
            str(pid): count for pid, count in sorted(self.faults_by_pid.items())
        }
        return data
