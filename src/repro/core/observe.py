"""Observability for the experiment layer: events, counters, manifests.

The run-record cache went multi-process in the parallel sweep engine,
which turned silent cache bookkeeping into something worth watching:
which cells hit, which missed, which files were quarantined as corrupt,
and how fast each simulation ran.  This module gives the experiment
runners three small instruments:

* :class:`EventLog` -- a structured JSONL event stream.  Every event is
  one JSON object per line with a wall-clock timestamp, the emitting
  pid and an ``event`` name; extra fields ride along verbatim.  Events
  always accumulate in memory (a bounded tail, so tests and callers can
  inspect them); they are additionally appended to a file when a path
  is configured (``REPRO_EVENT_LOG``).  Appends are line-buffered per
  event and serialized under a lock, so pool callbacks and server
  request threads can share one log without interleaving JSONL lines.
  Listeners registered with :meth:`EventLog.subscribe` observe every
  emitted payload -- the bridge the sweep service uses to stream
  progress to HTTP clients.
* :class:`CacheStats` -- per-runner counters over the cache layers
  (memory hits, disk hits, misses, stores, quarantines, evictions).
* a cache **manifest** -- one JSON summary per cache directory, written
  atomically under ``<cache_dir>/_meta/manifest.json`` after every
  completed sweep, so ``rampage-sim cache stats`` can answer "what
  happened here" without replaying the event log.

:func:`atomic_write_text` is the shared crash-safety primitive: write
to a temp file in the destination directory, fsync, then ``os.replace``
-- a reader never observes a half-written file, and a ``kill -9``
mid-write leaves the old contents (or nothing) behind, never a torn
file under the final name.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

#: Manifest schema tag, bumped when the manifest layout changes.
MANIFEST_SCHEMA = "rampage-manifest/1"

#: Cache-directory subdirectory holding metadata (manifest), kept apart
#: from the ``<key>.json`` record files so directory scans stay trivial.
META_DIRNAME = "_meta"

MANIFEST_FILENAME = "manifest.json"


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Durably replace ``path``'s contents with ``text``.

    The write goes to a temp file in the same directory (same
    filesystem, so ``os.replace`` is atomic), is fsynced, and only then
    renamed over the destination.  Concurrent writers race benignly:
    the last rename wins with either writer's complete bytes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


class EventLog:
    """Structured JSONL event stream for the experiment layer.

    Parameters
    ----------
    path:
        Optional JSONL file to append events to; ``None`` keeps events
        in memory only.
    clock:
        Timestamp source (seconds); injectable for deterministic tests.
    keep:
        How many events the in-memory tail retains.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        clock=time.time,
        keep: int = 1000,
    ) -> None:
        self.path = Path(path) if path else None
        self._clock = clock
        self._keep = max(1, int(keep))
        self._lock = threading.Lock()
        self._listeners: list[Callable[[dict], None]] = []
        self.events: list[dict] = []

    def subscribe(self, listener: Callable[[dict], None]) -> Callable[[dict], None]:
        """Register ``listener`` to receive every emitted payload."""
        with self._lock:
            self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable[[dict], None]) -> None:
        """Remove a listener; unknown listeners are ignored."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def emit(self, event: str, **fields: object) -> dict:
        """Record one event; returns the payload that was logged.

        Thread-safe: the in-memory append, tail rotation and file
        append happen under one lock, so threads sharing a log never
        interleave half-written JSONL lines or race the rotation.
        Listeners run outside the lock (a slow listener must not stall
        other emitters) but see payloads in a consistent order per
        emitting thread.
        """
        payload: dict = {
            "ts": round(float(self._clock()), 6),
            "pid": os.getpid(),
            "event": event,
        }
        payload.update(fields)
        with self._lock:
            self.events.append(payload)
            if len(self.events) > self._keep:
                del self.events[: len(self.events) - self._keep]
            if self.path is not None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(payload) + "\n")
            listeners = list(self._listeners)
        for listener in listeners:
            listener(payload)
        return payload

    def of(self, event: str) -> list[dict]:
        """The in-memory tail filtered to one event name."""
        with self._lock:
            return [item for item in self.events if item["event"] == event]


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL event file, skipping torn trailing lines.

    A crash can leave a partial final line; that line is dropped rather
    than poisoning the whole log -- the same never-fail-on-torn-data
    policy the cache itself follows.
    """
    events: list[dict] = []
    path = Path(path)
    if not path.exists():
        return events
    for line in path.read_text("utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


@dataclass
class CacheStats:
    """Counters over the run-record cache's layers."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    def as_dict(self) -> dict[str, int]:
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
        }


def manifest_path(cache_dir: str | Path) -> Path:
    return Path(cache_dir) / META_DIRNAME / MANIFEST_FILENAME


def write_manifest(cache_dir: str | Path, payload: dict) -> Path:
    """Atomically write the cache manifest; returns its path."""
    payload = {"schema": MANIFEST_SCHEMA, **payload}
    return atomic_write_text(
        manifest_path(cache_dir), json.dumps(payload, indent=2) + "\n"
    )


def read_manifest(cache_dir: str | Path) -> dict | None:
    """The cache manifest, or ``None`` when absent or unreadable."""
    path = manifest_path(cache_dir)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None
