"""Exception hierarchy for the RAMpage reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch one type at the API boundary.  Configuration mistakes raise
:class:`ConfigurationError` at construction time -- never during a run --
so a simulation that starts will not die half way through a sweep because
of a bad parameter.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A machine or experiment parameter is invalid or inconsistent.

    Raised while building parameter objects or systems, e.g. a cache
    whose block size is not a power of two, or an SRAM page smaller than
    an L1 block.
    """


class SimulationError(ReproError, RuntimeError):
    """An invariant was violated while a simulation was running.

    These indicate bugs in the simulator (or corrupted state injected by
    a test), not user error; they should never occur in normal use.
    """


class TraceFormatError(ReproError, ValueError):
    """A trace file or trace record could not be parsed or validated."""


class CacheIntegrityError(ReproError, ValueError):
    """A cached run record failed validation (torn, tampered or stale).

    Raised while decoding a cache file whose JSON is invalid, whose
    schema or workload version does not match the running code, or
    whose checksum disagrees with its payload.  The experiment runner
    treats this as a cache *miss* -- the file is quarantined and the
    cell recomputed -- so corruption never aborts a sweep.
    """
