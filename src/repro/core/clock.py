"""Integer-picosecond time accounting.

The paper mixes two time bases: SRAM levels are clocked relative to the
CPU "issue rate" (200 MHz ... 4 GHz, section 4.3) while DRAM timing is
fixed in wall-clock nanoseconds (50 ns access, 1.25 ns per 2 bytes).  To
add the two without floating-point drift over hundreds of millions of
references, everything is kept in integer picoseconds:

* 200 MHz -> 5000 ps/cycle ... 4 GHz -> 250 ps/cycle (all integers),
* 50 ns -> 50_000 ps, 1.25 ns -> 1250 ps.

:class:`SimClock` accumulates CPU cycles and DRAM picoseconds separately
(cycle counts are what the caches think in; ps is what DRAM thinks in)
and converts on demand.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError

PS_PER_NS = 1_000
PS_PER_SECOND = 10**12


def cycle_time_ps(issue_rate_hz: int) -> int:
    """Return the CPU cycle time in integer picoseconds.

    Raises :class:`ConfigurationError` if the issue rate does not divide
    one second's worth of picoseconds evenly -- the experiment presets
    only use rates that do (200 MHz, 500 MHz, 1/2/4 GHz), which keeps
    every simulation exactly integral.
    """
    if issue_rate_hz <= 0:
        raise ConfigurationError(f"issue rate must be positive, got {issue_rate_hz}")
    if PS_PER_SECOND % issue_rate_hz != 0:
        raise ConfigurationError(
            f"issue rate {issue_rate_hz} Hz does not give an integral "
            "picosecond cycle time; pick a rate dividing 10^12"
        )
    return PS_PER_SECOND // issue_rate_hz


def ps_to_seconds(ps: int) -> float:
    """Convert picoseconds to (float) seconds for reporting."""
    return ps / PS_PER_SECOND


def seconds_to_ps(seconds: float) -> int:
    """Convert seconds to integer picoseconds (rounding to nearest)."""
    return round(seconds * PS_PER_SECOND)


class SimClock:
    """Monotonic simulation clock.

    The clock advances by whole CPU cycles (:meth:`tick_cycles`) or by
    raw picoseconds (:meth:`tick_ps`, used for DRAM).  ``now_ps`` is the
    single global notion of time; the context-switch-on-miss machinery
    compares it against the Rambus channel's ``free_at`` timestamp.
    """

    __slots__ = ("cycle_ps", "_cycles", "_extra_ps")

    def __init__(self, issue_rate_hz: int) -> None:
        self.cycle_ps = cycle_time_ps(issue_rate_hz)
        self._cycles = 0
        self._extra_ps = 0

    @property
    def cycles(self) -> int:
        """Total CPU cycles charged so far."""
        return self._cycles

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._cycles * self.cycle_ps + self._extra_ps

    def tick_cycles(self, cycles: int) -> int:
        """Advance by ``cycles`` CPU cycles; return the ps charged."""
        self._cycles += cycles
        return cycles * self.cycle_ps

    def tick_ps(self, ps: int) -> int:
        """Advance by raw picoseconds (DRAM time); return ``ps``."""
        self._extra_ps += ps
        return ps

    def advance_to(self, target_ps: int) -> int:
        """Stall until ``target_ps`` if it is in the future.

        Returns the number of picoseconds stalled (0 if ``target_ps`` is
        not ahead of the clock).  Used when a reference needs the Rambus
        channel while a background page transfer still occupies it.
        """
        gap = target_ps - self.now_ps
        if gap <= 0:
            return 0
        self._extra_ps += gap
        return gap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(cycle_ps={self.cycle_ps}, now_ps={self.now_ps})"
