"""Wall-clock instrumentation for the CLI and benchmarks.

The simulator's own time is integer picoseconds of *simulated* time
(:mod:`repro.core.clock`); this module measures how long the simulation
itself takes to run, so the CLI can report throughput and the benchmark
snapshots have one shared definition of "refs per second".
"""

from __future__ import annotations

from time import perf_counter


class ScopedTimer:
    """Context manager around :func:`time.perf_counter`.

    ``elapsed`` reads the running total while the block is open and the
    final duration after it closes; a timer that never entered its block
    reads 0.0.  Re-entering restarts the measurement.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "ScopedTimer":
        self._start = perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._elapsed = perf_counter() - self._start  # type: ignore[operator]
        return False

    @property
    def elapsed(self) -> float:
        """Seconds elapsed (live while open, final once closed)."""
        if self._elapsed is not None:
            return self._elapsed
        if self._start is not None:
            return perf_counter() - self._start
        return 0.0


def refs_per_second(refs: int, elapsed: float) -> float:
    """Throughput of a run that consumed ``refs`` in ``elapsed`` seconds.

    Returns 0.0 for a non-positive duration (a timer that never ran)
    rather than dividing by zero.
    """
    if elapsed <= 0.0:
        return 0.0
    return refs / elapsed
