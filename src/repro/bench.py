"""Simulator-throughput snapshots: ``rampage-sim bench``.

Two instruments, both appended as one snapshot:

* **hot-loop throughput** -- references simulated per wall-clock second
  per machine, the same drive loop as
  ``benchmarks/bench_simulator_throughput.py``.  Each round drives a
  fresh machine over ~120 k references; the best of ``--rounds``
  (default 4) is recorded, which filters scheduler noise the way
  pytest-benchmark's min-based ranking does.
* **multi-cell sweep wall-clock** -- a serial :class:`Runner` filling a
  cold run-record cache, measured three ways: with live per-cell trace
  synthesis (the pre-materialization behaviour), with the materialized
  workload plane but every cell fully simulated (``two_phase=False``),
  and with the two-phase engine (record one miss plane per geometry
  group, replay its siblings as timing arithmetic).  The recorded
  ``two_phase_speedup`` is the headline number for the two-phase
  engine.  ``--baseline-src`` additionally runs the sweep against
  another source tree (a git worktree of an earlier commit) on *its*
  default path, so the snapshot can record end-to-end speedup over
  that commit.

The sweep shape matches what the paper's tables actually do: hold the
geometry fixed and sweep the CPU/DRAM speed ratio (three issue rates,
one size, three machines including switch-on-miss RAMpage -- nine
cells in three plane groups).  Each snapshot also records the
two-phase sweep's replay-mode mix (``full`` / ``recorded`` /
``replayed`` cell counts), so a regression that silently drops cells
back to full simulation shows up in the history.

Environment fields (host, python, cpu) are **derived, never
hand-edited**: earlier snapshots drifted ("container" vs "vm" for the
same machine) because they were typed in; this tool computes them
itself on every append and warns when the environment changed since the
previous snapshot, since refs/s are only comparable within one host.

``--check`` runs a fast self-test on a tiny workload instead of
benchmarking: materialized replay must be byte-identical to live
synthesis, run records must match between the legacy and materialized
paths, and -- for plane-eligible machines -- between the unfiltered,
event-filtered and timing-decoupled execution paths.  CI uses it as a
smoke gate so none of the fast paths can silently desync from the
reference behaviour.

``--replay`` additionally runs the decision-op **replay-kernel
microbenchmark**: one preempting plane per machine (switch-on-miss
RAMpage and virtual-L1), its nine-cell sibling grid (three issue rates
x three Rambus timings) priced by the scalar ``_replay_timeline``
interpreter versus the vectorized
:class:`~repro.trace.replay_kernel.ReplayKernel` (cold build + batched
``price_many``, and warm on the memoized kernel).  Every cell's
vectorized output is compared to the scalar oracle first and any
mismatch fails the run -- the CI identity gate for the kernel.

Usage:
    rampage-sim bench [--rounds N] [--note TEXT] [--out FILE] [--replay]
    rampage-sim bench --check
    PYTHONPATH=src python tools/bench_snapshot.py [...]   # same tool
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import date
from pathlib import Path

import numpy as np

from repro.core.clock import cycle_time_ps
from repro.core.params import RambusParams
from repro.core.timer import ScopedTimer, refs_per_second
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner
from repro.systems.factory import (
    baseline_machine,
    build_system,
    rampage_machine,
    virtual_l1_machine,
)
from repro.systems.simulator import simulate
from repro.trace import filter as missplane
from repro.trace import materialize
from repro.trace.interleave import InterleavedWorkload
from repro.trace.replay_kernel import ReplayKernel
from repro.trace.synthetic import build_workload

REFS = 120_000
SCALE = 0.0002
SLICE_REFS = 10_000

MACHINES = {
    "conventional": lambda: baseline_machine(10**9, 512),
    "rampage": lambda: rampage_machine(10**9, 1024),
}

#: Multi-cell sweep shape: three grids over three issue rates at one
#: size -- nine cells in three plane groups, the speed-ratio sweep every
#: paper table runs.  ``rampage_som`` exercises the preempting
#: (decision-op tape) replay path.
SWEEP_LABELS = ("baseline", "rampage", "rampage_som")
SWEEP_SIZES = (512,)
SWEEP_RATES = (2 * 10**8, 10**9, 4 * 10**9)
SWEEP_SCALE = 0.0002
SWEEP_SLICE_REFS = 10_000

#: ``--replay`` grid: every Rambus timing the preempt-plane tests use
#: (default, a slow part, a pipelined channel) crossed with the sweep
#: rates -- nine sibling cells sharing one preempting plane group.
REPLAY_DRAM_TIMINGS = (
    RambusParams(),
    RambusParams(access_ps=90_000, ps_per_beat=2_500),
    RambusParams(pipelined=True),
)


def environment() -> dict:
    """Derived environment fields -- never taken from hand-edited JSON."""
    return {
        "host": platform.node() or "unknown",
        "os": f"{platform.system()} {platform.release()}",
        "arch": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def drive(params) -> int:
    system = build_system(params)
    workload = InterleavedWorkload(
        build_workload(scale=SCALE), slice_refs=SLICE_REFS
    )
    consumed = 0
    while consumed < REFS:
        chunk = workload.next_chunk()
        if chunk is None:
            break
        consumed += system.run_chunk(chunk)
    return consumed


def measure(rounds: int) -> dict[str, int]:
    throughput: dict[str, int] = {}
    for name, build in MACHINES.items():
        best = 0.0
        for _ in range(rounds):
            params = build()
            with ScopedTimer() as timer:
                consumed = drive(params)
            best = max(best, refs_per_second(consumed, timer.elapsed))
        throughput[name] = int(round(best))
        print(f"{name}: {throughput[name]:,} refs/s (best of {rounds})")
    return throughput


def sweep_config(cache_dir: Path) -> ExperimentConfig:
    return ExperimentConfig(
        scale=SWEEP_SCALE,
        slice_refs=SWEEP_SLICE_REFS,
        issue_rates=SWEEP_RATES,
        sizes=SWEEP_SIZES,
        seed=0,
        cache_dir=cache_dir,
    )


def run_sweep(materialized: bool, two_phase: bool = False) -> tuple[float, dict]:
    """One cold-cache serial sweep; returns (wall seconds, mode mix).

    A fresh temp cache directory per call keeps the run-record cache,
    the trace plane and the miss planes cold (the in-process registries
    key on the cache directory), so every round pays the full cost of
    its path: synthesis per cell on the legacy path, one synthesis per
    sweep on the materialized one, one recording per plane group plus
    near-free replays on the two-phase one.  The mode mix counts
    ``cell_completed`` events by their ``mode`` field.
    """
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        runner = Runner(
            sweep_config(Path(tmp)),
            materialize=materialized,
            two_phase=two_phase,
        )
        with ScopedTimer() as timer:
            for label in SWEEP_LABELS:
                runner.grid(label)
        modes = [e["mode"] for e in runner.events.of("cell_completed")]
        mix = {mode: modes.count(mode) for mode in sorted(set(modes))}
        return timer.elapsed, mix


def measure_sweep(rounds: int) -> dict:
    cells = len(SWEEP_LABELS) * len(SWEEP_SIZES) * len(SWEEP_RATES)
    legacy = min(run_sweep(materialized=False)[0] for _ in range(rounds))
    materialized = min(run_sweep(materialized=True)[0] for _ in range(rounds))
    two_phase = float("inf")
    modes: dict = {}
    for _ in range(rounds):
        elapsed, mix = run_sweep(materialized=True, two_phase=True)
        if elapsed < two_phase:
            two_phase, modes = elapsed, mix
    speedup = legacy / materialized if materialized else float("inf")
    two_phase_speedup = materialized / two_phase if two_phase else float("inf")
    print(
        f"sweep ({cells} cells, cold cache): legacy {legacy:.3f}s, "
        f"materialized {materialized:.3f}s ({speedup:.2f}x), "
        f"two-phase {two_phase:.3f}s ({two_phase_speedup:.2f}x more), "
        f"modes {modes}"
    )
    return {
        "cells": cells,
        "labels": list(SWEEP_LABELS),
        "sizes": list(SWEEP_SIZES),
        "rates": list(SWEEP_RATES),
        "scale": SWEEP_SCALE,
        "slice_refs": SWEEP_SLICE_REFS,
        "legacy_wall_s": round(legacy, 4),
        "materialized_wall_s": round(materialized, 4),
        "two_phase_wall_s": round(two_phase, 4),
        "speedup": round(speedup, 3),
        "two_phase_speedup": round(two_phase_speedup, 3),
        "modes": modes,
    }


def measure_replay(rounds: int) -> dict:
    """``--replay``: scalar vs vectorized group re-pricing, plus a gate.

    Records one preempting plane per machine (switch-on-miss RAMpage
    and switch-on-miss virtual-L1 at the sweep scale), then prices the
    nine-cell sibling grid (:data:`SWEEP_RATES` ×
    :data:`REPLAY_DRAM_TIMINGS`) three ways:

    * **scalar** -- the per-cell ``_replay_timeline`` interpreter, the
      pre-kernel ``replay_group`` behaviour;
    * **group** -- a cold :class:`~repro.trace.replay_kernel.ReplayKernel`
      build plus one batched ``price_many`` (what a fresh plane costs);
    * **warm** -- ``price_many`` on the memoized kernel (what every
      further ``replay_group`` call on a registry-served plane costs).

    Every (cell, machine) output is compared against the scalar oracle
    first; any mismatch is counted and fails the run -- this is the CI
    identity gate, not just a speed report.
    """
    timings = [
        (dram, cycle_time_ps(rate))
        for dram in REPLAY_DRAM_TIMINGS
        for rate in SWEEP_RATES
    ]
    machines = {
        "rampage_som": rampage_machine(10**9, 1024, switch_on_miss=True),
        "rampage_vl1_som": virtual_l1_machine(
            10**9, 1024, switch_on_miss=True
        ),
    }
    programs = materialize.get_workload(SWEEP_SCALE, 0).programs
    report: dict = {
        "cells": len(timings),
        "rates": list(SWEEP_RATES),
        "dram_timings": [repr(dram) for dram in REPLAY_DRAM_TIMINGS],
        "scale": SWEEP_SCALE,
        "slice_refs": SWEEP_SLICE_REFS,
        "mismatches": 0,
        "machines": {},
    }
    for label, params in machines.items():
        recorder = missplane.PlaneRecorder(
            missplane.plane_key(params, SWEEP_SCALE, 0, SWEEP_SLICE_REFS)
        )
        simulate(
            params,
            programs,
            slice_refs=SWEEP_SLICE_REFS,
            record_plane=recorder,
        )
        plane = recorder.finalize()
        columns = plane.dop_rows()
        kernel = ReplayKernel(plane.dops)
        scalar_out = [
            missplane._replay_timeline(dram, cyc, columns)
            for dram, cyc in timings
        ]
        kernel_out = kernel.price_many(timings)
        bad = sum(1 for a, b in zip(scalar_out, kernel_out) if a != b)
        if bad:
            print(
                f"REPLAY GATE FAILED: {label}: {bad}/{len(timings)} cells "
                "diverge between the scalar and vectorized kernels"
            )
            report["mismatches"] += bad
            continue
        scalar_wall = group_wall = warm_wall = float("inf")
        for _ in range(rounds):
            with ScopedTimer() as timer:
                for dram, cyc in timings:
                    missplane._replay_timeline(dram, cyc, columns)
            scalar_wall = min(scalar_wall, timer.elapsed)
            with ScopedTimer() as timer:
                ReplayKernel(plane.dops).price_many(timings)
            group_wall = min(group_wall, timer.elapsed)
            with ScopedTimer() as timer:
                kernel.price_many(timings)
            warm_wall = min(warm_wall, timer.elapsed)
        ops = len(plane.dops) * len(timings)
        entry = {
            "dops": int(len(plane.dops)),
            "contended_ops": int(kernel.contended_ops),
            "scalar_wall_s": round(scalar_wall, 6),
            "group_wall_s": round(group_wall, 6),
            "warm_wall_s": round(warm_wall, 6),
            "speedup": round(scalar_wall / group_wall, 2),
            "warm_speedup": round(scalar_wall / warm_wall, 2),
            "kernel_ops_per_s": int(round(ops / warm_wall)),
        }
        report["machines"][label] = entry
        print(
            f"replay {label}: {len(timings)} cells x {entry['dops']} dops "
            f"({entry['contended_ops']} contended), scalar "
            f"{scalar_wall * 1e3:.2f} ms, group {group_wall * 1e3:.2f} ms "
            f"({entry['speedup']:.1f}x), warm {warm_wall * 1e3:.2f} ms "
            f"({entry['warm_speedup']:.1f}x, "
            f"{entry['kernel_ops_per_s']:,} ops/s)"
        )
    return report


#: Subprocess harness for --baseline-src: runs the same sweep shape
#: against a different source tree (typically a git worktree of an
#: earlier commit) on that tree's *default* serial-runner path, so the
#: recorded speedup is end-to-end against what that commit actually
#: shipped rather than against a handicapped configuration.
_BASELINE_HARNESS = """
import json, sys, tempfile, time
from pathlib import Path
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner

labels, sizes, rates, scale, slice_refs, rounds = json.loads(sys.argv[1])
best_wall = best_cpu = float("inf")
for _ in range(rounds):
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        config = ExperimentConfig(
            scale=scale, slice_refs=slice_refs, issue_rates=tuple(rates),
            sizes=tuple(sizes), seed=0, cache_dir=Path(tmp),
        )
        runner = Runner(config)
        wall0, cpu0 = time.perf_counter(), time.process_time()
        for label in labels:
            runner.grid(label)
        best_wall = min(best_wall, time.perf_counter() - wall0)
        best_cpu = min(best_cpu, time.process_time() - cpu0)
print(json.dumps({"wall_s": best_wall, "cpu_s": best_cpu}))
"""


def measure_baseline_src(src: str, rounds: int) -> dict:
    """Best-of-``rounds`` sweep wall/cpu seconds for another source tree."""
    shape = json.dumps(
        [
            list(SWEEP_LABELS),
            list(SWEEP_SIZES),
            list(SWEEP_RATES),
            SWEEP_SCALE,
            SWEEP_SLICE_REFS,
            rounds,
        ]
    )
    env = dict(os.environ, PYTHONPATH=src)
    out = subprocess.run(
        [sys.executable, "-c", _BASELINE_HARNESS, shape],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _check_two_phase(scale: float, seed: int) -> int:
    """Unfiltered vs event-filtered vs timing-decoupled, byte-for-byte.

    Records one miss plane per eligible machine -- including the
    preempting switch-on-miss and virtual-L1 machines, whose planes
    carry a decision-op tape -- then asserts that both phase-2 paths
    reproduce the plain simulation's record exactly, across issue
    rates, so the decoupled arithmetic is exercised away from the
    recording cell's clock.
    """
    slice_refs = 4_000
    programs = materialize.get_workload(scale, seed).programs
    machines = {
        "baseline": lambda rate: baseline_machine(rate, 512),
        "rampage": lambda rate: rampage_machine(rate, 1024),
        "rampage_som": lambda rate: rampage_machine(
            rate, 1024, switch_on_miss=True
        ),
        "rampage_vl1": lambda rate: virtual_l1_machine(rate, 1024),
    }
    for label, build in machines.items():
        recorder = missplane.PlaneRecorder(
            missplane.plane_key(build(10**9), scale, seed, slice_refs)
        )
        recorded = simulate(
            build(10**9), programs, slice_refs=slice_refs, record_plane=recorder
        )
        plane = recorder.finalize()
        for rate in (2 * 10**8, 10**9, 4 * 10**9):
            params = build(rate)
            plain = (
                recorded
                if rate == 10**9
                else simulate(params, programs, slice_refs=slice_refs)
            )
            reference = plain.stats.as_dict()
            filtered = simulate(
                params, programs, slice_refs=slice_refs, replay_plane=plane
            )
            if filtered.stats.as_dict() != reference:
                print(
                    f"CHECK FAILED: {label} @{rate} Hz event-filtered replay "
                    "diverges from the unfiltered run"
                )
                return 1
            decoupled = missplane.replay_decoupled(params, plane)
            if decoupled.stats.as_dict() != reference:
                print(
                    f"CHECK FAILED: {label} @{rate} Hz timing-decoupled "
                    "replay diverges from the unfiltered run"
                )
                return 1
    return 0


def _check_mode_mix(scale: float, seed: int) -> int:
    """No plane-eligible cell may fall back to a full simulation.

    Drives the bench sweep's own labels (all of them plane-eligible,
    including the preempting ``rampage_som`` grid) through a cold
    two-phase sweep and fails if any cell completed as ``mode=full`` --
    the regression this gate exists to catch is an eligibility or
    recording bug silently degrading the sweep to phase-1 everywhere.
    """
    with tempfile.TemporaryDirectory(prefix="bench-check-") as tmp:
        config = ExperimentConfig(
            scale=scale,
            slice_refs=4_000,
            issue_rates=(2 * 10**8, 10**9),
            sizes=(512,),
            seed=seed,
            cache_dir=Path(tmp),
        )
        runner = Runner(config)
        for label in SWEEP_LABELS:
            runner.grid(label)
        completions = runner.events.of("cell_completed")
        fallbacks = [e for e in completions if e["mode"] == "full"]
        if fallbacks:
            labels = sorted({str(e.get("label")) for e in fallbacks})
            print(
                f"CHECK FAILED: {len(fallbacks)} plane-eligible cells fell "
                f"back to mode=full ({', '.join(labels)})"
            )
            return 1
        modes = [e["mode"] for e in completions]
        print(
            "mode mix OK: "
            f"{modes.count('recorded')} recorded, "
            f"{modes.count('replayed')} replayed, 0 full"
        )
    return 0


def check() -> int:
    """Fast self-test: every fast path == the reference, tiny scale.

    Exit code 1 on any divergence.  Cheap enough for CI (a few seconds):
    the goal is catching a desync between the materialized, vectorized,
    event-filtered and timing-decoupled paths and the reference
    behaviour, not measuring speed.
    """
    scale, seed = 0.00005, 0
    materialize.clear_registry()
    missplane.clear_registry()
    live = build_workload(scale, seed=seed)
    plane = materialize.get_workload(scale, seed, cache_dir=None)
    for a, b in zip(live, plane.programs):
        for field in ("kinds", "addrs"):
            flat_live = np.concatenate([getattr(c, field) for c in a.chunks()])
            flat_plane = np.concatenate([getattr(c, field) for c in b.chunks()])
            if not np.array_equal(flat_live, flat_plane):
                print(
                    f"CHECK FAILED: {a.spec.name} {field} diverge between "
                    "live synthesis and materialized replay"
                )
                return 1
    config = ExperimentConfig(
        scale=scale,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128,),
        seed=seed,
        cache_dir=None,
    )
    machines = {
        "baseline": baseline_machine(10**9, 512),
        "rampage_som": rampage_machine(10**9, 1024, switch_on_miss=True),
    }
    for label, params in machines.items():
        legacy = Runner(config, materialize=False).record(label, params)
        replay = Runner(config).record(label, params)
        if legacy.as_dict() != replay.as_dict():
            print(f"CHECK FAILED: {label} records diverge between paths")
            return 1
    if _check_two_phase(scale, seed):
        return 1
    if _check_mode_mix(scale, seed):
        return 1
    print(
        f"check OK: {plane.total_refs} refs replay byte-identical; "
        f"records match on {', '.join(machines)}; filtered and decoupled "
        "replays match the unfiltered runs"
    )
    return 0


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Benchmark flags, shared by the CLI subcommand and the tool."""
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument(
        "--sweep-rounds",
        type=int,
        default=3,
        help="rounds for the multi-cell sweep benchmark",
    )
    parser.add_argument(
        "--note", default="", help="what changed since the last snapshot"
    )
    parser.add_argument(
        "--baseline-src",
        default="",
        help=(
            "src directory of another checkout (e.g. a git worktree of an "
            "earlier commit); the sweep is also run there and the snapshot "
            "records speedup against it"
        ),
    )
    parser.add_argument(
        "--baseline-label",
        default="",
        help="how to label the --baseline-src tree (e.g. a commit id)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fast equivalence self-test (no benchmark, no file write)",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help=(
            "also run the decision-op replay-kernel microbenchmark "
            "(scalar vs vectorized group re-pricing on preempting "
            "grids); fails if any cell's vectorized output diverges "
            "from the scalar oracle"
        ),
    )
    parser.add_argument(
        "--out",
        default="",
        help="snapshot file to append to (default: ./BENCH_throughput.json)",
    )


def run(args: argparse.Namespace) -> int:
    """Execute the benchmark (or ``--check``) described by ``args``."""
    if args.check:
        return check()

    path = Path(args.out) if args.out else Path.cwd() / "BENCH_throughput.json"
    if path.exists():
        data = json.loads(path.read_text("utf-8"))
    else:
        data = {
            "unit": "refs_per_second",
            "workload": {"refs": REFS, "scale": SCALE, "slice_refs": SLICE_REFS},
            "snapshots": [],
        }

    env = environment()
    snapshots = data.get("snapshots", [])
    if snapshots:
        last = snapshots[-1]
        drift = [
            key
            for key in ("host", "python", "cpu_count")
            if key in last and last[key] != env[key]
        ]
        if drift:
            print(
                "note: environment changed since last snapshot "
                f"({', '.join(drift)}); refs/s are only comparable within one host"
            )

    snapshot = {
        "date": date.today().isoformat(),
        **env,
        "note": args.note,
        "throughput": measure(args.rounds),
        "sweep": measure_sweep(args.sweep_rounds),
    }
    if args.replay:
        replay = measure_replay(args.sweep_rounds)
        if replay["mismatches"]:
            return 1
        snapshot["replay_kernel"] = replay
    if args.baseline_src:
        baseline = measure_baseline_src(args.baseline_src, args.sweep_rounds)
        two_phase = snapshot["sweep"]["two_phase_wall_s"]
        baseline["label"] = args.baseline_label or args.baseline_src
        baseline["wall_s"] = round(baseline["wall_s"], 4)
        baseline["cpu_s"] = round(baseline["cpu_s"], 4)
        baseline["speedup_vs_two_phase"] = round(
            baseline["wall_s"] / two_phase, 3
        )
        snapshot["sweep"]["baseline"] = baseline
        print(
            f"baseline [{baseline['label']}]: {baseline['wall_s']:.3f}s, "
            f"two-phase speedup {baseline['speedup_vs_two_phase']:.2f}x"
        )
    snapshots.append(snapshot)
    data["snapshots"] = snapshots
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
