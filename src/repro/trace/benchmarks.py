"""The Table 2 workload catalogue.

The paper drives its simulations with 18 programs traced on an R2000
(SPEC92 plus Unix utilities), totalling ~1.1 billion references.  Table 2
gives, for each, the number of instruction fetches and total references
(millions).  Those counts are reproduced here verbatim; the locality
parameters (working-set sizes, pattern mix) are our modelling of each
program class, documented per entry, since the original traces are not
redistributable.

Two OCR notes on the source text, recorded for transparency:
* the program column lists "SC" and "Sd"; these are ``gcc`` and ``sed``
  (descriptions "C compiler (int92)" and "unix text utility" appear in
  the description column),
* description/count columns are slightly misaligned in the OCR; counts
  are assigned in row order, giving the 1.09 G-reference total the paper
  reports as "1.1-billion references".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class PatternMix:
    """Relative weights of the data-access patterns for one program.

    ``stack`` is a small, intensely reused region (activation records,
    loop variables) responsible for the high L1 data hit rates real
    traces exhibit; the other four are described in
    :mod:`repro.trace.patterns`.
    """

    sequential: float = 0.0
    strided: float = 0.0
    hot: float = 0.0
    chase: float = 0.0
    stack: float = 0.0

    def __post_init__(self) -> None:
        weights = self.as_tuple()
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError("pattern weights must be >= 0 and sum > 0")

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.sequential, self.strided, self.hot, self.chase, self.stack)


@dataclass(frozen=True)
class ProgramSpec:
    """One Table 2 program: paper counts plus locality modelling.

    ``ifetch_millions`` / ``total_millions`` are Table 2's columns.
    ``code_bytes`` sizes the instruction footprint; ``array_bytes``,
    ``hot_bytes`` and ``chase_bytes`` size the data regions the pattern
    mix draws from; ``write_fraction`` is the fraction of data
    references that are writes.
    """

    name: str
    description: str
    ifetch_millions: float
    total_millions: float
    code_bytes: int = 32 * KIB
    array_bytes: int = 256 * KIB
    hot_bytes: int = 16 * KIB
    chase_bytes: int = 32 * KIB
    stack_bytes: int = 4 * KIB
    stride_bytes: int = 128
    mean_run: int = 12
    write_fraction: float = 0.34
    mix: PatternMix = field(default_factory=lambda: PatternMix(hot=1.0))

    def __post_init__(self) -> None:
        if self.ifetch_millions <= 0 or self.total_millions <= 0:
            raise ConfigurationError(f"{self.name}: reference counts must be positive")
        if self.ifetch_millions > self.total_millions:
            raise ConfigurationError(
                f"{self.name}: instruction fetches exceed total references"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: write_fraction out of range")
        for size_name in (
            "code_bytes",
            "array_bytes",
            "hot_bytes",
            "chase_bytes",
            "stack_bytes",
        ):
            if getattr(self, size_name) <= 0:
                raise ConfigurationError(f"{self.name}: {size_name} must be positive")

    @property
    def ifetch_fraction(self) -> float:
        return self.ifetch_millions / self.total_millions

    @property
    def data_millions(self) -> float:
        return self.total_millions - self.ifetch_millions

    def references_at_scale(self, scale: float) -> int:
        """Total references this program contributes at a given scale."""
        return max(1, round(self.total_millions * 1e6 * scale))


def _fp_kernel(
    name: str,
    description: str,
    ifetch: float,
    total: float,
    array_kib: int,
    stride: int = 512,
) -> ProgramSpec:
    """SPECfp92 kernels: long straight-line loops sweeping big arrays.

    Mostly sequential/strided array traffic with a small scalar stack;
    long fetch runs (few branches).
    """
    return ProgramSpec(
        name=name,
        description=description,
        ifetch_millions=ifetch,
        total_millions=total,
        code_bytes=16 * KIB,
        array_bytes=array_kib * KIB,
        hot_bytes=64 * KIB,
        chase_bytes=16 * KIB,
        stack_bytes=4 * KIB,
        stride_bytes=stride,
        mean_run=24,
        write_fraction=0.30,
        mix=PatternMix(
            sequential=0.30, strided=0.05, hot=0.25, chase=0.02, stack=0.38
        ),
    )


def _int_program(
    name: str,
    description: str,
    ifetch: float,
    total: float,
    hot_kib: int = 32,
    chase_kib: int = 48,
) -> ProgramSpec:
    """Integer codes: branchy, stack-heavy, hot structures plus some
    pointer chasing over heap-sized regions."""
    return ProgramSpec(
        name=name,
        description=description,
        ifetch_millions=ifetch,
        total_millions=total,
        code_bytes=48 * KIB,
        array_bytes=64 * KIB,
        hot_bytes=hot_kib * KIB,
        chase_bytes=chase_kib * KIB,
        stack_bytes=8 * KIB,
        stride_bytes=64,
        mean_run=8,
        write_fraction=0.38,
        mix=PatternMix(
            sequential=0.12, strided=0.03, hot=0.30, chase=0.08, stack=0.47
        ),
    )


def _stream_utility(
    name: str, description: str, ifetch: float, total: float, hot_kib: int = 32
) -> ProgramSpec:
    """Streaming utilities (compress/uncompress): sequential input plus
    hash-table probing over a dictionary-sized hot set."""
    return ProgramSpec(
        name=name,
        description=description,
        ifetch_millions=ifetch,
        total_millions=total,
        code_bytes=16 * KIB,
        array_bytes=256 * KIB,
        hot_bytes=hot_kib * KIB,
        chase_bytes=32 * KIB,
        stack_bytes=4 * KIB,
        stride_bytes=32,
        mean_run=10,
        write_fraction=0.40,
        mix=PatternMix(
            sequential=0.40, strided=0.0, hot=0.25, chase=0.08, stack=0.27
        ),
    )


TABLE2_PROGRAMS: tuple[ProgramSpec, ...] = (
    _fp_kernel("alvinn", "neural net training (fp92)", 59.0, 72.8, array_kib=128, stride=128),
    _int_program("awk", "unix text utility", 62.8, 86.4, hot_kib=64),
    _int_program("cexp", "expression evaluator (int92)", 28.5, 37.5, hot_kib=32),
    _stream_utility("compress", "file compression (int92)", 8.0, 10.5),
    _fp_kernel("ear", "human ear simulator (fp92)", 65.0, 80.4, array_kib=192, stride=256),
    _int_program("gcc", "C compiler (int92)", 78.8, 100.0, hot_kib=96, chase_kib=128),
    _fp_kernel("hydro2d", "physics computation (fp92)", 8.2, 11.0, array_kib=256, stride=1024),
    _fp_kernel("mdljdp2", "solves motion eqns (fp92)", 65.0, 84.2, array_kib=192, stride=512),
    _fp_kernel("mdljsp2", "solves motion eqns (fp92)", 65.0, 77.0, array_kib=192, stride=512),
    _fp_kernel("nasa7", "NASA applications (fp92)", 65.0, 99.7, array_kib=384, stride=2048),
    _fp_kernel("ora", "ray tracing (fp92)", 65.0, 82.9, array_kib=96, stride=64),
    _int_program("sed", "unix text utility", 7.7, 9.8, hot_kib=24),
    _fp_kernel("su2cor", "physics computation (fp92)", 65.0, 88.8, array_kib=256, stride=1024),
    _fp_kernel("swm256", "physics computation (fp92)", 65.0, 87.4, array_kib=320, stride=512),
    _int_program("tex", "unix text utility", 50.3, 66.8, hot_kib=128),
    _stream_utility("uncompress", "file decompression (int92)", 5.7, 7.5),
    _fp_kernel("wave5", "solves particle equations (fp92)", 65.0, 78.3, array_kib=256, stride=1024),
    _int_program("yacc", "unix text utility", 9.7, 12.1, hot_kib=48),
)


def table2_catalog() -> dict[str, ProgramSpec]:
    """Return the catalogue keyed by program name."""
    return {spec.name: spec for spec in TABLE2_PROGRAMS}


def total_references_millions() -> float:
    """Total references across the catalogue (paper: ~1.1 billion)."""
    return sum(spec.total_millions for spec in TABLE2_PROGRAMS)
