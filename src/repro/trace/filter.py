"""L1/TLB-filtered miss planes: phase 1 of the two-phase sweep.

The paper's sweeps hold the split 16 KB L1s and the TLB fixed while
varying CPU/DRAM speed ratios, so every cell of an issue-rate sweep
re-simulates the identical L1 front-end over the full interleaved
reference stream.  This module implements Puzak-style trace stripping
for that case: run the front-end once per *structural* machine geometry,
persist the resulting **miss plane** -- the sparse sequence of reference
runs that reach the TLB-miss or L1-miss paths, plus aggregate hit
counters for everything in between -- and let every other cell sharing
that geometry replay only the plane's events
(:meth:`~repro.systems.base.MemorySystem._run_chunk_filtered`).

Soundness: why a recorded plane replays byte-identically
--------------------------------------------------------

A naive L1-only filter is *unsound* here because the back-end feeds
state into the front-end: L2 evictions and RAMpage page faults
invalidate L1 blocks through inclusion (``_flush_l1_range``), so which
references miss in L1 depends on the whole machine, not the L1 alone.
The plane therefore is not a pure front-end filter -- it is a recording
of a **full live simulation** keyed by every parameter that can affect
the event sequence.  Two cells share a plane only when they differ in
*timing-only* parameters (:func:`structural_params` normalises exactly
``issue_rate_hz`` and the Rambus ``dram`` timing): time is read by the
simulation solely to charge stalls (``RambusChannel.synchronous`` and
friends mutate nothing but the clock and level-time counters), so for
non-preempting machines the sequence of TLB misses, L1 misses, handler
references, page faults, frame allocations and RNG draws is invariant
across the cells of a plane group.  Replay then reproduces the exact
state trajectory:

* **TLB** -- inserts, flushes and replacement-RNG draws happen only
  inside ``_translate``/``_page_fault``, which replay runs live at each
  recorded translate event; probes have no side effects.
* **L1** -- every fill, eviction and inclusion flush happens at a
  recorded event (or inside live handler/context-switch execution
  between events), so the tag arrays evolve identically; dirty bits set
  by *skipped* write-hit runs are recorded as explicit 0->1 transitions
  per gap and applied before the next event, since evictions and
  flushes read them.
* **Frames** are stored per event because the hot loop's (vpn, frame)
  micro-cache can bridge a TLB eviction -- a live re-probe at replay
  time could spuriously miss.  Frame values are structural (first-touch
  allocation order / the SRAM clock algorithm), so they replay exactly.
* **Cycles** -- ``SimClock.tick_cycles`` is linear, so bulk-crediting a
  gap's batched instruction-hit cycles is the same arithmetic as the
  unfiltered loop's batching, and the batch is flushed before every
  event, the only point where anything reads the clock.

Preempting machines (the decision-op tape)
------------------------------------------

Switch-on-miss RAMpage (and its virtual-L1 variant) preempt mid-chunk
on hard faults and queue page transfers in the background, so their
DRAM stall/overlap totals are *not* a pure function of byte counts.
Their event sequence is still timing-invariant, though: preemption
fires on every hard fault regardless of timing, and the only code that
reads the clock either charges a stall (``synchronous``,
``advance_to``) or prunes already-completed background entries
(``_prune_pending`` -- behaviour-neutral, because a pruned entry's
stall would have been zero).  Everything that *steers* control flow --
TLB misses, faults, victim choice, preemption points, chunk rotation,
RNG draws -- is structural, and so are the **CPU cycle counts** at
every DRAM interaction (all non-DRAM time is ``tick_cycles``; DRAM
time accumulates separately in the clock's ``extra`` picoseconds).

Recording therefore captures a **decision-op tape** (``dops.npy``): one
row per DRAM interaction -- blocking transfer (``SYNC``), background
writeback/fill (``BG_WB``/``BG_FILL``), or a potential wait on an
in-flight fill (``WAIT``) -- stamped with the absolute CPU cycle count
at which it happened.  ``WAIT`` rows are emitted at every *structural*
first touch of a filled frame (a shadow pending map that is never
time-pruned), because whether the touch actually stalls depends on the
sibling's timing.  :func:`replay_decoupled` then re-derives
``dram_stall_ps``/``dram_overlap_ps``/``level_times.dram`` for any
sibling cell with an exact integer max-plus recursion over the tape
(see ``_replay_timeline``); chunks additionally record how many
references they ``consumed`` before preempting so event-level replay
can hand the tail back to the workload.

Timing-decoupled replay (phase 2's fast path)
---------------------------------------------

For non-preempting machines the clock never lags the Rambus channel:
every DRAM transfer is synchronous, and ``_dram_sync`` advances the
clock past the transfer immediately, so the channel's ``free_at``
always equals ``now`` at the next request and the queueing wait is zero
at *any* issue rate.  The recorded run's DRAM time is therefore a pure
function of the per-access byte counts -- the **timing tape** -- and
every other level-time counter is an exact multiple of the cycle time
(``SimClock.tick_cycles`` is linear and ``cycle_time_ps`` guarantees an
integral cycle).  :func:`replay_decoupled` reproduces a sibling cell's
byte-identical run record by arithmetic alone: rescale the recorded
per-level cycle counts to the cell's clock and re-price the tape under
the cell's Rambus timing, without touching the workload.  Preempting
machines replace the tape pricing with the decision-op recursion
above; either way the event-level replay path
(``_run_chunk_filtered``) remains the state-exact validation harness
for the arithmetic, and :func:`replay_group` prices a whole plane
group's sibling cells in one vectorized pass.

Artifact layout (one directory per key under ``<cache_dir>/planes/``)::

    planes/<key>/
    ├── chunks.npy      # int64 (C, 4): pid, n_refs, n_events, consumed
    ├── events.npy      # int64 (E, 6): gvpn, frame, length, offset, bip, writes
    ├── flags.npy       # uint8 (E,): translate/ifetch/l1-miss/first-write/preempt
    ├── gaps.npy        # int64 (E+C, 4): ifetches, reads, writes, dirty count
    ├── dirty.npy       # int64 (D,): 0->1 dirty-bit transitions, gap-ordered
    ├── tape.npy        # int64 (A,): bytes moved per synchronous DRAM access
    ├── dops.npy        # int64 (N, 3): kind, arg, cycles decision ops (may be empty)
    └── manifest.json   # schema, versions, checksums, timing payload

``rampage-plane/1`` artifacts (3-column chunk table, no ``dops.npy``)
remain readable: v1 planes could only record non-preempting machines,
for which an empty decision tape and ``consumed == n_refs`` are exactly
equivalent, so the loader upgrades them in memory.

Commits, validation and quarantine follow the trace plane's envelope
discipline exactly (:mod:`repro.trace.materialize`, ``docs/cache.md``):
atomic temp-dir-then-rename commits with benign concurrent races (plane
bytes are deterministic, so the loser discards its copy), strict
checksum/schema/shape validation on attach, and
quarantine-instead-of-crash -- a corrupt or divergent plane is a cache
*miss* that falls back to the unfiltered path.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.clock import cycle_time_ps
from repro.core.errors import CacheIntegrityError, SimulationError
from repro.core.params import MachineParams, RambusParams
from repro.core.stats import SimStats
from repro.mem.dram import (
    rambus_pipelined_ps,
    rambus_transfer_ps,
    rambus_transfer_ps_array,
)
from repro.trace.materialize import WORKLOAD_VERSION, _file_checksum
from repro.trace.replay_kernel import (
    DOP_BG_FILL,
    DOP_BG_WB,
    DOP_SYNC,
    DOP_WAIT,
    ReplayKernel,
)

#: Artifact manifest schema tag, bumped when the plane layout changes.
PLANE_SCHEMA = "rampage-plane/2"

#: The previous schema, still readable (see the module docstring).
PLANE_SCHEMA_V1 = "rampage-plane/1"

#: Subdirectory of the cache directory holding miss-plane artifacts.
PLANE_DIRNAME = "planes"

#: Suffix appended to an artifact directory that failed validation.
QUARANTINE_SUFFIX = ".corrupt"

MANIFEST_NAME = "manifest.json"

#: Event flag bits (``flags.npy``).
FLAG_TRANSLATE = 1  # the run's first reference missed the TLB
FLAG_IFETCH = 2  # instruction-side run (else data-side)
FLAG_L1_MISS = 4  # the run's first reference missed its L1
FLAG_FIRST_WRITE = 8  # data-side run whose first reference is a write
FLAG_PREEMPT = 16  # the translate faulted and preempted (chunk's last event)

# Decision-op kinds (``dops.npy`` column 0) live in
# :mod:`repro.trace.replay_kernel` (imported above and re-exported here
# for compatibility).  ``arg`` (column 1) is a byte count for the
# transfer ops and a fill ordinal for ``WAIT``; column 2 is the
# absolute CPU cycle count at the op.

#: Canonical issue rate substituted before hashing structural identity.
_CANONICAL_RATE_HZ = 10**9

_ARRAY_SPECS = (
    # name, dtype, columns (0 = one-dimensional)
    ("chunks", np.int64, 4),
    ("events", np.int64, 6),
    ("flags", np.uint8, 0),
    ("gaps", np.int64, 4),
    ("dirty", np.int64, 0),
    ("tape", np.int64, 0),
    ("dops", np.int64, 3),
)

#: v1 array layout, still accepted by :func:`load_plane`.
_ARRAY_SPECS_V1 = (
    ("chunks", np.int64, 3),
    ("events", np.int64, 6),
    ("flags", np.uint8, 0),
    ("gaps", np.int64, 4),
    ("dirty", np.int64, 0),
    ("tape", np.int64, 0),
)

#: SimStats counters that are structural (identical across a plane
#: group) and therefore recorded verbatim; the timing-dependent fields
#: -- ``level_times`` and the derived ``total_time_ps`` -- are
#: recomputed per cell by :func:`replay_decoupled`.
_STRUCTURAL_STATS = (
    "ifetches",
    "reads",
    "writes",
    "tlb_handler_refs",
    "fault_handler_refs",
    "switch_refs",
    "l1i_hits",
    "l1i_misses",
    "l1d_hits",
    "l1d_misses",
    "l1_writebacks",
    "l2_hits",
    "l2_misses",
    "l2_writebacks",
    "tlb_hits",
    "tlb_misses",
    "page_faults",
    "page_writebacks",
    "context_switches",
    "switches_on_miss",
    "dram_accesses",
    "dram_stall_ps",
    "dram_overlap_ps",
    "inclusion_invalidations",
)


class PlaneReplayError(CacheIntegrityError):
    """A miss plane disagreed with the live simulation during replay.

    Raised when a plane's chunk table does not line up with the driven
    workload or a recorded L1 outcome diverges from the live tag state.
    Callers treat it exactly like artifact corruption: quarantine the
    plane and recompute the cell unfiltered.
    """


# ----------------------------------------------------------------------
# Keying and eligibility
# ----------------------------------------------------------------------


def plane_eligible(params: MachineParams) -> bool:
    """True when cells of ``params``'s geometry may share a miss plane.

    Requires direct-mapped L1s (the only shape the run-collapsed hot
    loop -- and therefore the recorder -- takes).  Preempting machines
    (``switch_on_miss``) and virtual-L1 RAMpage are eligible since
    ``rampage-plane/2``: their chunk rows carry a ``consumed`` count and
    their DRAM interactions are captured on the decision-op tape.
    """
    return (
        params.kind in ("conventional", "rampage")
        and params.l1.icache.ways == 1
        and params.l1.dcache.ways == 1
    )


def select_replay_mode(
    params: MachineParams,
    *,
    two_phase: bool = True,
    materialize: bool = True,
    cache_dir: object | None = None,
    require_cache: bool = False,
) -> str:
    """Decide how one sweep cell should run: ``"plane"`` or ``"full"``.

    The single mode-selection policy shared by the serial
    :class:`~repro.experiments.runner.Runner`, the
    :class:`~repro.experiments.parallel.ParallelRunner` planner and the
    service scheduler, so eligibility cannot drift between paths.
    ``"plane"`` means the two-phase engine applies (replay the cell from
    its group's miss plane, recording one first when absent); ``"full"``
    means an ordinary unfiltered simulation.  ``require_cache`` is set
    by planners that must ship the plane across a process boundary as an
    on-disk artifact: without a ``cache_dir`` those cells run full.
    """
    if not two_phase or not materialize or not plane_eligible(params):
        return "full"
    if require_cache and cache_dir is None:
        return "full"
    return "plane"


def structural_params(params: MachineParams) -> MachineParams:
    """``params`` with its timing-only fields pinned to canonical values.

    Only ``issue_rate_hz`` and the Rambus ``dram`` timing are
    normalised: they are read exclusively by the clock and the channel's
    stall arithmetic, never by anything that steers the event sequence
    of a non-preempting machine.  Everything else -- geometries, seeds,
    handler costs, scheduling policy, cycle counts -- stays in the key;
    being conservative here costs only plane sharing, never correctness.
    """
    return replace(params, issue_rate_hz=_CANONICAL_RATE_HZ, dram=RambusParams())


def plane_key(
    params: MachineParams, scale: float, seed: int, slice_refs: int
) -> str:
    """Stable identity of one miss plane (24 hex digits of SHA-256).

    Keyed like the run-record cache, over everything that shapes the
    recorded event stream: workload identity (version, scale, seed),
    the interleaver chunking (``slice_refs`` moves chunk and
    context-switch boundaries), and the structural machine parameters.
    """
    blob = "|".join(
        (
            WORKLOAD_VERSION,
            PLANE_SCHEMA,
            repr(structural_params(params)),
            f"scale={scale}",
            f"slice={slice_refs}",
            f"seed={seed}",
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


# ----------------------------------------------------------------------
# In-memory plane
# ----------------------------------------------------------------------


class PlaneChunk:
    """One chunk's plane data, unpacked into plain Python lists.

    The replay loop indexes these per event; list indexing beats numpy
    scalar indexing by a wide margin, and the unpack happens once per
    chunk per process, shared by every cell replaying the plane.
    """

    __slots__ = (
        "pid",
        "n_refs",
        "n_events",
        "consumed",
        "ev_gvpn",
        "ev_frame",
        "ev_length",
        "ev_offset",
        "ev_bip",
        "ev_writes",
        "ev_flags",
        "gap_ifetch",
        "gap_reads",
        "gap_writes",
        "gap_dirty",
    )

    def __init__(
        self, pid, n_refs, n_events, consumed, events, flags, gaps, gap_dirty
    ):
        self.pid = pid
        self.n_refs = n_refs
        self.n_events = n_events
        self.consumed = consumed
        self.ev_gvpn = events[:, 0].tolist()
        self.ev_frame = events[:, 1].tolist()
        self.ev_length = events[:, 2].tolist()
        self.ev_offset = events[:, 3].tolist()
        self.ev_bip = events[:, 4].tolist()
        self.ev_writes = events[:, 5].tolist()
        self.ev_flags = flags.tolist()
        self.gap_ifetch = gaps[:, 0].tolist()
        self.gap_reads = gaps[:, 1].tolist()
        self.gap_writes = gaps[:, 2].tolist()
        self.gap_dirty = gap_dirty


class MissPlane:
    """One recorded miss plane: compact arrays plus replay cursors.

    ``chunks`` rows are ``(pid, n_refs, n_events, consumed)`` in
    workload chunk order (``consumed < n_refs`` when the chunk ended in
    a preemption); ``events``/``flags`` rows are per-event run
    descriptors; ``gaps`` has one row per event *plus one final row per
    chunk* (the gap after a chunk's last event); ``dirty`` is the flat
    concatenation of every gap's dirty-bit transition list; ``tape``
    holds the bytes moved by each synchronous DRAM access in order;
    ``dops`` is the decision-op tape of a preempting recording (empty
    for non-preempting machines).  ``cycle_ps`` and ``stats`` snapshot
    the recording run's clock and final counters for
    :func:`replay_decoupled`.
    """

    def __init__(
        self,
        key: str,
        chunks: np.ndarray,
        events: np.ndarray,
        flags: np.ndarray,
        gaps: np.ndarray,
        dirty: np.ndarray,
        tape: np.ndarray,
        cycle_ps: int,
        stats: dict,
        path: Path | None = None,
        dops: np.ndarray | None = None,
    ) -> None:
        self.key = key
        self.chunks = chunks
        self.events = events
        self.flags = flags
        self.gaps = gaps
        self.dirty = dirty
        self.tape = tape
        self.dops = (
            dops if dops is not None else np.zeros((0, 3), dtype=np.int64)
        )
        self.cycle_ps = cycle_ps
        self.stats = stats
        self.path = path
        self.num_chunks = len(chunks)
        self.num_events = len(events)
        self._ev_offsets = None
        self._dirty_offsets = None
        self._tape_counts = None
        self._dop_rows = None
        self._kernel: ReplayKernel | None = None
        self._views: dict[int, PlaneChunk] = {}

    def tape_counts(self) -> tuple[list[int], np.ndarray]:
        """Distinct tape byte counts and their frequencies, cached.

        Priced once per plane group: every sibling cell re-prices the
        same ``(values, counts)`` pair under its own Rambus timing.
        """
        if self._tape_counts is None:
            if len(self.tape):
                values, counts = np.unique(
                    np.asarray(self.tape), return_counts=True
                )
                self._tape_counts = (values.tolist(), counts.astype(np.int64))
            else:
                self._tape_counts = ([], np.zeros(0, dtype=np.int64))
        return self._tape_counts

    def dop_rows(self) -> tuple[list[int], list[int], list[int]]:
        """The decision-op tape as plain Python columns, cached.

        The replay recursion is a tight scalar loop; list iteration
        beats numpy row indexing and the unpack is shared by every
        sibling cell.
        """
        if self._dop_rows is None:
            dops = np.asarray(self.dops)
            self._dop_rows = (
                dops[:, 0].tolist(),
                dops[:, 1].tolist(),
                dops[:, 2].tolist(),
            )
        return self._dop_rows

    def kernel(self) -> ReplayKernel:
        """The vectorized replay kernel over this plane's decision ops.

        Built once per plane -- the kernel's window segmentation is
        timing-invariant -- and shared by every sibling cell and every
        :func:`replay_group` call.  A tape whose waits reference fills
        not yet queued (impossible for a validated artifact, possible
        for a hand-built plane) surfaces as :class:`PlaneReplayError`,
        the same corruption class the scalar recursion reports.
        """
        if self._kernel is None:
            try:
                self._kernel = ReplayKernel(self.dops)
            except IndexError as exc:
                raise PlaneReplayError(
                    f"malformed decision-op tape: {exc}"
                ) from exc
        return self._kernel

    def _offsets(self):
        if self._ev_offsets is None:
            counts = self.chunks[:, 2] if self.num_chunks else np.zeros(0, np.int64)
            self._ev_offsets = np.concatenate(
                ([0], np.cumsum(counts, dtype=np.int64))
            )
            self._dirty_offsets = np.concatenate(
                ([0], np.cumsum(self.gaps[:, 3], dtype=np.int64))
            )
        return self._ev_offsets, self._dirty_offsets

    def chunk_view(self, ordinal: int) -> PlaneChunk:
        """The unpacked plane data for workload chunk ``ordinal``."""
        view = self._views.get(ordinal)
        if view is not None:
            return view
        if not 0 <= ordinal < self.num_chunks:
            raise PlaneReplayError(
                f"plane {self.key} has {self.num_chunks} chunks; the "
                f"workload drove chunk {ordinal}"
            )
        ev_offsets, dirty_offsets = self._offsets()
        ev_lo = int(ev_offsets[ordinal])
        ev_hi = int(ev_offsets[ordinal + 1])
        gap_lo = ev_lo + ordinal
        gap_hi = ev_hi + ordinal + 1
        gaps = np.asarray(self.gaps[gap_lo:gap_hi])
        gap_dirty = []
        pos = int(dirty_offsets[gap_lo])
        for count in gaps[:, 3].tolist():
            gap_dirty.append(self.dirty[pos : pos + count].tolist())
            pos += count
        pid, n_refs, n_events, consumed = (
            int(v) for v in self.chunks[ordinal]
        )
        view = PlaneChunk(
            pid,
            n_refs,
            n_events,
            consumed,
            np.asarray(self.events[ev_lo:ev_hi]),
            np.asarray(self.flags[ev_lo:ev_hi]),
            gaps,
            gap_dirty,
        )
        self._views[ordinal] = view
        return view


class PlaneRecorder:
    """Accumulates one miss plane during a live recording simulation.

    The recording hot loop
    (:meth:`~repro.systems.base.MemorySystem._run_chunk_recording`)
    keeps its gap accumulators in locals and calls :meth:`event` only
    when a run reaches a TLB- or L1-miss path, so recording overhead is
    proportional to events, not references.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        self._chunks: list[tuple[int, int, int, int]] = []
        self._events: list[tuple[int, int, int, int, int, int]] = []
        self._flags: list[int] = []
        self._gaps: list[tuple[int, int, int, int]] = []
        self._dirty: list[int] = []
        self._chunk_events = 0
        #: Bytes per synchronous DRAM access, appended by ``_dram_sync``.
        self.tape: list[int] = []
        #: Decision ops of a preempting recording (``(kind, arg, cycles)``
        #: rows); stays empty for non-preempting machines.
        self.dops: list[tuple[int, int, int]] = []
        self._fills = 0
        self._cycle_ps: int | None = None
        self._stats: dict | None = None

    def begin_chunk(self) -> None:
        self._chunk_events = 0

    # -- decision-op taps (preempting machines only) -------------------

    def sync_op(self, nbytes: int, cycles: int) -> None:
        """Record a blocking DRAM transfer at CPU cycle ``cycles``."""
        self.dops.append((DOP_SYNC, nbytes, cycles))

    def background_op(self, nbytes: int, cycles: int, fill: bool) -> int:
        """Record a queued background transfer; fills return an ordinal.

        The ordinal names the fill's completion time in the replay
        recursion; the recording system maps the filled frame to it in
        its shadow pending table and emits :meth:`wait_op` at the
        frame's next structural touch.
        """
        if fill:
            ordinal = self._fills
            self._fills += 1
            self.dops.append((DOP_BG_FILL, nbytes, cycles))
            return ordinal
        self.dops.append((DOP_BG_WB, nbytes, cycles))
        return -1

    def wait_op(self, ordinal: int, cycles: int) -> None:
        """Record a potential stall on fill ``ordinal``.

        Emitted at every structural first touch of a filled frame --
        whether or not the recording run actually stalled there -- so a
        sibling cell whose transfer is relatively slower still charges
        the wait.
        """
        self.dops.append((DOP_WAIT, ordinal, cycles))

    def event(
        self,
        gvpn: int,
        frame: int,
        length: int,
        offset: int,
        bip: int,
        writes: int,
        flags: int,
        gap_ifetch: int,
        gap_reads: int,
        gap_writes: int,
        gap_dirty: list[int],
    ) -> None:
        """Close the preceding gap and record one event run."""
        self._gaps.append((gap_ifetch, gap_reads, gap_writes, len(gap_dirty)))
        self._dirty.extend(gap_dirty)
        self._events.append((gvpn, frame, length, offset, bip, writes))
        self._flags.append(flags)
        self._chunk_events += 1

    def end_chunk(
        self,
        pid: int,
        n_refs: int,
        consumed: int,
        gap_ifetch: int,
        gap_reads: int,
        gap_writes: int,
        gap_dirty: list[int],
    ) -> None:
        """Close the chunk's final gap and commit its chunk-table row.

        ``consumed`` is how many of the chunk's ``n_refs`` references the
        run actually retired -- short of ``n_refs`` exactly when the
        chunk ended in a preemption (its last event carries
        :data:`FLAG_PREEMPT` and the driver re-presents the tail as the
        next chunk).
        """
        self._gaps.append((gap_ifetch, gap_reads, gap_writes, len(gap_dirty)))
        self._dirty.extend(gap_dirty)
        self._chunks.append((pid, n_refs, self._chunk_events, consumed))
        self._chunk_events = 0

    def capture(self, cycle_ps: int, stats: dict, dram=None) -> None:
        """Snapshot the recording run's clock and final counters.

        Called by :func:`~repro.systems.simulator.simulate` once the
        recording run finalizes; validates the invariants the decoupled
        replay arithmetic relies on.  A non-preempting recording (empty
        decision-op tape) must show no channel queueing and no
        background transfers; a preempting recording instead proves its
        tape by replaying it under the recording run's own ``dram`` and
        ``cycle_ps`` and requiring it to reproduce the run's measured
        DRAM time, stall and overlap exactly.
        """
        level_times = stats.get("level_times", {})
        problems = []
        if not self.dops:
            if stats.get("dram_stall_ps", 0) != 0:
                problems.append("nonzero dram_stall_ps")
            if stats.get("dram_overlap_ps", 0) != 0:
                problems.append("nonzero dram_overlap_ps")
        if level_times.get("other", 0) != 0:
            problems.append("nonzero level_times.other")
        if len(self.tape) != stats.get("dram_accesses"):
            problems.append(
                f"tape has {len(self.tape)} entries for "
                f"{stats.get('dram_accesses')} DRAM accesses"
            )
        for level in ("l1i", "l1d", "l2"):
            if level_times.get(level, 0) % cycle_ps:
                problems.append(f"level_times.{level} not a cycle multiple")
        if self.dops and not problems:
            if dram is None:
                problems.append(
                    "preempting recording captured without its DRAM params"
                )
            else:
                syncs = [row for row in self.dops if row[0] == DOP_SYNC]
                if len(syncs) != len(self.tape) or any(
                    row[1] != nbytes for row, nbytes in zip(syncs, self.tape)
                ):
                    problems.append("decision-op tape disagrees with DRAM tape")
                else:
                    columns = (
                        [row[0] for row in self.dops],
                        [row[1] for row in self.dops],
                        [row[2] for row in self.dops],
                    )
                    dram_ps, stall, overlap = _replay_timeline(
                        dram, int(cycle_ps), columns
                    )
                    if dram_ps != level_times.get("dram", 0):
                        problems.append(
                            f"tape replays to dram={dram_ps}, run measured "
                            f"{level_times.get('dram', 0)}"
                        )
                    if stall != stats.get("dram_stall_ps", 0):
                        problems.append(
                            f"tape replays to stall={stall}, run measured "
                            f"{stats.get('dram_stall_ps', 0)}"
                        )
                    if overlap != stats.get("dram_overlap_ps", 0):
                        problems.append(
                            f"tape replays to overlap={overlap}, run measured "
                            f"{stats.get('dram_overlap_ps', 0)}"
                        )
        if problems:
            raise SimulationError(
                "recording run broke a timing-decoupling invariant: "
                + "; ".join(problems)
            )
        self._cycle_ps = int(cycle_ps)
        self._stats = stats

    def finalize(self) -> MissPlane:
        if self._cycle_ps is None or self._stats is None:
            raise SimulationError(
                "PlaneRecorder.finalize() before capture(); the recording "
                "run's timing snapshot is part of the plane"
            )
        return MissPlane(
            key=self.key,
            chunks=np.array(self._chunks, dtype=np.int64).reshape(-1, 4),
            events=np.array(self._events, dtype=np.int64).reshape(-1, 6),
            flags=np.array(self._flags, dtype=np.uint8),
            gaps=np.array(self._gaps, dtype=np.int64).reshape(-1, 4),
            dirty=np.array(self._dirty, dtype=np.int64),
            tape=np.array(self.tape, dtype=np.int64),
            cycle_ps=self._cycle_ps,
            stats=self._stats,
            dops=np.array(self.dops, dtype=np.int64).reshape(-1, 3),
        )


# ----------------------------------------------------------------------
# Disk artifacts
# ----------------------------------------------------------------------


def plane_root(cache_dir: str | Path) -> Path:
    """The miss-plane subdirectory of a cache directory."""
    return Path(cache_dir) / PLANE_DIRNAME


def artifact_dir(cache_dir: str | Path, key: str) -> Path:
    return plane_root(cache_dir) / key


def _timing_checksum(timing: dict) -> str:
    """SHA-256 of the canonical JSON form of the timing payload."""
    blob = json.dumps(timing, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_plane(directory: str | Path, plane: MissPlane) -> Path:
    """Atomically commit a plane as an artifact directory.

    Same discipline as the trace plane: staged in a sibling temp
    directory, fsynced manifest, renamed into place; a lost concurrent
    race is benign because plane bytes are structurally deterministic,
    so the loser discards its copy and the winner's is identical.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = directory.parent / f".{directory.name}.tmp-{os.getpid()}"
    shutil.rmtree(tmp, ignore_errors=True)
    tmp.mkdir(parents=True)
    try:
        checksums = {}
        for name, _, _ in _ARRAY_SPECS:
            filename = f"{name}.npy"
            np.save(tmp / filename, getattr(plane, name))
            checksums[filename] = _file_checksum(tmp / filename)
        timing = {"cycle_ps": int(plane.cycle_ps), "stats": plane.stats}
        manifest = {
            "schema": PLANE_SCHEMA,
            "workload_version": WORKLOAD_VERSION,
            "key": plane.key,
            "chunks": int(plane.num_chunks),
            "events": int(plane.num_events),
            "flags": int(len(plane.flags)),
            "gaps": int(len(plane.gaps)),
            "dirty": int(len(plane.dirty)),
            "tape": int(len(plane.tape)),
            "dops": int(len(plane.dops)),
            "timing": timing,
            "timing_checksum": _timing_checksum(timing),
            "checksums": checksums,
        }
        with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.rename(tmp, directory)
        except OSError:
            if not (directory / MANIFEST_NAME).exists():
                raise
            shutil.rmtree(tmp, ignore_errors=True)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return directory


def read_manifest(directory: str | Path) -> dict:
    """Validate and return a plane artifact's manifest layers."""
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CacheIntegrityError(f"unreadable plane manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CacheIntegrityError("plane manifest is not an object")
    if manifest.get("schema") not in (PLANE_SCHEMA, PLANE_SCHEMA_V1):
        raise CacheIntegrityError(
            f"schema mismatch: artifact has {manifest.get('schema')!r}, "
            f"expected {PLANE_SCHEMA!r} (or the readable {PLANE_SCHEMA_V1!r})"
        )
    if manifest.get("workload_version") != WORKLOAD_VERSION:
        raise CacheIntegrityError(
            f"workload version mismatch: artifact has "
            f"{manifest.get('workload_version')!r}, expected {WORKLOAD_VERSION!r}"
        )
    if not isinstance(manifest.get("checksums"), dict):
        raise CacheIntegrityError("plane manifest has no checksum table")
    return manifest


def load_plane(directory: str | Path, key: str | None = None) -> MissPlane:
    """Attach to an on-disk plane; strict validation, mmap arrays.

    Checks every envelope layer -- manifest, schema and version tags,
    per-array SHA-256s, dtypes, shapes, and the cross-array count
    invariants (event rows vs the chunk table, dirty rows vs the gap
    table) -- raising :class:`CacheIntegrityError` so callers can
    quarantine and re-record.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    if key is not None and manifest.get("key") != key:
        raise CacheIntegrityError(
            f"plane key mismatch: artifact has {manifest.get('key')!r}, "
            f"expected {key!r}"
        )
    checksums = manifest["checksums"]
    is_v1 = manifest.get("schema") == PLANE_SCHEMA_V1
    specs = _ARRAY_SPECS_V1 if is_v1 else _ARRAY_SPECS
    arrays: dict[str, np.ndarray] = {}
    for name, dtype, columns in specs:
        filename = f"{name}.npy"
        path = directory / filename
        if not path.exists():
            raise CacheIntegrityError(f"missing plane array {filename}")
        if checksums.get(filename) != _file_checksum(path):
            raise CacheIntegrityError(f"checksum mismatch on {filename}")
        try:
            array = np.load(path, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise CacheIntegrityError(
                f"unreadable plane array {filename}: {exc}"
            ) from exc
        if array.dtype != dtype:
            raise CacheIntegrityError(
                f"{filename}: expected {np.dtype(dtype)}, got {array.dtype}"
            )
        expected_ndim = 2 if columns else 1
        if array.ndim != expected_ndim or (columns and array.shape[1] != columns):
            raise CacheIntegrityError(
                f"{filename}: unexpected shape {array.shape}"
            )
        arrays[name] = array
    chunks, events, flags = arrays["chunks"], arrays["events"], arrays["flags"]
    gaps, dirty = arrays["gaps"], arrays["dirty"]
    for name, array in arrays.items():
        if len(array) != manifest.get(name):
            raise CacheIntegrityError(
                f"{name}.npy has {len(array)} rows; manifest says "
                f"{manifest.get(name)}"
            )
    if is_v1:
        # v1 chunks lack the consumed column: v1 recordings abort on
        # preemption, so every chunk ran to completion.  Widen in place
        # (a copy; v1 arrays stay mmapped but small) and carry no
        # decision ops.
        upgraded = np.empty((len(chunks), 4), dtype=np.int64)
        upgraded[:, :3] = chunks
        upgraded[:, 3] = chunks[:, 1]
        chunks = upgraded
        dops = np.zeros((0, 3), dtype=np.int64)
    else:
        dops = arrays["dops"]
        if len(chunks) and (
            np.any(chunks[:, 3] < 0) or np.any(chunks[:, 3] > chunks[:, 1])
        ):
            raise CacheIntegrityError(
                "chunks.npy has a consumed count outside [0, n_refs]"
            )
        if len(dops):
            kinds = dops[:, 0]
            if kinds.min() < DOP_SYNC or kinds.max() > DOP_WAIT:
                raise CacheIntegrityError("dops.npy has an unknown op kind")
            sync_args = dops[kinds == DOP_SYNC, 1]
            if len(sync_args) != len(arrays["tape"]) or not np.array_equal(
                sync_args, arrays["tape"]
            ):
                raise CacheIntegrityError(
                    "dops.npy synchronous transfers disagree with tape.npy"
                )
            fills_before = np.cumsum(kinds == DOP_BG_FILL)
            waits = kinds == DOP_WAIT
            if np.any(dops[waits, 1] < 0) or np.any(
                dops[waits, 1] >= fills_before[waits]
            ):
                raise CacheIntegrityError(
                    "dops.npy waits on a fill not yet queued"
                )
    total_events = int(chunks[:, 2].sum()) if len(chunks) else 0
    if len(events) != total_events or len(flags) != total_events:
        raise CacheIntegrityError(
            f"event rows ({len(events)}) disagree with the chunk table "
            f"({total_events})"
        )
    if len(gaps) != total_events + len(chunks):
        raise CacheIntegrityError(
            f"gap rows ({len(gaps)}) disagree with events + chunks "
            f"({total_events + len(chunks)})"
        )
    if int(gaps[:, 3].sum() if len(gaps) else 0) != len(dirty):
        raise CacheIntegrityError(
            f"dirty rows ({len(dirty)}) disagree with the gap table"
        )
    timing = manifest.get("timing")
    if not isinstance(timing, dict):
        raise CacheIntegrityError("plane manifest has no timing payload")
    if manifest.get("timing_checksum") != _timing_checksum(timing):
        raise CacheIntegrityError("timing payload checksum mismatch")
    cycle_ps = timing.get("cycle_ps")
    stats = timing.get("stats")
    if not isinstance(cycle_ps, int) or cycle_ps <= 0:
        raise CacheIntegrityError(f"invalid plane cycle_ps: {cycle_ps!r}")
    if not isinstance(stats, dict):
        raise CacheIntegrityError("plane timing payload has no stats")
    bad = [k for k in _STRUCTURAL_STATS if not isinstance(stats.get(k), int)]
    if bad:
        raise CacheIntegrityError(
            f"plane stats missing or non-integer counters: {', '.join(bad)}"
        )
    if len(arrays["tape"]) != stats["dram_accesses"]:
        raise CacheIntegrityError(
            f"tape rows ({len(arrays['tape'])}) disagree with "
            f"dram_accesses ({stats['dram_accesses']})"
        )
    return MissPlane(
        key=str(manifest.get("key")),
        chunks=chunks,
        events=events,
        flags=flags,
        gaps=gaps,
        dirty=dirty,
        tape=arrays["tape"],
        cycle_ps=cycle_ps,
        stats=stats,
        path=directory,
        dops=dops,
    )


def quarantine_dir(directory: str | Path) -> Path:
    """Move a failed plane aside for post-mortem; returns the target."""
    directory = Path(directory)
    target = directory.with_name(directory.name + QUARANTINE_SUFFIX)
    if target.exists():
        target = directory.with_name(
            f"{directory.name}{QUARANTINE_SUFFIX}-{os.getpid()}"
        )
        shutil.rmtree(target, ignore_errors=True)
    try:
        os.rename(directory, target)
    except OSError:
        return directory
    return target


# ----------------------------------------------------------------------
# Process-level registry
# ----------------------------------------------------------------------

def plane_nbytes(plane: MissPlane) -> int:
    """Resident bytes of a plane's arrays (the registry's cost metric)."""
    return sum(
        int(np.asarray(getattr(plane, name)).nbytes)
        for name, _, _ in _ARRAY_SPECS
    )


class PlaneRegistry:
    """Bounded in-process plane cache, LRU by resident bytes.

    Every hit skips a full artifact re-load -- manifest parse, per-array
    SHA-256, shape validation -- plus the plane's derived caches
    (chunk views, tape counts, the replay kernel's window structure),
    which is what makes repeated group replays by fabric workers and
    :meth:`~repro.experiments.runner.Runner.prefetch` cheap.  Eviction
    is least-recently-used and budgeted by array bytes rather than
    plane count, so one huge plane cannot silently pin seven others'
    worth of memory and many small planes are not evicted needlessly.
    ``hits``/``misses``/``evictions`` feed the runner manifest and the
    fabric worker stats.
    """

    def __init__(self, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        # dict order doubles as recency order: oldest first.
        self._planes: dict[tuple, MissPlane] = {}
        self._sizes: dict[tuple, int] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._planes)

    def __contains__(self, registry_key: tuple) -> bool:
        return registry_key in self._planes

    def get(self, registry_key: tuple) -> MissPlane | None:
        plane = self._planes.get(registry_key)
        if plane is None:
            self.misses += 1
            return None
        self.hits += 1
        # Move to most-recently-used position.
        self._planes[registry_key] = self._planes.pop(registry_key)
        return plane

    def remember(self, registry_key: tuple, plane: MissPlane) -> MissPlane:
        self.forget_key(registry_key)
        size = plane_nbytes(plane)
        self._planes[registry_key] = plane
        self._sizes[registry_key] = size
        self.total_bytes += size
        # Evict from the LRU end; the entry just added is never a
        # candidate, so an over-budget plane still serves its group.
        while self.total_bytes > self.max_bytes and len(self._planes) > 1:
            oldest = next(iter(self._planes))
            self.forget_key(oldest)
            self.evictions += 1
        return plane

    def forget_key(self, registry_key: tuple) -> None:
        if self._planes.pop(registry_key, None) is not None:
            self.total_bytes -= self._sizes.pop(registry_key)

    def forget_plane(self, plane: MissPlane) -> None:
        """Drop every entry holding ``plane`` (quarantine path)."""
        for registry_key in [
            k for k, v in self._planes.items() if v is plane
        ]:
            self.forget_key(registry_key)

    def stats(self) -> dict:
        """Counters for manifests and worker stats payloads."""
        return {
            "planes": len(self._planes),
            "bytes": self.total_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._planes.clear()
        self._sizes.clear()
        self.total_bytes = 0


#: Planes already recorded or attached in this process, keyed like the
#: artifact (plane key + cache directory).  LRU bounded by array bytes
#: -- see :class:`PlaneRegistry`.
_REGISTRY = PlaneRegistry()


class _NullEvents:
    def emit(self, event: str, **fields: object) -> None:
        pass


def registry_stats() -> dict:
    """The in-process plane registry's counters (manifests, workers)."""
    return _REGISTRY.stats()


def clear_registry() -> None:
    """Drop every in-process plane (tests and benchmarks).

    Keeps the hit/miss/eviction counters: they describe the process,
    not the current contents.
    """
    _REGISTRY.clear()


def _registry_key(key: str, cache_dir: str | Path | None) -> tuple:
    return (key, str(cache_dir) if cache_dir is not None else None)


def get_plane(
    key: str, cache_dir: str | Path | None = None, events=None
) -> MissPlane | None:
    """The recorded plane for ``key``, or ``None`` (record one then).

    Resolution order mirrors :func:`repro.trace.materialize.get_workload`:
    the in-process registry, then a valid on-disk artifact (mmap
    attach).  A corrupt artifact is quarantined -- with a
    ``plane_quarantined`` event -- and reported as a miss, never an
    error.
    """
    events = events if events is not None else _NullEvents()
    registry_key = _registry_key(key, cache_dir)
    plane = _REGISTRY.get(registry_key)
    if plane is not None:
        return plane
    if cache_dir is None:
        return None
    path = artifact_dir(cache_dir, key)
    if not path.exists():
        return None
    try:
        plane = load_plane(path, key=key)
    except CacheIntegrityError as error:
        quarantined = quarantine_dir(path)
        events.emit(
            "plane_quarantined",
            key=key,
            path=str(quarantined),
            reason=str(error),
        )
        return None
    events.emit(
        "plane_attached", key=key, path=str(path), events=plane.num_events
    )
    return _REGISTRY.remember(registry_key, plane)


def commit_plane(
    plane: MissPlane, cache_dir: str | Path | None = None, events=None
) -> MissPlane:
    """Register a freshly recorded plane, persisting it when caching."""
    events = events if events is not None else _NullEvents()
    if cache_dir is not None:
        plane.path = write_plane(artifact_dir(cache_dir, plane.key), plane)
    events.emit(
        "plane_recorded",
        key=plane.key,
        path=str(plane.path) if plane.path is not None else None,
        chunks=plane.num_chunks,
        events=plane.num_events,
    )
    return _REGISTRY.remember(_registry_key(plane.key, cache_dir), plane)


def discard_plane(
    plane: MissPlane, cache_dir: str | Path | None = None, events=None, reason: str = ""
) -> None:
    """Quarantine a plane that diverged during replay.

    Drops every registry entry holding the plane and moves its on-disk
    artifact aside, so the next cell re-records instead of re-tripping.
    """
    events = events if events is not None else _NullEvents()
    _REGISTRY.forget_plane(plane)
    destination = None
    if plane.path is not None and Path(plane.path).exists():
        destination = str(quarantine_dir(plane.path))
    events.emit(
        "plane_quarantined",
        key=plane.key,
        path=destination,
        reason=reason,
    )


def attach_plane(path: str | Path) -> MissPlane:
    """Attach to a plane artifact by path, memoized per process.

    The worker-side entry point: a sweep worker receives the plane path
    in its cell spec and attaches once (mmap); raises
    :class:`CacheIntegrityError` when invalid -- the caller falls back
    to the unfiltered path.
    """
    registry_key = ("path", str(Path(path)))
    plane = _REGISTRY.get(registry_key)
    if plane is None:
        plane = _REGISTRY.remember(registry_key, load_plane(path))
    return plane


# ----------------------------------------------------------------------
# Timing-decoupled replay (phase 2's fast path)
# ----------------------------------------------------------------------


def _stats_from_dict(payload: dict) -> SimStats:
    """Rebuild a :class:`SimStats` from a plane's structural snapshot."""
    stats = SimStats()
    for name in _STRUCTURAL_STATS:
        setattr(stats, name, int(payload[name]))
    for field in ("tlb_misses_by_pid", "faults_by_pid"):
        counts = getattr(stats, field)
        for pid, value in payload.get(field, {}).items():
            counts[int(pid)] = int(value)
    return stats


#: Peak size of the pending-fill map in the most recent
#: :func:`_replay_timeline` call.  Regression probe: the map is bounded
#: by the fills outstanding since the last synchronous transfer, never
#: by tape length (it used to grow one entry per fill for the whole
#: tape).
_timeline_pending_peak = 0


def _replay_timeline(
    dram, cycle_ps: int, columns: tuple[list, list, list]
) -> tuple[int, int, int]:
    """Run a decision-op tape under one (dram, cycle) timing.

    Integer max-plus recursion over the tape: the CPU-side cycle count
    of every op is timing-invariant (recorded in the tape), so the op's
    wall-clock instant is ``cycles * cycle_ps + extra`` where ``extra``
    accumulates DRAM-side waits and transfers -- exactly how
    :class:`~repro.core.clock.SimClock` splits time.  Each op then
    reproduces the live channel arithmetic
    (:meth:`~repro.mem.dram.RambusChannel.synchronous` /
    :meth:`~repro.mem.dram.RambusChannel.begin_background` and the
    pricing rule of ``_cost_ps``) verbatim, so the returned
    ``(dram_ps, stall_ps, overlap_ps)`` is byte-identical to what the
    full simulation measures at that timing.

    This is the scalar equivalence oracle for the vectorized
    :class:`~repro.trace.replay_kernel.ReplayKernel` (which replays
    production cells); ``PlaneRecorder.capture`` self-checks every
    preempting recording through it, and the kernel tests fuzz the
    pair.  On a recording's tape -- cycle stamps nondecreasing, always
    true for a real plane -- the pending-fill map stays bounded: a
    fill's completion time is dropped once consumed by its wait (a
    later wait on the same fill can never stall, because the first one
    left ``now`` at or past the ready time), and a synchronous
    transfer retires every pending fill at once (it drains the
    channel, so ``now`` ends at or past every queued completion).
    Both retirements lean on ``now`` never moving backwards, so a tape
    with *decreasing* stamps keeps every completion time instead --
    the original semantics, which the kernel's whole-tape fallback
    mirrors -- rather than silently changing what a wait can charge.
    """
    global _timeline_pending_peak
    kinds, argvals, op_cycles = columns
    pipelined = dram.pipelined
    bounded = all(a <= b for a, b in zip(op_cycles, op_cycles[1:]))
    free_at = 0
    extra = 0
    stall = 0
    overlap = 0
    dram_ps = 0
    fills = 0
    pending_peak = 0
    ready: dict[int, int] = {}
    for op, arg, cyc in zip(kinds, argvals, op_cycles):
        now = cyc * cycle_ps + extra
        if op == DOP_SYNC:
            wait = free_at - now
            if wait < 0:
                wait = 0
            cost = (
                rambus_pipelined_ps(dram, arg)
                if pipelined and wait
                else rambus_transfer_ps(dram, arg)
            )
            extra += wait + cost
            free_at = now + wait + cost
            stall += wait
            dram_ps += wait + cost
            if bounded and ready:
                ready.clear()
        elif op == DOP_WAIT:
            if arg < 0 or arg >= fills:
                raise IndexError(
                    f"wait on fill {arg}, but only {fills} fills are queued"
                )
            done = ready.pop(arg, None) if bounded else ready.get(arg)
            if done is not None:
                wait = done - now
                if wait > 0:
                    extra += wait
                    stall += wait
                    dram_ps += wait
        else:  # DOP_BG_WB / DOP_BG_FILL
            start = free_at if free_at > now else now
            cost = (
                rambus_pipelined_ps(dram, arg)
                if pipelined and start > now
                else rambus_transfer_ps(dram, arg)
            )
            free_at = start + cost
            if op == DOP_BG_FILL:
                ready[fills] = free_at
                fills += 1
                if len(ready) > pending_peak:
                    pending_peak = len(ready)
                overlap += free_at - now
    _timeline_pending_peak = pending_peak
    return dram_ps, stall, overlap


def _validate_snapshot(plane: MissPlane) -> tuple[dict, dict, int]:
    """Check a plane's timing snapshot against the decoupling invariants.

    Returns ``(recorded_stats, level_times, recording_cycle_ps)``;
    raises :class:`PlaneReplayError` on any violation so callers can
    quarantine and recompute.  Preempting planes (non-empty decision-op
    tape) legitimately carry nonzero stall/overlap -- those are
    re-derived per cell -- while non-preempting planes must show none.
    """
    recorded = plane.stats
    if not isinstance(recorded, dict):
        raise PlaneReplayError("plane has no timing snapshot")
    level_times = recorded.get("level_times")
    if not isinstance(level_times, dict):
        raise PlaneReplayError("plane timing snapshot has no level_times")
    problems = []
    if not len(plane.dops):
        if recorded.get("dram_stall_ps", 0) != 0:
            problems.append("nonzero dram_stall_ps")
        if recorded.get("dram_overlap_ps", 0) != 0:
            problems.append("nonzero dram_overlap_ps")
    if level_times.get("other", 0) != 0:
        problems.append("nonzero level_times.other")
    if len(plane.tape) != recorded.get("dram_accesses"):
        problems.append("tape length disagrees with dram_accesses")
    rec_cycle = int(plane.cycle_ps)
    if rec_cycle <= 0:
        problems.append(f"invalid recording cycle_ps {plane.cycle_ps!r}")
    else:
        for level in ("l1i", "l1d", "l2"):
            if int(level_times.get(level, 0)) % rec_cycle:
                problems.append(f"level_times.{level} not a cycle multiple")
    if problems:
        raise PlaneReplayError(
            "plane timing snapshot broke a decoupling invariant: "
            + "; ".join(problems)
        )
    return recorded, level_times, rec_cycle


def _reprice_cell(
    params: MachineParams,
    plane: MissPlane,
    recorded: dict,
    level_times: dict,
    rec_cycle: int,
    dram_ps: int,
    stall_ps: int,
    overlap_ps: int,
):
    """Assemble one cell's result from its re-priced DRAM numbers."""
    from repro.systems.base import SimulationResult

    cell_cycle = cycle_time_ps(params.issue_rate_hz)
    stats = _stats_from_dict(recorded)
    stats.dram_stall_ps = stall_ps
    stats.dram_overlap_ps = overlap_ps
    lt = stats.level_times
    lt.l1i = (int(level_times["l1i"]) // rec_cycle) * cell_cycle
    lt.l1d = (int(level_times["l1d"]) // rec_cycle) * cell_cycle
    lt.l2 = (int(level_times["l2"]) // rec_cycle) * cell_cycle
    lt.dram = dram_ps
    lt.other = 0
    return SimulationResult(params=params, stats=stats)


def _tape_price_table(dram: RambusParams, values) -> np.ndarray:
    """Per-distinct-size idle-channel prices for a queue-free tape.

    One array call over the tape's few distinct transfer sizes --
    element-identical to pricing each size with
    :func:`~repro.mem.dram.rambus_transfer_ps` -- shared across every
    sibling cell with the same Rambus timing in :func:`replay_group`.
    """
    return rambus_transfer_ps_array(dram, np.asarray(values, dtype=np.int64))


def _tape_price(params: MachineParams, plane: MissPlane) -> int:
    """Price a queue-free tape: each distinct size once, idle channel."""
    values, counts = plane.tape_counts()
    if not values:
        return 0
    return int(_tape_price_table(params.dram, values) @ counts)


def replay_decoupled(params: MachineParams, plane: MissPlane):
    """Reprice a plane's recorded run under ``params``'s timing.

    Pure arithmetic -- no workload, no machine state: rescale the
    recorded per-level cycle counts to ``params``'s clock and re-price
    the recorded DRAM interactions under ``params``'s Rambus timing
    (see the module docstring for why this is exact).  Non-preempting
    planes price their synchronous tape on an idle channel; preempting
    planes price the decision-op tape through the plane's memoized
    vectorized :class:`~repro.trace.replay_kernel.ReplayKernel`
    (byte-identical to the scalar :func:`_replay_timeline` oracle),
    re-deriving ``dram_stall_ps`` and ``dram_overlap_ps`` for this
    cell.  Returns the byte-identical
    :class:`~repro.systems.base.SimulationResult` the full simulation
    would produce, provided ``params`` shares the plane's structural
    key.  Raises :class:`PlaneReplayError` when the snapshot breaks a
    decoupling invariant, so the caller can quarantine and recompute.
    """
    if not plane_eligible(params):
        raise PlaneReplayError(
            f"machine kind={params.kind!r} is not plane-eligible"
        )
    recorded, level_times, rec_cycle = _validate_snapshot(plane)
    if len(plane.dops):
        cell_cycle = cycle_time_ps(params.issue_rate_hz)
        dram_ps, stall, overlap = plane.kernel().price(
            params.dram, cell_cycle
        )
    else:
        dram_ps, stall, overlap = _tape_price(params, plane), 0, 0
    return _reprice_cell(
        params, plane, recorded, level_times, rec_cycle, dram_ps, stall, overlap
    )


def replay_group(params_list, plane: MissPlane) -> list:
    """Reprice every sibling cell of one plane group in one pass.

    The whole-group warm path: the snapshot is validated once, the tape
    is priced for all cells together, and each cell's record is
    assembled exactly as :func:`replay_decoupled` would -- the results
    are byte-identical to calling it per cell (tests enforce this).

    Non-preempting planes vectorize completely: one idle-channel price
    table per *distinct* Rambus timing (a handful of distinct transfer
    sizes priced in one array call, shared by every cell sweeping only
    the issue rate) multiplied into the plane's count vector prices
    every cell with a dot product.  Preempting planes batch through
    the plane's memoized
    :class:`~repro.trace.replay_kernel.ReplayKernel`: the tape's
    window segmentation is built once and
    :meth:`~repro.trace.replay_kernel.ReplayKernel.price_many` shares
    per-timing cost tables across the whole group -- still pure
    arithmetic, no simulation.
    """
    params_list = list(params_list)
    for params in params_list:
        if not plane_eligible(params):
            raise PlaneReplayError(
                f"machine kind={params.kind!r} is not plane-eligible"
            )
    recorded, level_times, rec_cycle = _validate_snapshot(plane)
    results = []
    if len(plane.dops):
        kernel = plane.kernel()
        priced = kernel.price_many(
            [
                (params.dram, cycle_time_ps(params.issue_rate_hz))
                for params in params_list
            ]
        )
        for params, (dram_ps, stall, overlap) in zip(params_list, priced):
            results.append(
                _reprice_cell(
                    params, plane, recorded, level_times, rec_cycle,
                    dram_ps, stall, overlap,
                )
            )
        return results
    values, counts = plane.tape_counts()
    if values:
        tables: dict[RambusParams, np.ndarray] = {}
        dram_vec = []
        for params in params_list:
            table = tables.get(params.dram)
            if table is None:
                table = tables[params.dram] = _tape_price_table(
                    params.dram, values
                )
            dram_vec.append(int(table @ counts))
    else:
        dram_vec = [0] * len(params_list)
    for params, dram_ps in zip(params_list, dram_vec):
        results.append(
            _reprice_cell(
                params, plane, recorded, level_times, rec_cycle,
                int(dram_ps), 0, 0,
            )
        )
    return results
