"""Stream utilities over chunk iterables.

Small helpers for slicing, counting and materialising chunk streams.
They exist so tests and tools never re-implement buffer arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.trace.record import TraceChunk


def take(chunks: Iterable[TraceChunk], count: int) -> Iterator[TraceChunk]:
    """Yield chunks totalling at most ``count`` references.

    The final chunk is truncated if necessary; chunk pids and slice
    flags are preserved.
    """
    remaining = count
    for chunk in chunks:
        if remaining <= 0:
            return
        if len(chunk) <= remaining:
            remaining -= len(chunk)
            yield chunk
        else:
            yield TraceChunk(
                pid=chunk.pid,
                kinds=chunk.kinds[:remaining],
                addrs=chunk.addrs[:remaining],
                new_slice=chunk.new_slice,
            )
            return


def count_references(chunks: Iterable[TraceChunk]) -> int:
    """Total references across a chunk stream (consumes it)."""
    return sum(len(chunk) for chunk in chunks)


def concat(chunks: Iterable[TraceChunk]) -> TraceChunk:
    """Materialise a stream into one chunk (single-pid streams only)."""
    chunks = list(chunks)
    if not chunks:
        from repro.trace.record import empty_chunk

        return empty_chunk()
    pids = {chunk.pid for chunk in chunks}
    if len(pids) > 1:
        from repro.core.errors import TraceFormatError

        raise TraceFormatError(f"cannot concat chunks from pids {sorted(pids)}")
    return TraceChunk(
        pid=chunks[0].pid,
        kinds=np.concatenate([c.kinds for c in chunks]),
        addrs=np.concatenate([c.addrs for c in chunks]),
        new_slice=chunks[0].new_slice,
    )


def kind_histogram(chunks: Iterable[TraceChunk]) -> dict[int, int]:
    """Count references per kind across a stream (consumes it)."""
    totals: dict[int, int] = {}
    for chunk in chunks:
        kinds, counts = np.unique(chunk.kinds, return_counts=True)
        for kind, count in zip(kinds.tolist(), counts.tolist()):
            totals[int(kind)] = totals.get(int(kind), 0) + int(count)
    return totals
