"""Vectorised address-pattern primitives.

The synthetic programs in :mod:`repro.trace.synthetic` are assembled
from these building blocks.  Each function returns a numpy ``uint64``
array of byte addresses; all are deterministic given the supplied
``numpy.random.Generator``.

The primitives model the locality classes the paper's workloads exhibit:

* :func:`branchy_code` -- instruction streams: sequential runs of
  word-sized fetches broken by branches back into a loop-structured code
  region (utilities and integer codes branch often; floating-point
  kernels have long straight runs).
* :func:`sequential_stream` / :func:`strided_stream` -- array sweeps
  typical of the SPECfp92 kernels (hydro2d, su2cor, swm256, nasa7 ...).
* :func:`hot_set` -- uniform references inside a small hot working set
  (symbol tables, stacks, dictionaries).
* :func:`pointer_chase` -- a permutation walk over a region, the
  worst-case temporal pattern (compress's hash probing, gcc's IR walks).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigurationError
from repro.trace.record import ADDR_DTYPE

WORD_BYTES = 4


def _require_positive(value: int, name: str) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def branchy_code(
    rng: np.random.Generator,
    count: int,
    code_bytes: int,
    mean_run: int = 12,
    base: int = 0,
) -> np.ndarray:
    """Instruction-fetch addresses for a loop-structured code region.

    Fetches advance one word at a time in runs whose lengths are
    geometric with mean ``mean_run``; each run ends with a branch to a
    word-aligned target inside ``code_bytes``.  Branch targets are drawn
    from a small set of "loop heads" so the stream re-visits the same
    code, as real loops do.
    """
    _require_positive(count, "count")
    _require_positive(code_bytes, "code_bytes")
    _require_positive(mean_run, "mean_run")
    # Enough geometric runs to cover `count` fetches with slack.
    est_runs = max(8, int(count / mean_run * 2) + 8)
    run_lengths = rng.geometric(1.0 / mean_run, size=est_runs)
    while int(run_lengths.sum()) < count:
        run_lengths = np.concatenate(
            [run_lengths, rng.geometric(1.0 / mean_run, size=est_runs)]
        )
    # A handful of loop heads; branch targets are Zipf-weighted so a few
    # hot loops dominate, as in real instruction streams.
    num_heads = max(4, code_bytes // 4096)
    heads = (
        rng.integers(0, max(1, code_bytes // WORD_BYTES), size=num_heads)
        * WORD_BYTES
    )
    ranks = np.arange(1, num_heads + 1, dtype=np.float64)
    head_probs = (1.0 / ranks) / (1.0 / ranks).sum()
    starts = heads[rng.choice(num_heads, size=len(run_lengths), p=head_probs)]
    offsets_within = np.arange(int(run_lengths.max()), dtype=np.int64) * WORD_BYTES
    pieces = []
    produced = 0
    for start, length in zip(starts.tolist(), run_lengths.tolist()):
        take = min(length, count - produced)
        if take <= 0:
            break
        pieces.append((start + offsets_within[:take]) % code_bytes)
        produced += take
    addrs = np.concatenate(pieces).astype(ADDR_DTYPE)
    return addrs + ADDR_DTYPE(base)


def sequential_stream(
    count: int, region_bytes: int, start: int = 0, base: int = 0
) -> np.ndarray:
    """Word-sized sequential sweep, wrapping within ``region_bytes``."""
    _require_positive(count, "count")
    _require_positive(region_bytes, "region_bytes")
    offsets = (start + np.arange(count, dtype=np.int64) * WORD_BYTES) % region_bytes
    return offsets.astype(ADDR_DTYPE) + ADDR_DTYPE(base)


def strided_stream(
    count: int, region_bytes: int, stride_bytes: int, start: int = 0, base: int = 0
) -> np.ndarray:
    """Strided sweep (column accesses, FFT butterflies), wrapping."""
    _require_positive(count, "count")
    _require_positive(region_bytes, "region_bytes")
    _require_positive(stride_bytes, "stride_bytes")
    offsets = (start + np.arange(count, dtype=np.int64) * stride_bytes) % region_bytes
    return offsets.astype(ADDR_DTYPE) + ADDR_DTYPE(base)


def hot_set(
    rng: np.random.Generator,
    count: int,
    region_bytes: int,
    base: int = 0,
    focus: float = 0.75,
    core_frac: float = 0.125,
) -> np.ndarray:
    """Word-aligned references inside a hot region, with 80/20 skew.

    A ``focus`` fraction of references lands in the leading
    ``core_frac`` of the region (symbol-table hot buckets, the top of a
    working set); the rest is uniform over the whole region.  The skew
    gives the core strong L1 temporal locality while the full region
    still circulates through L2-sized levels -- the behaviour real
    "hot structure" traffic shows.  ``focus=0`` restores a uniform
    distribution.
    """
    _require_positive(count, "count")
    _require_positive(region_bytes, "region_bytes")
    if not 0.0 <= focus <= 1.0 or not 0.0 < core_frac <= 1.0:
        raise ConfigurationError("focus in [0,1] and core_frac in (0,1] required")
    words = max(1, region_bytes // WORD_BYTES)
    core_words = max(1, int(words * core_frac))
    offsets = rng.integers(0, words, size=count, dtype=np.int64)
    in_core = rng.random(count) < focus
    n_core = int(in_core.sum())
    if n_core:
        offsets[in_core] = rng.integers(0, core_words, size=n_core, dtype=np.int64)
    return (offsets * WORD_BYTES).astype(ADDR_DTYPE) + ADDR_DTYPE(base)


def pointer_chase(
    rng: np.random.Generator,
    count: int,
    region_bytes: int,
    node_bytes: int = 32,
    start_node: int = 0,
    base: int = 0,
) -> np.ndarray:
    """A walk along a fixed random permutation of nodes in a region.

    The permutation is derived deterministically from ``rng``; walking
    it gives no spatial locality and a reuse distance equal to the node
    count -- the pattern that defeats small caches and rewards large
    fully associative ones.
    """
    _require_positive(count, "count")
    _require_positive(region_bytes, "region_bytes")
    _require_positive(node_bytes, "node_bytes")
    nodes = max(2, region_bytes // node_bytes)
    perm = rng.permutation(nodes)
    node = start_node % nodes
    out = np.empty(count, dtype=np.int64)
    # The walk itself is sequential by nature; chase via repeated
    # permutation indexing in vector chunks of the cycle.
    idx = np.empty(min(count, nodes), dtype=np.int64)
    produced = 0
    while produced < count:
        span = min(count - produced, nodes)
        for i in range(span):
            idx[i] = node
            node = int(perm[node])
        out[produced : produced + span] = idx[:span] * node_bytes
        produced += span
    return out.astype(ADDR_DTYPE) + ADDR_DTYPE(base)


def mixture(
    rng: np.random.Generator,
    parts: list[np.ndarray],
    weights: list[float],
    count: int,
) -> np.ndarray:
    """Interleave pattern arrays element-wise according to ``weights``.

    Each output position is assigned to one part with probability
    proportional to its weight; parts are consumed in order (cyclically
    if shorter than needed).  This preserves each pattern's internal
    sequentiality while mixing streams the way real programs do.
    """
    if len(parts) != len(weights) or not parts:
        raise ConfigurationError("parts and weights must be non-empty and equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ConfigurationError("weights must sum to a positive value")
    probs = np.asarray(weights, dtype=np.float64) / total
    choices = rng.choice(len(parts), size=count, p=probs)
    out = np.empty(count, dtype=ADDR_DTYPE)
    for part_idx, part in enumerate(parts):
        mask = choices == part_idx
        need = int(mask.sum())
        if need == 0:
            continue
        if len(part) == 0:
            raise ConfigurationError(f"pattern part {part_idx} is empty")
        reps = -(-need // len(part))  # ceil division
        supply = np.tile(part, reps)[:need] if reps > 1 else part[:need]
        out[mask] = supply
    return out
