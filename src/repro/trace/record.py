"""Reference kinds and record types.

A memory reference is a ``(kind, vaddr)`` pair belonging to a process.
Kinds follow the classic dinero numbering so ``.din`` files round-trip:
``0`` = data read, ``1`` = data write, ``2`` = instruction fetch.

Bulk data moves through :class:`TraceChunk` -- parallel numpy arrays of
kinds and addresses for one process -- because a per-reference Python
object would dominate simulation time.  :class:`Reference` exists for
the scalar API and tests.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple

import numpy as np

from repro.core.errors import TraceFormatError

READ = 0
WRITE = 1
IFETCH = 2

KIND_NAMES = {READ: "read", WRITE: "write", IFETCH: "ifetch"}
_VALID_KINDS = frozenset(KIND_NAMES)

KIND_DTYPE = np.uint8
ADDR_DTYPE = np.uint64


class Reference(NamedTuple):
    """A single memory reference by one process."""

    kind: int
    vaddr: int
    pid: int = 0

    def validate(self, vaddr_bits: int = 32) -> "Reference":
        """Return self after checking kind and address range."""
        if self.kind not in _VALID_KINDS:
            raise TraceFormatError(f"unknown reference kind {self.kind}")
        if not 0 <= self.vaddr < (1 << vaddr_bits):
            raise TraceFormatError(
                f"address {self.vaddr:#x} outside {vaddr_bits}-bit space"
            )
        if self.pid < 0:
            raise TraceFormatError(f"negative pid {self.pid}")
        return self


@dataclass
class ChunkRuns:
    """Vectorized pre-translation of one :class:`TraceChunk`.

    The simulators' hot loops spend most of their time re-deriving the
    same page and L1-block numbers for consecutive references that land
    in the same block.  This stage batch-computes, once per chunk with
    numpy, the maximal *runs* of consecutive references that share one
    L1 block and one reference class (instruction fetch vs data) -- a
    run is the largest unit the hot loop can fast-forward over, because
    every reference after the first is guaranteed the same translation
    and the same L1 hit/miss outcome.

    All fields are parallel per-run Python lists (indexing plain lists
    is what the interpreter loop consumes fastest):

    ``starts``       index of the run's first reference in the chunk
    ``lengths``      number of references in the run
    ``gvpns``        global virtual page number (pid | vpn) of the run
    ``offsets``      first reference's byte offset within its page
    ``bips``         first reference's L1-block index within its page
    ``is_ifetch``    True for instruction-fetch runs
    ``writes``       how many of the run's references are writes
    ``first_kinds``  kind of the run's first reference

    ``key`` records the geometry (page bits, L1 block bits, vpn space
    bits) the runs were computed for; a chunk re-computes lazily when a
    machine with different geometry consumes it.
    """

    key: tuple[int, int, int]
    starts: list[int]
    lengths: list[int]
    gvpns: list[int]
    offsets: list[int]
    bips: list[int]
    is_ifetch: list[bool]
    writes: list[int]
    first_kinds: list[int]
    n: int

    def suffix(self, consumed: int) -> "ChunkRuns | None":
        """Runs for the chunk's tail starting at ``consumed``.

        Returns None when ``consumed`` is not a run boundary (the tail
        must then recompute).  Preemption always happens on a TLB miss,
        i.e. at the first reference of a run, so in practice this hits.
        """
        if consumed == 0:
            return self
        idx = bisect_left(self.starts, consumed)
        if idx >= len(self.starts) or self.starts[idx] != consumed:
            return None
        return ChunkRuns(
            key=self.key,
            starts=[start - consumed for start in self.starts[idx:]],
            lengths=self.lengths[idx:],
            gvpns=self.gvpns[idx:],
            offsets=self.offsets[idx:],
            bips=self.bips[idx:],
            is_ifetch=self.is_ifetch[idx:],
            writes=self.writes[idx:],
            first_kinds=self.first_kinds[idx:],
            n=self.n - consumed,
        )

    def prefix(self, count: int, kinds: np.ndarray) -> "ChunkRuns":
        """Runs for the chunk's first ``count`` references.

        An arbitrary cut can land mid-run; every per-run field of the
        truncated run is unchanged except its length and write count,
        and the write count is recovered by rescanning only the
        truncated run's own references (``kinds`` is the parent chunk's
        kind array) -- O(one run), not a fresh translation pass.
        """
        if count >= self.n:
            return self
        idx = bisect_left(self.starts, count)
        starts = self.starts[:idx]
        lengths = self.lengths[:idx]
        writes = self.writes[:idx]
        last_start = starts[-1]
        if last_start + lengths[-1] > count:
            lengths[-1] = count - last_start
            if writes[-1]:
                writes[-1] = int(
                    np.count_nonzero(kinds[last_start:count] == WRITE)
                )
        return ChunkRuns(
            key=self.key,
            starts=starts,
            lengths=lengths,
            gvpns=self.gvpns[:idx],
            offsets=self.offsets[:idx],
            bips=self.bips[:idx],
            is_ifetch=self.is_ifetch[:idx],
            writes=writes,
            first_kinds=self.first_kinds[:idx],
            n=count,
        )


def _compute_runs(
    chunk: "TraceChunk", page_bits: int, l1_block_bits: int, vpn_space_bits: int
) -> ChunkRuns:
    key = (page_bits, l1_block_bits, vpn_space_bits)
    kinds = chunk.kinds
    addrs = chunk.addrs
    n = len(addrs)
    if n == 0:
        return ChunkRuns(key, [], [], [], [], [], [], [], [], 0)
    vblocks = addrs >> np.uint64(l1_block_bits)
    is_ifetch = kinds == IFETCH
    bounds = np.empty(n, dtype=bool)
    bounds[0] = True
    np.not_equal(vblocks[1:], vblocks[:-1], out=bounds[1:])
    np.logical_or(bounds[1:], is_ifetch[1:] != is_ifetch[:-1], out=bounds[1:])
    starts = np.flatnonzero(bounds)
    lengths = np.diff(starts, append=n)
    first_addrs = addrs[starts]
    pid_base = chunk.pid << vpn_space_bits
    gvpns = (first_addrs >> np.uint64(page_bits)) | np.uint64(pid_base)
    offsets = first_addrs & np.uint64((1 << page_bits) - 1)
    bips = offsets >> np.uint64(l1_block_bits)
    cum_writes = np.concatenate(([0], np.cumsum(kinds == WRITE)))
    writes = cum_writes[starts + lengths] - cum_writes[starts]
    return ChunkRuns(
        key=key,
        starts=starts.tolist(),
        lengths=lengths.tolist(),
        gvpns=gvpns.tolist(),
        offsets=offsets.tolist(),
        bips=bips.tolist(),
        is_ifetch=is_ifetch[starts].tolist(),
        writes=writes.tolist(),
        first_kinds=kinds[starts].tolist(),
        n=n,
    )


@dataclass
class TraceChunk:
    """A run of references from a single process.

    ``kinds`` and ``addrs`` are parallel arrays.  ``new_slice`` marks
    the first chunk after a scheduling boundary; the simulator inserts
    a context-switch trace there when scheduled switches are enabled.

    Derived views -- the scalar list mirrors of the arrays and the
    per-machine :class:`ChunkRuns` pre-translation -- are computed
    lazily and cached, and shared with tail chunks split off by
    :meth:`tail`, so a preempted chunk never re-materialises references
    it already paid for.
    """

    pid: int
    kinds: np.ndarray
    addrs: np.ndarray
    new_slice: bool = False
    _kinds_list: list[int] | None = field(
        default=None, repr=False, compare=False
    )
    _addrs_list: list[int] | None = field(
        default=None, repr=False, compare=False
    )
    #: Per-geometry map of pre-translated runs (see :meth:`runs_for`).
    _runs: dict[tuple[int, int, int], ChunkRuns] | None = field(
        default=None, repr=False, compare=False
    )
    #: Lazy link into a parent chunk's run map: ``(parent, start, stop)``
    #: in the parent's reference coordinates.  A split chunk derives a
    #: geometry's runs from the parent on first use instead of eagerly
    #: slicing every cached geometry at split time -- preemption splits
    #: are frequent under switch-on-miss, and most geometries in a
    #: shared chunk's map belong to other grid cells.
    _runs_src: "tuple[TraceChunk, int, int] | None" = field(
        default=None, repr=False, compare=False
    )

    #: Bound on cached geometries per chunk.  Sweeps that alternate
    #: machine geometries over one shared chunk (the RAMpage
    #: 128 B-4 KB page-size sweep crosses 6, plus the fixed
    #: conventional geometry) must all fit or the map thrashes like
    #: the single slot it replaced; FIFO eviction above the bound
    #: keeps worst-case memory proportional to a handful of run
    #: structures per chunk.
    RUNS_CACHE_MAX = 8

    def __post_init__(self) -> None:
        if len(self.kinds) != len(self.addrs):
            raise TraceFormatError(
                f"kinds ({len(self.kinds)}) and addrs ({len(self.addrs)}) "
                "must have equal length"
            )

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def kinds_list(self) -> list[int]:
        """``kinds`` as a cached Python list (scalar-loop fuel)."""
        if self._kinds_list is None:
            self._kinds_list = self.kinds.tolist()
        return self._kinds_list

    @property
    def addrs_list(self) -> list[int]:
        """``addrs`` as a cached Python list (scalar-loop fuel)."""
        if self._addrs_list is None:
            self._addrs_list = self.addrs.tolist()
        return self._addrs_list

    def runs_for(
        self, page_bits: int, l1_block_bits: int, vpn_space_bits: int
    ) -> ChunkRuns:
        """Return (computing lazily) the pre-translated run structure.

        Cached per geometry: a chunk shared across grid cells that
        alternate machine geometries (page-size sweeps, mixed grids
        over one materialized workload) keeps every geometry's runs
        instead of recomputing on each alternation.
        """
        cache = self._runs
        if cache is None:
            cache = self._runs = {}
        key = (page_bits, l1_block_bits, vpn_space_bits)
        runs = cache.get(key)
        if runs is None:
            runs = self._derived_runs(key)
            if runs is None:
                runs = _compute_runs(
                    self, page_bits, l1_block_bits, vpn_space_bits
                )
            if len(cache) >= self.RUNS_CACHE_MAX:
                cache.pop(next(iter(cache)))
            cache[key] = runs
        return runs

    def _derived_runs(self, key: tuple[int, int, int]) -> ChunkRuns | None:
        """Slice ``key``'s runs out of the parent window, if possible.

        Returns None -- recompute from the arrays -- when there is no
        parent link, the parent never computed this geometry, or the
        window starts mid-run (only the run *ending* the window can be
        patched up; see :meth:`ChunkRuns.prefix`).
        """
        src = self._runs_src
        if src is None:
            return None
        parent, start, stop = src
        base = parent._runs.get(key) if parent._runs else None
        if base is None:
            return None
        runs = base.suffix(start)
        if runs is None:
            return None
        count = stop - start
        if count < runs.n:
            runs = runs.prefix(count, parent.kinds[start:])
        return runs

    def tail(self, consumed: int) -> "TraceChunk":
        """The unconsumed suffix as a new chunk.

        Arrays are numpy views (no copy); cached list views are sliced,
        and the run map is linked lazily -- the tail derives a
        geometry's runs from the parent the first time a machine asks
        for it (:meth:`_derived_runs`), so handing a preemption tail
        back to the scheduler costs O(tail) for the one geometry in
        use, not an eager slice of every cached geometry.
        """
        chunk = TraceChunk(
            pid=self.pid,
            kinds=self.kinds[consumed:],
            addrs=self.addrs[consumed:],
        )
        if self._kinds_list is not None:
            chunk._kinds_list = self._kinds_list[consumed:]
        if self._addrs_list is not None:
            chunk._addrs_list = self._addrs_list[consumed:]
        if self._runs:
            chunk._runs_src = (self, consumed, len(self.kinds))
        elif self._runs_src is not None:
            parent, start, stop = self._runs_src
            chunk._runs_src = (parent, start + consumed, stop)
        return chunk

    def head(self, count: int) -> "TraceChunk":
        """The first ``count`` references as a new chunk.

        Like :meth:`tail`, arrays are views, cached list views are
        sliced, and runs derive lazily from the parent window.  A cut
        landing mid-run only costs a rescan of that one run's
        references (:meth:`ChunkRuns.prefix`), far cheaper than the
        full translation pass the head would otherwise repeat.
        """
        chunk = TraceChunk(
            pid=self.pid,
            kinds=self.kinds[:count],
            addrs=self.addrs[:count],
        )
        if self._kinds_list is not None:
            chunk._kinds_list = self._kinds_list[:count]
        if self._addrs_list is not None:
            chunk._addrs_list = self._addrs_list[:count]
        if self._runs:
            chunk._runs_src = (self, 0, count)
        elif self._runs_src is not None:
            parent, start, stop = self._runs_src
            chunk._runs_src = (parent, start, start + count)
        return chunk

    def references(self) -> Iterator[Reference]:
        """Iterate as scalar :class:`Reference` values (slow path)."""
        pid = self.pid
        for kind, addr in zip(self.kinds_list, self.addrs_list):
            yield Reference(int(kind), int(addr), pid)

    @classmethod
    def from_references(cls, refs: Iterable[Reference], pid: int | None = None) -> "TraceChunk":
        """Build a chunk from scalar references (all must share a pid)."""
        refs = list(refs)
        if pid is None:
            pid = refs[0].pid if refs else 0
        for ref in refs:
            if ref.pid != pid:
                raise TraceFormatError(
                    f"chunk mixes pids {pid} and {ref.pid}; split it first"
                )
        kinds = np.fromiter((r.kind for r in refs), dtype=KIND_DTYPE, count=len(refs))
        addrs = np.fromiter((r.vaddr for r in refs), dtype=ADDR_DTYPE, count=len(refs))
        return cls(pid=pid, kinds=kinds, addrs=addrs)


def empty_chunk(pid: int = 0) -> TraceChunk:
    """Return a zero-length chunk (useful as a stream sentinel)."""
    return TraceChunk(
        pid=pid,
        kinds=np.empty(0, dtype=KIND_DTYPE),
        addrs=np.empty(0, dtype=ADDR_DTYPE),
    )
