"""Reference kinds and record types.

A memory reference is a ``(kind, vaddr)`` pair belonging to a process.
Kinds follow the classic dinero numbering so ``.din`` files round-trip:
``0`` = data read, ``1`` = data write, ``2`` = instruction fetch.

Bulk data moves through :class:`TraceChunk` -- parallel numpy arrays of
kinds and addresses for one process -- because a per-reference Python
object would dominate simulation time.  :class:`Reference` exists for
the scalar API and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple

import numpy as np

from repro.core.errors import TraceFormatError

READ = 0
WRITE = 1
IFETCH = 2

KIND_NAMES = {READ: "read", WRITE: "write", IFETCH: "ifetch"}
_VALID_KINDS = frozenset(KIND_NAMES)

KIND_DTYPE = np.uint8
ADDR_DTYPE = np.uint64


class Reference(NamedTuple):
    """A single memory reference by one process."""

    kind: int
    vaddr: int
    pid: int = 0

    def validate(self, vaddr_bits: int = 32) -> "Reference":
        """Return self after checking kind and address range."""
        if self.kind not in _VALID_KINDS:
            raise TraceFormatError(f"unknown reference kind {self.kind}")
        if not 0 <= self.vaddr < (1 << vaddr_bits):
            raise TraceFormatError(
                f"address {self.vaddr:#x} outside {vaddr_bits}-bit space"
            )
        if self.pid < 0:
            raise TraceFormatError(f"negative pid {self.pid}")
        return self


@dataclass
class TraceChunk:
    """A run of references from a single process.

    ``kinds`` and ``addrs`` are parallel arrays.  ``new_slice`` marks
    the first chunk after a scheduling boundary; the simulator inserts
    a context-switch trace there when scheduled switches are enabled.
    """

    pid: int
    kinds: np.ndarray
    addrs: np.ndarray
    new_slice: bool = False

    def __post_init__(self) -> None:
        if len(self.kinds) != len(self.addrs):
            raise TraceFormatError(
                f"kinds ({len(self.kinds)}) and addrs ({len(self.addrs)}) "
                "must have equal length"
            )

    def __len__(self) -> int:
        return len(self.kinds)

    def references(self) -> Iterator[Reference]:
        """Iterate as scalar :class:`Reference` values (slow path)."""
        pid = self.pid
        for kind, addr in zip(self.kinds.tolist(), self.addrs.tolist()):
            yield Reference(int(kind), int(addr), pid)

    @classmethod
    def from_references(cls, refs: Iterable[Reference], pid: int | None = None) -> "TraceChunk":
        """Build a chunk from scalar references (all must share a pid)."""
        refs = list(refs)
        if pid is None:
            pid = refs[0].pid if refs else 0
        for ref in refs:
            if ref.pid != pid:
                raise TraceFormatError(
                    f"chunk mixes pids {pid} and {ref.pid}; split it first"
                )
        kinds = np.fromiter((r.kind for r in refs), dtype=KIND_DTYPE, count=len(refs))
        addrs = np.fromiter((r.vaddr for r in refs), dtype=ADDR_DTYPE, count=len(refs))
        return cls(pid=pid, kinds=kinds, addrs=addrs)


def empty_chunk(pid: int = 0) -> TraceChunk:
    """Return a zero-length chunk (useful as a stream sentinel)."""
    return TraceChunk(
        pid=pid,
        kinds=np.empty(0, dtype=KIND_DTYPE),
        addrs=np.empty(0, dtype=ADDR_DTYPE),
    )
