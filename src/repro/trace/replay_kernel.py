"""Vectorized decision-op replay kernel: batch-price whole plane groups.

The decision-op tape of a preempting recording
(:mod:`repro.trace.filter`) re-prices one sibling cell with the scalar
max-plus recursion ``_replay_timeline`` -- a per-op Python loop, re-run
from scratch for every cell of a :func:`~repro.trace.filter.replay_group`
call, so replay cost for preempting grids scales as
``O(cells x ops)`` in interpreted Python.  This module replaces the
interpreter with array operations, exploiting a structural theorem
about the recursion:

**After every synchronous transfer the channel is drained.**  A
``SYNC`` op ends with ``free_at == now`` (the CPU waits the transfer
out), ``now`` is monotone (cycle counts are nondecreasing and ``extra``
only grows), and ``free_at``/fill-ready times never move backwards --
so immediately after a ``SYNC`` the channel backlog is gone *and* every
previously queued background fill has completed relative to the CPU.
Splitting the tape at its ``SYNC`` ops therefore yields **windows**
that are completely independent of each other: each window's starting
channel state is exactly "free since the previous SYNC's cycle stamp",
whatever happened before it, and a ``WAIT`` whose fill sits in an
earlier window can never stall, under *any* (dram, cycle) timing.

That classification is timing-invariant -- it depends only on op kinds
and positions -- so it is computed **once per plane** and shared by
every sibling cell of a group:

* **simple windows** (no background op): the terminal ``SYNC`` sees an
  idle channel at every timing -- zero wait, plain transfer cost.  All
  simple syncs price together as one ``counts @ price_table`` dot
  product over the tape's few distinct transfer sizes.
* **single-background windows** (exactly one ``BG_*``, no live
  ``WAIT``): closed form.  The background starts at its own ``now``
  (idle channel, plain cost); the terminal sync's queueing wait is
  ``max(0, (bg_cyc - sync_cyc) * cycle_ps + bg_cost)``, pipelined cost
  iff it actually queued.  One vectorized pass prices every such
  window.
* **contended windows** (two or more background ops, or a ``WAIT``
  coupled to a same-window fill): the genuine sequential scan, run
  window-locally on precomputed cost columns with a bounded, per-window
  fill table.  Real switch-on-miss tapes leave well under 1% of ops
  here.

Shift-invariance makes the window-local scan exact: inside a window
only *differences* against the window's start matter, so the scan runs
in coordinates shifted by the accumulated ``extra`` at window entry --
the same integers the absolute-time recursion produces, without
threading any cross-window state.

Tapes whose cycle stamps are not nondecreasing (never produced by a
recording, but accepted for oracle parity) fall back to a single
contended window covering the whole tape, which *is* the scalar
recursion, op for op.

``ReplayKernel.price_many`` batches all sibling cells of a plane group:
the structure above is built once, and per-timing cost tables (via the
array-accepting price functions in :mod:`repro.mem.dram`) are cached by
Rambus parameter set, so cells that sweep only the issue rate share
tables too.  Output is byte-identical to the scalar
``_replay_timeline`` for every op tape and timing -- the scalar loop
remains the equivalence oracle (``capture()`` self-checks against it,
and the property tests in ``tests/test_replay_kernel.py`` fuzz the
pair), and ``rampage-sim bench --replay`` gates on zero mismatches
while recording the speedup.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import RambusParams
from repro.mem.dram import rambus_pipelined_ps_array, rambus_transfer_ps_array

#: Decision-op kinds (column 0 of a ``dops`` tape).  Defined here --
#: :mod:`repro.trace.filter` re-exports them -- so the kernel has no
#: import cycle with the plane module.
DOP_SYNC = 0  # blocking transfer (mirrors one tape entry, in order)
DOP_BG_WB = 1  # background dirty-victim writeback
DOP_BG_FILL = 2  # background page fill; assigned the next fill ordinal
DOP_WAIT = 3  # potential stall on fill ``arg`` (first structural touch)

#: Scan op codes (contended-window programs).  Backgrounds keep their
#: fill/writeback distinction; dead waits are dropped at build time.
_SCAN_SYNC = 0
_SCAN_BG = 1
_SCAN_FILL = 2
_SCAN_WAIT = 3


class ReplayKernel:
    """Prices one decision-op tape under many timings with array ops.

    Built once per plane (``MissPlane.kernel()`` memoizes it); the
    constructor extracts the timing-invariant window structure, and
    :meth:`price` / :meth:`price_many` evaluate it per (dram,
    cycle_ps).  Raises :class:`IndexError` at build time for a tape
    whose ``WAIT`` rows reference fills not yet queued -- the same
    failure class the scalar recursion hits -- so replay callers can
    map it to plane corruption.
    """

    def __init__(self, dops) -> None:
        dops = np.asarray(dops, dtype=np.int64).reshape(-1, 3)
        self.n_ops = len(dops)
        #: Distinct transfer sizes priced per timing (int64, sorted).
        self.sizes = np.zeros(0, dtype=np.int64)
        #: Per-size counts of syncs that provably never queue.
        self._simple_counts = np.zeros(0, dtype=np.int64)
        # Single-background windows, vectorized columns.
        self._single_bg_cyc = np.zeros(0, dtype=np.int64)
        self._single_bg_size = np.zeros(0, dtype=np.int64)
        self._single_bg_fill = np.zeros(0, dtype=bool)
        self._single_sync_cyc = np.zeros(0, dtype=np.int64)
        self._single_sync_size = np.zeros(0, dtype=np.int64)
        #: Contended windows: (start_free_cycles, n_fill_slots, ops)
        #: with ops rows (code, size_index_or_slot, cycles, fill_slot).
        self._contended: list[tuple[int, int, list[tuple]]] = []
        #: How many ops ended up in contended windows (bench metric).
        self.contended_ops = 0
        if self.n_ops:
            self._build(dops[:, 0], dops[:, 1], dops[:, 2])

    # ------------------------------------------------------------------
    # Timing-invariant structure
    # ------------------------------------------------------------------

    def _build(self, kinds, args, cycles) -> None:
        n = self.n_ops
        sync_mask = kinds == DOP_SYNC
        wait_mask = kinds == DOP_WAIT
        # The scalar recursion treats every op that is neither SYNC nor
        # WAIT as a background transfer, filling iff kind == BG_FILL.
        bg_mask = ~(sync_mask | wait_mask)
        fill_mask = kinds == DOP_BG_FILL
        # Fill ordinals: the k-th BG_FILL row owns ordinal k, exactly
        # the recorder's assignment.  A WAIT must reference an ordinal
        # already queued when it runs (the scalar loop raises
        # IndexError there; mirror it here, at build time).
        fills_before = np.concatenate(
            ([0], np.cumsum(fill_mask, dtype=np.int64))
        )[:-1]
        wait_idx = np.flatnonzero(wait_mask)
        if len(wait_idx):
            bad = (args[wait_idx] < 0) | (
                args[wait_idx] >= fills_before[wait_idx]
            )
            if np.any(bad):
                first = int(wait_idx[np.argmax(bad)])
                raise IndexError(
                    f"decision op {first} waits on fill "
                    f"{int(args[first])}, but only "
                    f"{int(fills_before[first])} fills are queued"
                )
        if np.any(cycles < 0) or np.any(np.diff(cycles) < 0):
            # Not a recording's tape: no window independence to
            # exploit.  One contended window over everything IS the
            # scalar recursion (shift zero), kept for oracle parity.
            self._contended = [self._scan_program(-1, kinds, args, cycles, 0)]
            self._simple_counts = np.zeros(len(self.sizes), dtype=np.int64)
            self.contended_ops = n
            return
        sync_pos = np.flatnonzero(sync_mask)
        n_syncs = len(sync_pos)
        # Window of op i: number of syncs strictly before i; a sync
        # terminates its own window.
        wid = np.searchsorted(sync_pos, np.arange(n), side="left")
        n_windows = int(wid[-1]) + 1 if n else 0
        bg_count = np.bincount(wid[bg_mask], minlength=n_windows)
        fill_pos = np.flatnonzero(fill_mask)
        live_count = np.zeros(n_windows, dtype=np.int64)
        if len(wait_idx):
            live = wid[fill_pos[args[wait_idx]]] == wid[wait_idx]
            np.add.at(live_count, wid[wait_idx[live]], 1)
        has_sync = np.arange(n_windows) < n_syncs
        contended = (bg_count >= 2) | (live_count >= 1)
        contended |= (bg_count >= 1) & ~has_sync  # trailing window
        single = (bg_count == 1) & (live_count == 0) & has_sync & ~contended
        simple = (bg_count == 0) & has_sync & ~contended
        # Distinct sizes over every op the price tables must cover.
        priced = sync_mask | bg_mask
        self.sizes = np.unique(args[priced]) if np.any(priced) else np.zeros(
            0, dtype=np.int64
        )
        size_idx = np.zeros(n, dtype=np.int64)
        if np.any(priced):
            size_idx[priced] = np.searchsorted(self.sizes, args[priced])
        self._simple_counts = np.bincount(
            size_idx[sync_pos[simple[wid[sync_pos]]]],
            minlength=len(self.sizes),
        ).astype(np.int64)
        if np.any(single):
            single_wins = np.flatnonzero(single)
            bg_idx = np.flatnonzero(bg_mask)
            bg_of_win = bg_idx[
                np.searchsorted(wid[bg_idx], single_wins, side="left")
            ]
            sync_of_win = sync_pos[single_wins]
            self._single_bg_cyc = cycles[bg_of_win]
            self._single_bg_size = size_idx[bg_of_win]
            self._single_bg_fill = fill_mask[bg_of_win]
            self._single_sync_cyc = cycles[sync_of_win]
            self._single_sync_size = size_idx[sync_of_win]
        for w in np.flatnonzero(contended).tolist():
            lo = int(sync_pos[w - 1]) + 1 if w > 0 else 0
            hi = int(sync_pos[w]) if w < n_syncs else n - 1
            start_cyc = int(cycles[sync_pos[w - 1]]) if w > 0 else -1
            sl = slice(lo, hi + 1)
            self._contended.append(
                self._scan_program(
                    start_cyc,
                    kinds[sl],
                    args[sl],
                    cycles[sl],
                    int(fills_before[lo]),
                    size_idx[sl],
                )
            )
            self.contended_ops += hi + 1 - lo

    def _scan_program(
        self, start_cyc, kinds, args, cycles, first_ordinal, size_idx=None
    ) -> tuple[int, int, list[tuple]]:
        """Compile one contended window into a scan op list.

        ``start_cyc`` is the previous sync's cycle stamp (-1: channel
        free since time zero).  Fills are renumbered into window-local
        slots; a ``WAIT`` on a fill from an earlier window is provably
        a no-op and is dropped (unless the whole tape is one fallback
        window, where ``first_ordinal`` is 0 and every fill is local).
        """
        if size_idx is None:
            sizes = self.sizes = np.unique(
                args[(kinds != DOP_WAIT)]
            ) if np.any(kinds != DOP_WAIT) else np.zeros(0, dtype=np.int64)
            size_idx = np.zeros(len(kinds), dtype=np.int64)
            priced = kinds != DOP_WAIT
            if np.any(priced):
                size_idx[priced] = np.searchsorted(sizes, args[priced])
        ops: list[tuple] = []
        slots = 0
        kind_l = kinds.tolist()
        arg_l = args.tolist()
        cyc_l = cycles.tolist()
        sidx_l = size_idx.tolist()
        for kind, arg, cyc, sidx in zip(kind_l, arg_l, cyc_l, sidx_l):
            if kind == DOP_SYNC:
                ops.append((_SCAN_SYNC, sidx, cyc, -1))
            elif kind == DOP_WAIT:
                slot = arg - first_ordinal
                if 0 <= slot < slots:
                    ops.append((_SCAN_WAIT, slot, cyc, -1))
                # else: fill completed before this window began -- the
                # wait can never stall, at any timing.
            elif kind == DOP_BG_FILL:
                ops.append((_SCAN_FILL, sidx, cyc, slots))
                slots += 1
            else:
                ops.append((_SCAN_BG, sidx, cyc, -1))
        return start_cyc, slots, ops

    # ------------------------------------------------------------------
    # Per-timing evaluation
    # ------------------------------------------------------------------

    def tables(self, dram: RambusParams) -> tuple[np.ndarray, np.ndarray]:
        """The (plain, queued) price tables for ``dram`` over the sizes."""
        plain = rambus_transfer_ps_array(dram, self.sizes)
        if dram.pipelined:
            return plain, rambus_pipelined_ps_array(dram, self.sizes)
        return plain, plain

    def price(self, dram: RambusParams, cycle_ps: int) -> tuple[int, int, int]:
        """``(dram_ps, stall_ps, overlap_ps)`` under one timing.

        Byte-identical to running the scalar ``_replay_timeline`` over
        the same tape.
        """
        return self._price(dram, int(cycle_ps), self.tables(dram))

    def price_many(
        self, timings: list[tuple[RambusParams, int]]
    ) -> list[tuple[int, int, int]]:
        """Price every (dram, cycle_ps) of one plane group's cells.

        The whole-group batch path: the window structure is shared by
        construction, and price tables are cached per distinct Rambus
        parameter set, so an issue-rate sweep prices its tables once.
        """
        tables: dict[RambusParams, tuple[np.ndarray, np.ndarray]] = {}
        results = []
        for dram, cycle_ps in timings:
            cached = tables.get(dram)
            if cached is None:
                cached = tables[dram] = self.tables(dram)
            results.append(self._price(dram, int(cycle_ps), cached))
        return results

    def _price(
        self,
        dram: RambusParams,
        cycle_ps: int,
        tables: tuple[np.ndarray, np.ndarray],
    ) -> tuple[int, int, int]:
        if not self.n_ops:
            return 0, 0, 0
        plain, queued = tables
        pipelined = dram.pipelined
        dram_ps = int(self._simple_counts @ plain)
        stall = 0
        overlap = 0
        if len(self._single_bg_cyc):
            bg_cost = plain[self._single_bg_size]
            if np.any(self._single_bg_fill):
                overlap += int(bg_cost[self._single_bg_fill].sum())
            wait = (
                self._single_bg_cyc - self._single_sync_cyc
            ) * cycle_ps + bg_cost
            np.maximum(wait, 0, out=wait)
            if pipelined:
                sync_cost = np.where(
                    wait > 0,
                    queued[self._single_sync_size],
                    plain[self._single_sync_size],
                )
            else:
                sync_cost = plain[self._single_sync_size]
            waited = int(wait.sum())
            stall += waited
            dram_ps += waited + int(sync_cost.sum())
        if self._contended:
            plain_l = plain.tolist()
            queued_l = queued.tolist() if pipelined else plain_l
            for start_cyc, n_slots, ops in self._contended:
                free = start_cyc * cycle_ps if start_cyc >= 0 else 0
                extra = 0
                ready = [0] * n_slots
                for code, a, cyc, slot in ops:
                    now = cyc * cycle_ps + extra
                    if code == _SCAN_SYNC:
                        wait = free - now
                        if wait < 0:
                            wait = 0
                        cost = (
                            queued_l[a]
                            if pipelined and wait
                            else plain_l[a]
                        )
                        extra += wait + cost
                        free = now + wait + cost
                        stall += wait
                        dram_ps += wait + cost
                    elif code == _SCAN_WAIT:
                        wait = ready[a] - now
                        if wait > 0:
                            extra += wait
                            stall += wait
                            dram_ps += wait
                    else:  # _SCAN_BG / _SCAN_FILL
                        start = free if free > now else now
                        cost = (
                            queued_l[a]
                            if pipelined and start > now
                            else plain_l[a]
                        )
                        free = start + cost
                        if code == _SCAN_FILL:
                            ready[slot] = free
                            overlap += free - now
        return dram_ps, stall, overlap
