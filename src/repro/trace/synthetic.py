"""Synthetic per-program reference generators.

Each Table 2 program becomes a :class:`SyntheticProgram`: a restartable,
deterministic stream of :class:`~repro.trace.record.TraceChunk` values
whose instruction-fetch fraction matches Table 2 and whose data stream
is the program's :class:`~repro.trace.benchmarks.PatternMix` over its
working-set regions.

Address-space layout per process (32-bit virtual):

=============  =======================================
region         base
=============  =======================================
code           0x0040_0000 (text segment)
arrays         0x1000_0000
hot set        0x2000_0000
chase region   0x3000_0000
stack          0x7000_0000
=============  =======================================

The layout leaves regions page-aligned at every page size the paper
sweeps (128 B ... 4 KB), so region boundaries never share a page.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.errors import ConfigurationError
from repro.trace import patterns
from repro.trace.benchmarks import TABLE2_PROGRAMS, ProgramSpec
from repro.trace.record import ADDR_DTYPE, IFETCH, KIND_DTYPE, READ, WRITE, TraceChunk

CODE_BASE = 0x0040_0000
ARRAY_BASE = 0x1000_0000
HOT_BASE = 0x2000_0000
CHASE_BASE = 0x3000_0000
STACK_BASE = 0x7000_0000

DEFAULT_CHUNK = 65_536

#: Reference skew of the hot and stack regions (see
#: :func:`repro.trace.patterns.hot_set`).  Hot structures concentrate
#: three quarters of their traffic in a 16th of the region; stack
#: traffic concentrates even harder (the active frames at the top).
HOT_FOCUS = 0.80
HOT_CORE_FRAC = 1 / 16
STACK_FOCUS = 0.85
STACK_CORE_FRAC = 1 / 16


class SyntheticProgram:
    """Deterministic reference stream for one catalogue program.

    Parameters
    ----------
    spec:
        The program's catalogue entry.
    total_refs:
        Length of the stream (already scaled by the caller).
    pid:
        Process id stamped on every chunk.
    seed:
        Stream seed; the same (spec, total_refs, seed) always yields the
        same reference sequence.
    chunk_refs:
        Chunk granularity for :meth:`chunks`.
    """

    def __init__(
        self,
        spec: ProgramSpec,
        total_refs: int,
        pid: int = 0,
        seed: int = 0,
        chunk_refs: int = DEFAULT_CHUNK,
    ) -> None:
        if total_refs <= 0:
            raise ConfigurationError(f"total_refs must be positive, got {total_refs}")
        if chunk_refs <= 0:
            raise ConfigurationError(f"chunk_refs must be positive, got {chunk_refs}")
        self.spec = spec
        self.total_refs = total_refs
        self.pid = pid
        self.seed = seed
        self.chunk_refs = chunk_refs

    #: Internal generation block.  Randomness is drawn per fixed block
    #: (seeded by block index), so the reference stream is identical no
    #: matter what ``chunk_refs`` a consumer asks for -- chunking only
    #: re-slices it.
    GEN_BLOCK = 8192

    def chunks(self):
        """Yield the whole stream as :class:`TraceChunk` values.

        Restartable and chunking-invariant: each call re-derives the
        same deterministic stream, and the stream's content does not
        depend on ``chunk_refs`` (chunks are at most that size).
        """
        name_key = zlib.crc32(self.spec.name.encode("utf-8"))
        seed_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(name_key,))
        )
        remaining = self.total_refs
        # Persistent cursors so sequential/strided streams continue
        # across blocks instead of restarting.
        seq_cursor = 0
        stride_cursor = 0
        chase_cursor = int(seed_rng.integers(0, 1 << 16))
        block_idx = 0
        out_limit = min(self.chunk_refs, self.GEN_BLOCK)
        while remaining > 0:
            take = min(remaining, self.GEN_BLOCK)
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(name_key, block_idx)
                )
            )
            block, seq_cursor, stride_cursor, chase_cursor = self._make_chunk(
                rng, take, seq_cursor, stride_cursor, chase_cursor
            )
            remaining -= take
            block_idx += 1
            for start in range(0, len(block), out_limit):
                yield TraceChunk(
                    pid=self.pid,
                    kinds=block.kinds[start : start + out_limit],
                    addrs=block.addrs[start : start + out_limit],
                )

    def _make_chunk(
        self,
        rng: np.random.Generator,
        count: int,
        seq_cursor: int,
        stride_cursor: int,
        chase_cursor: int,
    ) -> tuple[TraceChunk, int, int, int]:
        spec = self.spec
        is_ifetch = rng.random(count) < spec.ifetch_fraction
        n_ifetch = int(is_ifetch.sum())
        n_data = count - n_ifetch

        kinds = np.empty(count, dtype=KIND_DTYPE)
        addrs = np.empty(count, dtype=ADDR_DTYPE)
        kinds[is_ifetch] = IFETCH

        if n_ifetch:
            addrs[is_ifetch] = patterns.branchy_code(
                rng,
                n_ifetch,
                spec.code_bytes,
                mean_run=spec.mean_run,
                base=CODE_BASE,
            )
        if n_data:
            data_addrs, seq_cursor, stride_cursor, chase_cursor = self._data_addrs(
                rng, n_data, seq_cursor, stride_cursor, chase_cursor
            )
            data_mask = ~is_ifetch
            addrs[data_mask] = data_addrs
            is_write = rng.random(n_data) < spec.write_fraction
            data_kinds = np.where(is_write, WRITE, READ).astype(KIND_DTYPE)
            kinds[data_mask] = data_kinds

        chunk = TraceChunk(pid=self.pid, kinds=kinds, addrs=addrs)
        return chunk, seq_cursor, stride_cursor, chase_cursor

    def _data_addrs(
        self,
        rng: np.random.Generator,
        count: int,
        seq_cursor: int,
        stride_cursor: int,
        chase_cursor: int,
    ) -> tuple[np.ndarray, int, int, int]:
        spec = self.spec
        weights = spec.mix.as_tuple()
        probs = np.asarray(weights) / sum(weights)
        choices = rng.choice(len(weights), size=count, p=probs)
        out = np.empty(count, dtype=ADDR_DTYPE)

        n_seq = int((choices == 0).sum())
        if n_seq:
            out[choices == 0] = patterns.sequential_stream(
                n_seq, spec.array_bytes, start=seq_cursor, base=ARRAY_BASE
            )
            seq_cursor = (seq_cursor + n_seq * patterns.WORD_BYTES) % spec.array_bytes

        n_stride = int((choices == 1).sum())
        if n_stride:
            out[choices == 1] = patterns.strided_stream(
                n_stride,
                spec.array_bytes,
                spec.stride_bytes,
                start=stride_cursor,
                base=ARRAY_BASE,
            )
            stride_cursor = (
                stride_cursor + n_stride * spec.stride_bytes
            ) % spec.array_bytes

        n_hot = int((choices == 2).sum())
        if n_hot:
            out[choices == 2] = patterns.hot_set(
                rng,
                n_hot,
                spec.hot_bytes,
                base=HOT_BASE,
                focus=HOT_FOCUS,
                core_frac=HOT_CORE_FRAC,
            )

        n_chase = int((choices == 3).sum())
        if n_chase:
            out[choices == 3] = patterns.pointer_chase(
                rng,
                n_chase,
                spec.chase_bytes,
                start_node=chase_cursor,
                base=CHASE_BASE,
            )
            chase_cursor = (chase_cursor + n_chase) % max(2, spec.chase_bytes // 32)

        n_stack = int((choices == 4).sum())
        if n_stack:
            out[choices == 4] = patterns.hot_set(
                rng,
                n_stack,
                spec.stack_bytes,
                base=STACK_BASE,
                focus=STACK_FOCUS,
                core_frac=STACK_CORE_FRAC,
            )

        return out, seq_cursor, stride_cursor, chase_cursor


def build_program(
    spec: ProgramSpec,
    scale: float,
    pid: int = 0,
    seed: int = 0,
    chunk_refs: int = DEFAULT_CHUNK,
) -> SyntheticProgram:
    """Build one program's stream at ``scale`` of its Table 2 length."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return SyntheticProgram(
        spec=spec,
        total_refs=spec.references_at_scale(scale),
        pid=pid,
        seed=seed,
        chunk_refs=chunk_refs,
    )


def build_workload(
    scale: float,
    seed: int = 0,
    programs: tuple[ProgramSpec, ...] = TABLE2_PROGRAMS,
    chunk_refs: int = DEFAULT_CHUNK,
) -> list[SyntheticProgram]:
    """Build the full Table 2 workload at ``scale``.

    ``scale=1.0`` reproduces the paper's ~1.1 G references; the
    experiments default to much smaller scales (see EXPERIMENTS.md).
    Each program gets a distinct pid and a seed derived from ``seed``.
    """
    return [
        build_program(spec, scale, pid=pid, seed=seed + pid, chunk_refs=chunk_refs)
        for pid, spec in enumerate(programs)
    ]
