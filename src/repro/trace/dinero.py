"""Dinero-style ``.din`` trace file I/O.

The classic dinero III text format is one reference per line::

    <label> <hex address>

with label ``0`` = data read, ``1`` = data write, ``2`` = instruction
fetch -- exactly our kind numbering (:mod:`repro.trace.record`).  We
extend it with a comment directive for multiprogrammed traces::

    #pid <n>

which stamps subsequent references with process id ``n`` (default 0).
Plain ``#``-comments and blank lines are ignored.  This lets users run
the simulator on their own captured traces instead of the synthetic
workload.  Paths ending in ``.gz`` are read and written through gzip
transparently (captured traces are usually stored compressed).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

import numpy as np

from repro.core.errors import TraceFormatError
from repro.trace.record import ADDR_DTYPE, KIND_DTYPE, KIND_NAMES, Reference, TraceChunk

_CHUNK = 65_536


def _open_text(path: str | Path, mode: str) -> TextIO:
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def write_din(path: str | Path, chunks: Iterable[TraceChunk]) -> int:
    """Write a chunk stream to ``path``; returns references written.

    A ``.gz`` suffix selects gzip compression.
    """
    with _open_text(path, "w") as handle:
        return write_din_file(handle, chunks)


def write_din_file(handle: TextIO, chunks: Iterable[TraceChunk]) -> int:
    """Write a chunk stream to an open text file."""
    written = 0
    current_pid: int | None = None
    for chunk in chunks:
        if chunk.pid != current_pid:
            handle.write(f"#pid {chunk.pid}\n")
            current_pid = chunk.pid
        lines = [
            f"{kind} {addr:x}\n"
            for kind, addr in zip(chunk.kinds.tolist(), chunk.addrs.tolist())
        ]
        handle.write("".join(lines))
        written += len(chunk)
    return written


def read_din(path: str | Path, chunk_refs: int = _CHUNK) -> Iterator[TraceChunk]:
    """Stream chunks from a ``.din`` (or ``.din.gz``) file.

    Consecutive references with the same pid are batched into chunks of
    at most ``chunk_refs``.
    """
    with _open_text(path, "r") as handle:
        yield from read_din_file(handle, chunk_refs=chunk_refs)


def read_din_file(handle: TextIO, chunk_refs: int = _CHUNK) -> Iterator[TraceChunk]:
    """Stream chunks from an open ``.din`` text file."""
    pid = 0
    kinds: list[int] = []
    addrs: list[int] = []

    def flush() -> TraceChunk:
        chunk = TraceChunk(
            pid=pid,
            kinds=np.asarray(kinds, dtype=KIND_DTYPE),
            addrs=np.asarray(addrs, dtype=ADDR_DTYPE),
        )
        kinds.clear()
        addrs.clear()
        return chunk

    for line_no, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            directive = line[1:].split()
            if directive and directive[0] == "pid":
                if len(directive) != 2:
                    raise TraceFormatError(f"line {line_no}: malformed pid directive")
                try:
                    new_pid = int(directive[1])
                except ValueError as exc:
                    raise TraceFormatError(
                        f"line {line_no}: bad pid {directive[1]!r}"
                    ) from exc
                if new_pid != pid and kinds:
                    yield flush()
                pid = new_pid
            continue
        parts = line.split()
        if len(parts) != 2:
            raise TraceFormatError(f"line {line_no}: expected '<kind> <hexaddr>'")
        try:
            kind = int(parts[0])
            addr = int(parts[1], 16)
        except ValueError as exc:
            raise TraceFormatError(f"line {line_no}: unparseable record") from exc
        if kind not in KIND_NAMES:
            raise TraceFormatError(f"line {line_no}: unknown kind {kind}")
        if addr < 0:
            raise TraceFormatError(f"line {line_no}: negative address")
        kinds.append(kind)
        addrs.append(addr)
        if len(kinds) >= chunk_refs:
            yield flush()
    if kinds:
        yield flush()


def dumps(refs: Iterable[Reference]) -> str:
    """Render scalar references as ``.din`` text (convenience for tests)."""
    buffer = io.StringIO()
    pid: int | None = None
    for ref in refs:
        if ref.pid != pid:
            buffer.write(f"#pid {ref.pid}\n")
            pid = ref.pid
        buffer.write(f"{ref.kind} {ref.vaddr:x}\n")
    return buffer.getvalue()


def loads(text: str, chunk_refs: int = _CHUNK) -> list[TraceChunk]:
    """Parse ``.din`` text into chunks (convenience for tests)."""
    return list(read_din_file(io.StringIO(text), chunk_refs=chunk_refs))
