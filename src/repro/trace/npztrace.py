"""Compact binary trace files (numpy ``.npz``).

The text ``.din`` format (:mod:`repro.trace.dinero`) is interoperable
but bulky (~10 bytes per reference); this module stores the same chunk
streams as compressed numpy arrays, typically 10-30x smaller and far
faster to load.  Layout: three parallel arrays over the whole stream --
``kinds`` (uint8), ``addrs`` (uint64), ``pids`` (int32) -- written as
one array set per file.  Chunk boundaries are not preserved (they are
not semantically meaningful; see ``tests/test_determinism.py``): reads
re-chunk at pid changes and ``chunk_refs``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.errors import TraceFormatError
from repro.trace.record import ADDR_DTYPE, KIND_DTYPE, KIND_NAMES, TraceChunk

_FORMAT_VERSION = 1


def write_npz(path: str | Path, chunks: Iterable[TraceChunk]) -> int:
    """Write a chunk stream; returns the number of references written."""
    kinds_parts: list[np.ndarray] = []
    addrs_parts: list[np.ndarray] = []
    pids_parts: list[np.ndarray] = []
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        kinds_parts.append(np.asarray(chunk.kinds, dtype=KIND_DTYPE))
        addrs_parts.append(np.asarray(chunk.addrs, dtype=ADDR_DTYPE))
        pids_parts.append(np.full(len(chunk), chunk.pid, dtype=np.int32))
    if kinds_parts:
        kinds = np.concatenate(kinds_parts)
        addrs = np.concatenate(addrs_parts)
        pids = np.concatenate(pids_parts)
    else:
        kinds = np.empty(0, dtype=KIND_DTYPE)
        addrs = np.empty(0, dtype=ADDR_DTYPE)
        pids = np.empty(0, dtype=np.int32)
    np.savez_compressed(
        path,
        version=np.int32(_FORMAT_VERSION),
        kinds=kinds,
        addrs=addrs,
        pids=pids,
    )
    return int(len(kinds))


def read_npz(path: str | Path, chunk_refs: int = 65_536) -> Iterator[TraceChunk]:
    """Stream chunks back; splits at pid changes and ``chunk_refs``."""
    with np.load(path) as data:
        try:
            version = int(data["version"])
            kinds = data["kinds"]
            addrs = data["addrs"]
            pids = data["pids"]
        except KeyError as exc:
            raise TraceFormatError(f"{path}: not a repro trace file") from exc
    if version != _FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported trace version {version} "
            f"(this build reads {_FORMAT_VERSION})"
        )
    if not (len(kinds) == len(addrs) == len(pids)):
        raise TraceFormatError(f"{path}: parallel arrays disagree in length")
    if len(kinds) and not np.isin(kinds, list(KIND_NAMES)).all():
        raise TraceFormatError(f"{path}: contains unknown reference kinds")
    # Split at pid changes, then cap segment length at chunk_refs.
    if len(kinds) == 0:
        return
    change_points = np.flatnonzero(np.diff(pids)) + 1
    segments = np.split(np.arange(len(kinds)), change_points)
    for segment in segments:
        start, stop = int(segment[0]), int(segment[-1]) + 1
        pid = int(pids[start])
        for lo in range(start, stop, chunk_refs):
            hi = min(lo + chunk_refs, stop)
            yield TraceChunk(
                pid=pid,
                kinds=kinds[lo:hi].astype(KIND_DTYPE, copy=False),
                addrs=addrs[lo:hi].astype(ADDR_DTYPE, copy=False),
            )
