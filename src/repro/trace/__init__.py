"""Address-trace substrate.

The paper drives its simulations with 18 address traces from the NMSU
Tracebase archive (Table 2), interleaved every 500 k references to model
a multiprogramming workload.  Those traces are not redistributable, so
this package provides:

* :mod:`repro.trace.record` -- reference kinds and record types,
* :mod:`repro.trace.patterns` -- vectorised address-pattern primitives
  (branchy code, sequential/strided sweeps, hot-set and pointer-chase
  data),
* :mod:`repro.trace.benchmarks` -- the Table 2 catalogue with each
  program's instruction-fetch and total reference counts,
* :mod:`repro.trace.synthetic` -- per-program synthetic generators
  assembled from the patterns,
* :mod:`repro.trace.interleave` -- the 500 k-reference round-robin
  interleaver with rotation support for context-switch-on-miss,
* :mod:`repro.trace.dinero` -- a dinero-style ``.din`` text format for
  persisting traces,
* :mod:`repro.trace.stream` -- stream utilities (take / count / concat).
"""

from repro.trace.benchmarks import TABLE2_PROGRAMS, ProgramSpec, table2_catalog
from repro.trace.interleave import InterleavedWorkload, ProgramStream
from repro.trace.record import IFETCH, READ, WRITE, KIND_NAMES, Reference, TraceChunk
from repro.trace.synthetic import SyntheticProgram, build_program, build_workload

__all__ = [
    "TABLE2_PROGRAMS",
    "ProgramSpec",
    "table2_catalog",
    "InterleavedWorkload",
    "ProgramStream",
    "IFETCH",
    "READ",
    "WRITE",
    "KIND_NAMES",
    "Reference",
    "TraceChunk",
    "SyntheticProgram",
    "build_program",
    "build_workload",
]
