"""Multiprogramming interleaver.

The paper interleaves its 18 traces "switching to a different trace
every 500,000 references, to simulate a multiprogramming workload"
(section 4.2).  :class:`InterleavedWorkload` reproduces that: programs
are visited round-robin, each contributing one time slice of references
before the next is scheduled; exhausted programs drop out until all are
drained.

Two consumers exist:

* the plain simulation loop iterates :meth:`InterleavedWorkload.chunks`
  and sees slice boundaries via ``TraceChunk.new_slice``;
* the context-switch-on-miss machinery instead *pulls* chunks via
  :meth:`next_chunk` and calls :meth:`preempt` when a page fault forces
  an early rotation, pushing unconsumed references back onto the
  faulting program.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.trace.record import TraceChunk
from repro.trace.synthetic import SyntheticProgram


class ProgramStream:
    """Buffered cursor over one program's chunk stream.

    Supports ``take(n)`` (at most ``n`` references) and ``push_back``
    for references a preempted process did not consume.
    """

    def __init__(self, program: SyntheticProgram) -> None:
        self.pid = program.pid
        self._iter = program.chunks()
        self._pending: list[TraceChunk] = []
        self._exhausted = False
        self.consumed = 0

    @property
    def exhausted(self) -> bool:
        """True once the stream has no further references."""
        if self._pending:
            return False
        if self._exhausted:
            return True
        self._refill()
        return self._exhausted and not self._pending

    def _refill(self) -> None:
        if self._exhausted:
            return
        try:
            self._pending.append(next(self._iter))
        except StopIteration:
            self._exhausted = True

    def take(self, max_refs: int) -> TraceChunk | None:
        """Return a chunk of at most ``max_refs`` references, or None."""
        if max_refs <= 0:
            raise ConfigurationError(f"max_refs must be positive, got {max_refs}")
        if not self._pending:
            self._refill()
        if not self._pending:
            return None
        chunk = self._pending.pop(0)
        if len(chunk) > max_refs:
            # Cache-preserving split: the tail keeps any list views and
            # pre-translated runs the chunk already materialised.
            self._pending.insert(0, chunk.tail(max_refs))
            chunk = chunk.head(max_refs)
        self.consumed += len(chunk)
        return chunk

    def push_back(self, chunk: TraceChunk) -> None:
        """Return unconsumed references to the front of the stream."""
        if chunk.pid != self.pid:
            raise ConfigurationError(
                f"chunk pid {chunk.pid} does not match stream pid {self.pid}"
            )
        if len(chunk) == 0:
            return
        self.consumed -= len(chunk)
        self._pending.insert(0, chunk)


class InterleavedWorkload:
    """Round-robin scheduler over program streams.

    Parameters
    ----------
    programs:
        The per-process streams (typically from
        :func:`repro.trace.synthetic.build_workload`).
    slice_refs:
        Time-slice length in references (the paper's 500 000, usually
        scaled together with the workload).
    chunk_refs:
        Maximum references handed out per chunk; slices are cut into
        chunks of this size so the simulator can preempt mid-slice.
    """

    def __init__(
        self,
        programs: Sequence[SyntheticProgram],
        slice_refs: int = 500_000,
        chunk_refs: int = 65_536,
    ) -> None:
        if not programs:
            raise ConfigurationError("workload needs at least one program")
        if slice_refs <= 0 or chunk_refs <= 0:
            raise ConfigurationError("slice_refs and chunk_refs must be positive")
        pids = [p.pid for p in programs]
        if len(set(pids)) != len(pids):
            raise ConfigurationError(f"duplicate pids in workload: {pids}")
        self.streams = [ProgramStream(p) for p in programs]
        self.slice_refs = slice_refs
        self.chunk_refs = chunk_refs
        self._current = 0
        self._slice_left = slice_refs
        self._slice_open = False  # becomes True after first chunk of a slice

    @property
    def current_stream(self) -> ProgramStream:
        return self.streams[self._current]

    def all_exhausted(self) -> bool:
        return all(stream.exhausted for stream in self.streams)

    def _advance_to_runnable(self) -> bool:
        """Move ``_current`` to the next non-exhausted stream.

        Skipping an exhausted program is a scheduling switch, so the
        slice state resets for the program that actually runs.  Returns
        False when every stream is drained.
        """
        moved = False
        for _ in range(len(self.streams)):
            if not self.streams[self._current].exhausted:
                if moved:
                    self._slice_left = self.slice_refs
                    self._slice_open = False
                return True
            self._current = (self._current + 1) % len(self.streams)
            moved = True
        return False

    def rotate(self) -> None:
        """End the current slice and schedule the next runnable program."""
        self._current = (self._current + 1) % len(self.streams)
        self._slice_left = self.slice_refs
        self._slice_open = False

    def preempt(self, unconsumed: TraceChunk) -> None:
        """Context-switch away mid-slice (switch-on-miss path).

        ``unconsumed`` references return to the preempted program; it
        will resume them at its next turn.
        """
        self.current_stream.push_back(unconsumed)
        self.rotate()

    def next_chunk(self) -> TraceChunk | None:
        """Pull the next chunk under round-robin scheduling.

        Returns None when the workload is drained.  The first chunk of
        every slice has ``new_slice=True`` (including the very first).
        """
        while True:
            if self._slice_left <= 0:
                self.rotate()
            if not self._advance_to_runnable():
                return None
            stream = self.current_stream
            chunk = stream.take(min(self.chunk_refs, self._slice_left))
            if chunk is None:
                self.rotate()
                continue
            self._slice_left -= len(chunk)
            chunk.new_slice = not self._slice_open
            self._slice_open = True
            return chunk

    def chunks(self) -> Iterator[TraceChunk]:
        """Iterate the whole interleaved workload (plain scheduling)."""
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            yield chunk

    def total_consumed(self) -> int:
        return sum(stream.consumed for stream in self.streams)
