"""Materialized workload plane: synthesize the trace once, replay it everywhere.

The paper treats its 1.1 G-reference interleaved workload as a *fixed
input artifact* -- every table and figure sweeps machine parameters over
the same reference stream -- yet live synthesis
(:func:`repro.trace.synthetic.build_workload`) re-derives that stream
for every grid cell and every worker process.  This module materializes
the workload exactly once per ``(scale, seed, WORKLOAD_VERSION)`` key:

* **synthesis** runs one time and lands in flat ``kinds``/``addrs``
  arrays (one contiguous segment per program),
* the arrays persist as memmap-able ``.npy`` artifacts under the cache
  directory, guarded by the run-record cache's envelope discipline --
  schema + workload-version tag, SHA-256 checksums, atomic directory
  commit, and quarantine-instead-of-crash on corruption,
* replay wraps the shared arrays in :class:`MaterializedProgram`\\ s
  whose chunks are numpy *views* into the arrays, pre-built once so the
  per-chunk derived caches (scalar list views, per-geometry
  :class:`~repro.trace.record.ChunkRuns`) are shared across every cell
  of a sweep instead of being rebuilt per cell.

Replay is byte-identical to live synthesis: same reference content, so
simulated results, run-record cache keys and cached JSON bytes do not
change (``tests/test_materialize.py`` pins this against the legacy
path).  Two replay chunkings exist, both semantically equivalent
(chunk boundaries carry no meaning -- ``tests/test_determinism.py``):

* default -- mirror the generator's ``GEN_BLOCK`` slicing exactly, so
  chunk streams match live synthesis object-for-object;
* ``slice_refs``-aligned -- cut chunks at the interleaver's time-slice
  boundaries so the scheduler never splits a shared chunk and its
  per-geometry run pre-translations survive intact across every grid
  cell (the runners use this mode).

Artifact layout (one directory per key under ``<cache_dir>/traces/``)::

    traces/<key>/
    ├── kinds.npy       # uint8, all programs concatenated
    ├── addrs.npy       # uint64, parallel to kinds
    └── manifest.json   # schema, version, checksums, program table

Commits are atomic at the directory level: the artifact is built in a
temp directory on the same filesystem and ``os.rename``\\ d into place;
a loser of a concurrent race discards its temp copy and attaches to the
winner's.  A directory that fails validation is renamed to
``<key>.corrupt`` and regenerated, mirroring the run-record cache's
quarantine policy (``docs/cache.md``).

Sharing is process-local and not thread-safe: one in-process registry
(:func:`get_workload`, :func:`attach_workload`) hands the same
:class:`MaterializedWorkload` to every runner and grid cell, and worker
processes attach to the on-disk artifact by path (mmap) instead of
re-running synthesis.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.errors import CacheIntegrityError
from repro.trace.benchmarks import TABLE2_PROGRAMS, ProgramSpec
from repro.trace.record import ADDR_DTYPE, KIND_DTYPE, TraceChunk
from repro.trace.synthetic import DEFAULT_CHUNK, SyntheticProgram, build_workload

#: Bumped whenever trace generation or timing semantics change.  Shared
#: with the run-record cache (:mod:`repro.experiments.runner` re-exports
#: it) so trace artifacts and run records invalidate together.
WORKLOAD_VERSION = "wv4"

#: Artifact manifest schema tag, bumped when the artifact layout changes.
TRACE_SCHEMA = "rampage-trace/1"

#: Subdirectory of the cache directory holding trace artifacts.
TRACE_DIRNAME = "traces"

#: Suffix appended to an artifact directory that failed validation.
QUARANTINE_SUFFIX = ".corrupt"

MANIFEST_NAME = "manifest.json"
KINDS_NAME = "kinds.npy"
ADDRS_NAME = "addrs.npy"


def workload_key(
    scale: float, seed: int, programs: tuple[ProgramSpec, ...] = TABLE2_PROGRAMS
) -> str:
    """Stable identity of one materialized workload.

    Mirrors the run-record cache's keying style: SHA-256 over the
    complete generation identity (version, scale, seed, program
    catalogue), truncated to 24 hex digits.
    """
    blob = "|".join(
        (
            WORKLOAD_VERSION,
            f"scale={scale!r}",
            f"seed={seed}",
            "programs=" + ",".join(spec.name for spec in programs),
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def _chunk_bounds(total_refs: int, chunk_refs: int) -> list[tuple[int, int]]:
    """Chunk boundaries matching :meth:`SyntheticProgram.chunks` exactly.

    The generator emits in ``GEN_BLOCK``-sized synthesis blocks and
    slices each block at ``min(chunk_refs, GEN_BLOCK)``; replay must
    mirror that (not just slice the flat array at ``chunk_refs``) so
    chunk streams are identical object-for-object, not merely in
    flattened content.
    """
    gen_block = SyntheticProgram.GEN_BLOCK
    out_limit = min(chunk_refs, gen_block)
    bounds: list[tuple[int, int]] = []
    pos = 0
    while pos < total_refs:
        take = min(total_refs - pos, gen_block)
        for start in range(0, take, out_limit):
            bounds.append((pos + start, pos + min(start + out_limit, take)))
        pos += take
    return bounds


def _chunk_bounds_aligned(
    total_refs: int, slice_refs: int, cap: int
) -> list[tuple[int, int]]:
    """Chunk boundaries aligned to the interleaver's time slices.

    Per program, the round-robin scheduler consumes exactly
    ``slice_refs`` contiguous references per turn, requesting at most
    ``min(chunk_refs, slice_left)`` at a time
    (:meth:`~repro.trace.interleave.InterleavedWorkload.next_chunk`).
    Cutting each slice window into at-most-``cap`` pieces therefore
    produces chunks the scheduler always hands out *whole*: replay never
    splits a shared chunk, so its per-geometry run pre-translations are
    reused intact by every grid cell.  Chunk boundaries are not
    semantically meaningful (``tests/test_determinism.py`` pins that
    simulated results are chunking-invariant), so this changes no
    simulated output -- only how often derived caches are rebuilt.
    """
    bounds: list[tuple[int, int]] = []
    pos = 0
    while pos < total_refs:
        window = min(total_refs - pos, slice_refs)
        for start in range(0, window, cap):
            bounds.append((pos + start, pos + min(start + cap, window)))
        pos += window
    return bounds


class MaterializedProgram:
    """Replay cursor over one program's pre-synthesized reference arrays.

    Drop-in for :class:`~repro.trace.synthetic.SyntheticProgram` on the
    consumer side (``pid`` attribute plus a restartable :meth:`chunks`),
    but :meth:`chunks` yields the *same* pre-built
    :class:`~repro.trace.record.TraceChunk` objects on every pass: their
    arrays are views into the shared (possibly memmapped) workload
    arrays, and their derived caches -- scalar list views and the
    per-geometry run pre-translations -- accumulate once and are reused
    by every simulation that replays the program.
    """

    def __init__(
        self,
        spec: ProgramSpec,
        pid: int,
        seed: int,
        kinds: np.ndarray,
        addrs: np.ndarray,
        chunk_refs: int = DEFAULT_CHUNK,
        slice_refs: int | None = None,
    ) -> None:
        if len(kinds) != len(addrs):
            raise CacheIntegrityError(
                f"program {spec.name}: kinds ({len(kinds)}) and addrs "
                f"({len(addrs)}) disagree in length"
            )
        self.spec = spec
        self.pid = pid
        self.seed = seed
        self.total_refs = len(kinds)
        self.chunk_refs = chunk_refs
        self.slice_refs = slice_refs
        if slice_refs is None:
            bounds = _chunk_bounds(self.total_refs, chunk_refs)
        else:
            bounds = _chunk_bounds_aligned(self.total_refs, slice_refs, chunk_refs)
        self._chunks = [
            TraceChunk(pid=pid, kinds=kinds[lo:hi], addrs=addrs[lo:hi])
            for lo, hi in bounds
        ]

    def chunks(self):
        """Yield the shared chunk objects (restartable, zero synthesis)."""
        yield from self._chunks


@dataclass
class MaterializedWorkload:
    """One materialized workload: shared programs plus provenance."""

    key: str
    programs: list[MaterializedProgram]
    #: Artifact directory on disk, or ``None`` for in-memory planes.
    path: Path | None = None
    #: True when this materialization ran synthesis (vs attached).
    synthesized: bool = False

    @property
    def total_refs(self) -> int:
        return sum(program.total_refs for program in self.programs)


# ----------------------------------------------------------------------
# Synthesis
# ----------------------------------------------------------------------

#: Incremented every time live synthesis runs; tests assert the plane
#: collapses redundant generation to exactly one pass.
synthesis_count = 0


def _synthesize_segments(
    scale: float, seed: int, programs: tuple[ProgramSpec, ...]
) -> list[tuple[SyntheticProgram, np.ndarray, np.ndarray]]:
    """Run live synthesis once; returns per-program flat arrays."""
    global synthesis_count
    synthesis_count += 1
    segments = []
    for program in build_workload(scale, seed=seed, programs=programs):
        kinds_parts: list[np.ndarray] = []
        addrs_parts: list[np.ndarray] = []
        for chunk in program.chunks():
            kinds_parts.append(chunk.kinds)
            addrs_parts.append(chunk.addrs)
        segments.append(
            (
                program,
                np.concatenate(kinds_parts),
                np.concatenate(addrs_parts),
            )
        )
    return segments


def _programs_from_arrays(
    segments: list[tuple[ProgramSpec, int, int, int, int]],
    kinds: np.ndarray,
    addrs: np.ndarray,
    chunk_refs: int,
    slice_refs: int | None = None,
) -> list[MaterializedProgram]:
    """Wrap flat workload arrays as per-program replay cursors."""
    return [
        MaterializedProgram(
            spec=spec,
            pid=pid,
            seed=seed,
            kinds=kinds[start:stop],
            addrs=addrs[start:stop],
            chunk_refs=chunk_refs,
            slice_refs=slice_refs,
        )
        for spec, pid, seed, start, stop in segments
    ]


# ----------------------------------------------------------------------
# Disk artifacts
# ----------------------------------------------------------------------


def trace_root(cache_dir: str | Path) -> Path:
    """The trace-artifact subdirectory of a cache directory."""
    return Path(cache_dir) / TRACE_DIRNAME


def artifact_dir(cache_dir: str | Path, key: str) -> Path:
    return trace_root(cache_dir) / key


def _file_checksum(path: Path) -> str:
    """SHA-256 over a file's bytes (streamed, keeps memory flat)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def write_artifact(
    directory: str | Path,
    key: str,
    scale: float,
    seed: int,
    segments: list[tuple[SyntheticProgram, np.ndarray, np.ndarray]],
) -> Path:
    """Atomically commit one workload's arrays as an artifact directory.

    The artifact is staged in a sibling temp directory (same
    filesystem), fsynced, then renamed into place.  Losing a concurrent
    race (the final directory appeared meanwhile) is benign: both
    writers produce identical bytes, so the loser discards its copy.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = directory.parent / f".{directory.name}.tmp-{os.getpid()}"
    shutil.rmtree(tmp, ignore_errors=True)
    tmp.mkdir(parents=True)
    try:
        kinds = np.concatenate([k for _, k, _ in segments])
        addrs = np.concatenate([a for _, _, a in segments])
        np.save(tmp / KINDS_NAME, kinds)
        np.save(tmp / ADDRS_NAME, addrs)
        table = []
        start = 0
        for program, seg_kinds, _ in segments:
            stop = start + len(seg_kinds)
            table.append(
                {
                    "name": program.spec.name,
                    "pid": program.pid,
                    "seed": program.seed,
                    "start": start,
                    "stop": stop,
                }
            )
            start = stop
        manifest = {
            "schema": TRACE_SCHEMA,
            "workload_version": WORKLOAD_VERSION,
            "key": key,
            "scale": scale,
            "seed": seed,
            "total_refs": int(len(kinds)),
            "checksum_kinds": _file_checksum(tmp / KINDS_NAME),
            "checksum_addrs": _file_checksum(tmp / ADDRS_NAME),
            "programs": table,
        }
        with open(tmp / MANIFEST_NAME, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(manifest, indent=2) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.rename(tmp, directory)
        except OSError:
            if not (directory / MANIFEST_NAME).exists():
                raise
            # Lost the race to an identical artifact; keep theirs.
            shutil.rmtree(tmp, ignore_errors=True)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return directory


def read_manifest(directory: str | Path) -> dict:
    """Validate and return an artifact's manifest.

    Raises :class:`CacheIntegrityError` on every corruption mode short
    of array damage: unreadable or invalid JSON, a schema or workload
    version mismatch, or a malformed program table.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CacheIntegrityError(f"unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CacheIntegrityError("manifest is not an object")
    if manifest.get("schema") != TRACE_SCHEMA:
        raise CacheIntegrityError(
            f"schema mismatch: artifact has {manifest.get('schema')!r}, "
            f"expected {TRACE_SCHEMA!r}"
        )
    if manifest.get("workload_version") != WORKLOAD_VERSION:
        raise CacheIntegrityError(
            f"workload version mismatch: artifact has "
            f"{manifest.get('workload_version')!r}, expected {WORKLOAD_VERSION!r}"
        )
    table = manifest.get("programs")
    if not isinstance(table, list) or not table:
        raise CacheIntegrityError("manifest has no program table")
    return manifest


def load_artifact(
    directory: str | Path,
    chunk_refs: int = DEFAULT_CHUNK,
    programs: tuple[ProgramSpec, ...] = TABLE2_PROGRAMS,
    mmap: bool = True,
    slice_refs: int | None = None,
) -> list[MaterializedProgram]:
    """Attach to an on-disk artifact; returns its replay programs.

    Validation is strict -- manifest layers, array checksums, lengths,
    dtypes, and the program table against the live catalogue -- and any
    failure raises :class:`CacheIntegrityError` so callers can
    quarantine and regenerate.  Arrays are memory-mapped read-only by
    default, so attaching costs one manifest read plus a checksum pass,
    never a synthesis.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    arrays: dict[str, np.ndarray] = {}
    for name, dtype, checksum_field in (
        (KINDS_NAME, KIND_DTYPE, "checksum_kinds"),
        (ADDRS_NAME, ADDR_DTYPE, "checksum_addrs"),
    ):
        path = directory / name
        if not path.exists():
            raise CacheIntegrityError(f"missing array file {name}")
        if manifest.get(checksum_field) != _file_checksum(path):
            raise CacheIntegrityError(f"checksum mismatch on {name}")
        try:
            array = np.load(path, mmap_mode="r" if mmap else None)
        except (OSError, ValueError) as exc:
            raise CacheIntegrityError(f"unreadable array file {name}: {exc}") from exc
        if array.dtype != dtype or array.ndim != 1:
            raise CacheIntegrityError(
                f"{name}: expected 1-d {np.dtype(dtype)}, got "
                f"{array.ndim}-d {array.dtype}"
            )
        arrays[name] = array
    kinds, addrs = arrays[KINDS_NAME], arrays[ADDRS_NAME]
    total = manifest.get("total_refs")
    if not (len(kinds) == len(addrs) == total):
        raise CacheIntegrityError(
            f"array lengths ({len(kinds)}, {len(addrs)}) disagree with "
            f"manifest total_refs ({total})"
        )
    catalogue = {spec.name: spec for spec in programs}
    segments: list[tuple[ProgramSpec, int, int, int, int]] = []
    expected_start = 0
    for entry in manifest["programs"]:
        try:
            spec = catalogue[entry["name"]]
            start, stop = int(entry["start"]), int(entry["stop"])
            pid, seed = int(entry["pid"]), int(entry["seed"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheIntegrityError(f"bad program table entry: {exc}") from exc
        if start != expected_start or stop < start or stop > total:
            raise CacheIntegrityError(
                f"program table not contiguous at {entry['name']}"
            )
        expected_start = stop
        segments.append((spec, pid, seed, start, stop))
    if expected_start != total:
        raise CacheIntegrityError(
            f"program table covers {expected_start} of {total} references"
        )
    return _programs_from_arrays(segments, kinds, addrs, chunk_refs, slice_refs)


def quarantine_artifact(directory: str | Path) -> Path:
    """Move a failed artifact aside for post-mortem; returns the target."""
    directory = Path(directory)
    target = directory.with_name(directory.name + QUARANTINE_SUFFIX)
    if target.exists():
        target = directory.with_name(
            f"{directory.name}{QUARANTINE_SUFFIX}-{os.getpid()}"
        )
        shutil.rmtree(target, ignore_errors=True)
    try:
        os.rename(directory, target)
    except OSError:
        # Someone else already moved or deleted it.
        return directory
    return target


# ----------------------------------------------------------------------
# Process-level registry
# ----------------------------------------------------------------------

#: Materializations already attached in this process.  Bounded FIFO:
#: one workload per (scale, seed) is the common case; sweeps over many
#: cache directories (benchmarks) stay bounded.
_REGISTRY: dict[tuple, MaterializedWorkload] = {}
_REGISTRY_MAX = 8


class _NullEvents:
    def emit(self, event: str, **fields: object) -> None:
        pass


def _remember(key: tuple, plane: MaterializedWorkload) -> MaterializedWorkload:
    if key not in _REGISTRY and len(_REGISTRY) >= _REGISTRY_MAX:
        _REGISTRY.pop(next(iter(_REGISTRY)))
    _REGISTRY[key] = plane
    return plane


def clear_registry() -> None:
    """Drop every in-process materialization (tests and benchmarks)."""
    _REGISTRY.clear()


def get_workload(
    scale: float,
    seed: int,
    cache_dir: str | Path | None = None,
    chunk_refs: int = DEFAULT_CHUNK,
    programs: tuple[ProgramSpec, ...] = TABLE2_PROGRAMS,
    events=None,
    slice_refs: int | None = None,
) -> MaterializedWorkload:
    """The materialized workload for ``(scale, seed)``, shared in-process.

    Resolution order:

    1. the in-process registry (every runner and grid cell of a sweep
       shares one materialization),
    2. a valid on-disk artifact under ``cache_dir`` (mmap attach),
    3. fresh synthesis -- run once, committed to disk when ``cache_dir``
       is set, and registered for the rest of the process.

    A corrupt artifact is quarantined and regenerated; attach errors
    never propagate.  ``slice_refs`` selects slice-aligned replay
    chunking (see :func:`_chunk_bounds_aligned`); it affects only the
    in-memory chunking, never the on-disk artifact.
    """
    events = events if events is not None else _NullEvents()
    key = workload_key(scale, seed, programs)
    registry_key = (
        key,
        chunk_refs,
        slice_refs,
        str(cache_dir) if cache_dir is not None else None,
    )
    plane = _REGISTRY.get(registry_key)
    if plane is not None:
        return plane

    path: Path | None = None
    if cache_dir is not None:
        path = artifact_dir(cache_dir, key)
        if path.exists():
            try:
                replay = load_artifact(
                    path,
                    chunk_refs=chunk_refs,
                    programs=programs,
                    slice_refs=slice_refs,
                )
            except CacheIntegrityError as error:
                quarantined = quarantine_artifact(path)
                events.emit(
                    "trace_quarantined",
                    key=key,
                    path=str(quarantined),
                    reason=str(error),
                )
            else:
                events.emit(
                    "trace_attached",
                    key=key,
                    path=str(path),
                    refs=sum(p.total_refs for p in replay),
                )
                return _remember(
                    registry_key,
                    MaterializedWorkload(key=key, programs=replay, path=path),
                )

    segments = _synthesize_segments(scale, seed, programs)
    if path is not None:
        write_artifact(path, key, scale, seed, segments)
    table = [
        (program.spec, program.pid, program.seed, start, stop)
        for program, start, stop in _segment_offsets(segments)
    ]
    kinds = np.concatenate([k for _, k, _ in segments])
    addrs = np.concatenate([a for _, _, a in segments])
    replay = _programs_from_arrays(table, kinds, addrs, chunk_refs, slice_refs)
    plane = MaterializedWorkload(
        key=key, programs=replay, path=path, synthesized=True
    )
    events.emit(
        "trace_materialized",
        key=key,
        path=str(path) if path is not None else None,
        refs=plane.total_refs,
    )
    return _remember(registry_key, plane)


def _segment_offsets(
    segments: list[tuple[SyntheticProgram, np.ndarray, np.ndarray]]
) -> list[tuple[SyntheticProgram, int, int]]:
    offsets = []
    start = 0
    for program, kinds, _ in segments:
        stop = start + len(kinds)
        offsets.append((program, start, stop))
        start = stop
    return offsets


def attach_workload(
    path: str | Path,
    chunk_refs: int = DEFAULT_CHUNK,
    programs: tuple[ProgramSpec, ...] = TABLE2_PROGRAMS,
    slice_refs: int | None = None,
) -> list[MaterializedProgram]:
    """Attach to an artifact by path, memoized per process.

    This is the worker-side entry point: a sweep worker receives the
    artifact path in its cell spec and attaches once (mmap); every
    further cell the same worker simulates reuses the attachment.
    Raises :class:`CacheIntegrityError` when the artifact is invalid --
    the caller decides whether to fall back to live synthesis.
    """
    registry_key = ("path", str(Path(path)), chunk_refs, slice_refs)
    plane = _REGISTRY.get(registry_key)
    if plane is None:
        replay = load_artifact(
            path, chunk_refs=chunk_refs, programs=programs, slice_refs=slice_refs
        )
        plane = _remember(
            registry_key,
            MaterializedWorkload(
                key=Path(path).name, programs=replay, path=Path(path)
            ),
        )
    return plane.programs
