"""Command-line interface: ``rampage-sim``.

Subcommands::

    rampage-sim list                      # available experiments
    rampage-sim run table3 [table4 ...]   # run experiments, print reports
    rampage-sim run all --out results/    # everything, saved to files
    rampage-sim report figures --format svg  # render cached records
    rampage-sim sweep --kind rampage ...  # one ad-hoc simulation cell
    rampage-sim cache stats|verify|purge  # inspect/repair the run cache
    rampage-sim bench [--check]           # throughput snapshot / self-test
    rampage-sim serve                     # sweep-service HTTP daemon
    rampage-sim submit|status|watch|fetch # talk to a running daemon

Workload scaling comes from the ``REPRO_*`` environment variables (see
:mod:`repro.experiments.config`) or the ``--scale`` / ``--slice-refs``
/ ``--seed`` flags, which take precedence.  ``sweep`` runs through the
same cached :class:`~repro.experiments.runner.Runner` as the tables, so
an ad-hoc cell with a grid cell's ``(params, scale, slice_refs, seed)``
is the *same* record -- cache hits included.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from dataclasses import replace
from pathlib import Path
from typing import Callable, Sequence

from repro import bench
from repro.core.errors import CacheIntegrityError, ConfigurationError
from repro.core.timer import ScopedTimer, refs_per_second
from repro.experiments import ExperimentConfig, ParallelRunner, Runner
from repro.experiments.runner import (
    decode_cache_entry,
    iter_cache_files,
    iter_quarantined_files,
)
from repro.reports import FORMATS, cache_status
from repro.reports.status import ARTIFACT_LAYOUTS, artifact_dirs
from repro.experiments import (
    figure4,
    figure5,
    per_program,
    table1,
    table2,
    table3,
    table4,
    table5,
    warmup,
)
from repro.experiments.figures23 import run_figure2, run_figure3
from repro.experiments.runner import ExperimentOutput
from repro.systems.factory import (
    baseline_machine,
    rampage_machine,
    twoway_machine,
)

EXPERIMENTS: dict[str, Callable[[Runner], ExperimentOutput]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "warmup": warmup.run,
    "per_program": per_program.run,
}

_MACHINES = {
    "baseline": baseline_machine,
    "twoway": twoway_machine,
    "rampage": rampage_machine,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rampage-sim",
        description="RAMpage memory-hierarchy reproduction (ASPLOS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_cmd = sub.add_parser("run", help="run experiments and print reports")
    run_cmd.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_cmd.add_argument("--scale", type=float, help="workload scale factor")
    run_cmd.add_argument("--slice-refs", type=int, help="scheduling quantum")
    run_cmd.add_argument("--out", help="directory to write report files to")
    run_cmd.add_argument(
        "--workers",
        type=int,
        help="worker processes for sweep cells (default: one per core)",
    )

    figures_cmd = sub.add_parser(
        "figures", help="render Figures 2-5 as SVG files"
    )
    figures_cmd.add_argument("--out", default="results/figures")
    figures_cmd.add_argument("--scale", type=float, help="workload scale factor")
    figures_cmd.add_argument("--slice-refs", type=int, help="scheduling quantum")
    figures_cmd.add_argument(
        "--workers",
        type=int,
        help="worker processes for sweep cells (default: one per core)",
    )

    report_cmd = sub.add_parser(
        "report",
        help="render a report from cached records (docs/reports.md)",
    )
    report_cmd.add_argument(
        "name",
        help="report name: a grid label, figure2..figure5, or 'figures'",
    )
    report_cmd.add_argument(
        "--format", choices=list(FORMATS), default="json"
    )
    report_cmd.add_argument(
        "--out", help="output file (default: stdout)"
    )
    report_cmd.add_argument(
        "--min-complete",
        type=float,
        help="fail (exit 1) if the report's completeness is below this",
    )
    report_cmd.add_argument(
        "--server",
        help="render via a running daemon instead of the local cache",
    )
    report_cmd.add_argument("--rates", help="comma-separated issue rates (Hz)")
    report_cmd.add_argument("--sizes", help="comma-separated block/page bytes")
    report_cmd.add_argument("--scale", type=float, help="workload scale factor")
    report_cmd.add_argument("--slice-refs", type=int, help="scheduling quantum")
    report_cmd.add_argument("--seed", type=int, help="workload seed")

    sweep_cmd = sub.add_parser("sweep", help="run one ad-hoc simulation")
    sweep_cmd.add_argument(
        "--kind", choices=sorted(_MACHINES), default="rampage"
    )
    sweep_cmd.add_argument("--issue-rate", type=int, default=1_000_000_000)
    sweep_cmd.add_argument("--size", type=int, default=1024, help="block/page bytes")
    sweep_cmd.add_argument("--switch-on-miss", action="store_true")
    sweep_cmd.add_argument(
        "--scale", type=float, help="workload scale factor (default: REPRO_SCALE)"
    )
    sweep_cmd.add_argument(
        "--slice-refs",
        type=int,
        help="scheduling quantum (default: REPRO_SLICE_REFS)",
    )
    sweep_cmd.add_argument(
        "--seed", type=int, help="workload seed (default: REPRO_SEED)"
    )
    sweep_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the run-record cache for this cell",
    )

    cache_cmd = sub.add_parser(
        "cache", help="inspect and repair the run-record cache"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "summarise the cache directory and its manifest"),
        ("verify", "integrity-check every cached record"),
        ("purge", "delete cached records (all, or quarantined only)"),
    ):
        sub_cmd = cache_sub.add_parser(name, help=help_text)
        sub_cmd.add_argument(
            "--dir",
            dest="cache_dir",
            help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
        )
    cache_sub.choices["purge"].add_argument(
        "--corrupt-only",
        action="store_true",
        help="delete only quarantined records and artifacts",
    )
    cache_sub.choices["stats"].add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable output (the /v1/bench cache serializer)",
    )

    bench_cmd = sub.add_parser(
        "bench",
        help="record a simulator-throughput snapshot (or --check self-test)",
    )
    bench.add_arguments(bench_cmd)

    serve_cmd = sub.add_parser(
        "serve", help="run the sweep-service HTTP daemon (docs/service.md)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8337, help="0 picks a free port"
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        help="worker processes per job sweep (default: one per core)",
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="max queued+running jobs before submissions get 429",
    )
    serve_cmd.add_argument(
        "--state-dir",
        help="job-journal directory (default: <cache_dir>/service)",
    )
    serve_cmd.add_argument(
        "--fabric",
        type=int,
        default=0,
        help="lease-based worker processes per job (0: in-daemon execution)",
    )

    def add_url(cmd):
        cmd.add_argument(
            "--url",
            default="http://127.0.0.1:8337",
            help="sweep-service base URL",
        )

    submit_cmd = sub.add_parser(
        "submit", help="submit a sweep job to a running daemon"
    )
    add_url(submit_cmd)
    submit_cmd.add_argument(
        "--labels",
        help="comma-separated grid labels (default: baseline,rampage)",
    )
    submit_cmd.add_argument("--rates", help="comma-separated issue rates (Hz)")
    submit_cmd.add_argument("--sizes", help="comma-separated block/page bytes")
    submit_cmd.add_argument("--scale", type=float, help="workload scale factor")
    submit_cmd.add_argument("--slice-refs", type=int, help="scheduling quantum")
    submit_cmd.add_argument("--seed", type=int, help="workload seed")
    submit_cmd.add_argument(
        "--wait", action="store_true", help="stream progress until terminal"
    )

    status_cmd = sub.add_parser("status", help="show one job (or all jobs)")
    add_url(status_cmd)
    status_cmd.add_argument("job_id", nargs="?", help="job id; omit to list")

    watch_cmd = sub.add_parser("watch", help="stream a job's SSE progress")
    add_url(watch_cmd)
    watch_cmd.add_argument("job_id")

    fetch_cmd = sub.add_parser(
        "fetch", help="download a job's run records, byte-identical"
    )
    add_url(fetch_cmd)
    fetch_cmd.add_argument("job_id")
    fetch_cmd.add_argument(
        "--out", required=True, help="directory receiving <key>.json files"
    )
    return parser


def _config_with_flags(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.from_env()
    if getattr(args, "scale", None) is not None:
        config = replace(config, scale=args.scale)
    if getattr(args, "slice_refs", None) is not None:
        config = replace(config, slice_refs=args.slice_refs)
    if getattr(args, "seed", None) is not None:
        config = replace(config, seed=args.seed)
    return config


def _make_runner(args: argparse.Namespace) -> Runner:
    """A parallel runner unless the user pinned a single worker."""
    config = _config_with_flags(args)
    workers = getattr(args, "workers", None)
    if workers is not None and workers <= 1:
        return Runner(config)
    return ParallelRunner(config, workers=workers)


def _cmd_list() -> int:
    for name, func in EXPERIMENTS.items():
        doc = (func.__doc__ or "").strip().splitlines()
        print(f"{name:10s} {doc[0] if doc else ''}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    failures = 0
    for name in names:
        try:
            with ScopedTimer() as timer:
                output = EXPERIMENTS[name](runner)
        except Exception as exc:
            # A failed cell must fail the invocation, not just print:
            # scripts and CI gate on the exit code.
            print(f"error: {name} failed: {exc}", file=sys.stderr)
            failures += 1
            continue
        print(output.text)
        print(f"[{name} finished in {timer.elapsed:.2f} s]")
        print()
        if args.out:
            path = output.write_to(args.out)
            print(f"[written to {path}]")
    if failures:
        print(f"{failures} experiment(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    builder = _MACHINES[args.kind]
    if args.kind == "rampage":
        params = builder(
            args.issue_rate, args.size, switch_on_miss=args.switch_on_miss
        )
        label = "rampage_som" if args.switch_on_miss else "rampage"
    else:
        if args.switch_on_miss:
            print("--switch-on-miss requires --kind rampage", file=sys.stderr)
            return 2
        params = builder(args.issue_rate, args.size)
        label = args.kind
    config = _config_with_flags(args)
    if args.no_cache:
        config = replace(config, cache_dir=None)
    runner = Runner(config)
    try:
        with ScopedTimer() as timer:
            record = runner.record(label, params)
    except Exception as exc:
        print(f"error: sweep failed: {exc}", file=sys.stderr)
        return 1
    stats = record.stats
    throughput = refs_per_second(record.workload_refs, timer.elapsed)
    cache_state = "hit" if runner.cache_stats.hits else "miss"
    print(f"machine: {args.kind} @{args.issue_rate} Hz, unit {args.size} B")
    print(
        f"workload: scale {config.scale}, slice {config.slice_refs} refs, "
        f"seed {config.seed}"
    )
    print(f"cache: {cache_state}")
    print(f"simulated time: {record.seconds:.6f} s")
    print(f"wall time: {timer.elapsed:.2f} s ({throughput:,.0f} refs/s)")
    print(f"workload refs: {record.workload_refs}")
    print(f"TLB misses: {stats['tlb_misses']}  page faults: {stats['page_faults']}")
    print(f"L2 misses: {stats['l2_misses']}  DRAM accesses: {stats['dram_accesses']}")
    print(f"level fractions: { {k: round(v, 4) for k, v in record.level_fractions.items()} }")
    return 0


def _resolve_cache_dir(args: argparse.Namespace) -> Path | None:
    """The cache directory a ``cache`` subcommand should operate on."""
    if getattr(args, "cache_dir", None):
        return Path(args.cache_dir)
    return ExperimentConfig.from_env().cache_dir


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        print(
            "caching is disabled (REPRO_CACHE_DIR=''); pass --dir",
            file=sys.stderr,
        )
        return 2
    if not cache_dir.exists():
        if args.cache_command == "stats" and getattr(args, "as_json", False):
            print(json.dumps(cache_status(cache_dir), indent=2, sort_keys=True))
            return 0
        print(f"cache directory {cache_dir} does not exist")
        return 0 if args.cache_command == "stats" else 2
    handler = {
        "stats": _cache_stats,
        "verify": _cache_verify,
        "purge": _cache_purge,
    }[args.cache_command]
    return handler(cache_dir, args)


def _cache_stats(cache_dir: Path, args: argparse.Namespace) -> int:
    """Summarise the cache via the shared :func:`cache_status` serializer.

    ``--json`` prints that dict verbatim -- the exact payload the
    daemon's ``/v1/bench`` route and the dashboard consume; the human
    table renders the same fields.
    """
    status = cache_status(cache_dir)
    if getattr(args, "as_json", False):
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"cache directory: {cache_dir}")
    print(f"records: {status['records']} ({status['record_bytes']:,} bytes)")
    for table_label, count in status["by_label"].items():
        print(f"  {table_label:12s} {count}")
    if status["undecodable"]:
        print(
            f"undecodable records: {status['undecodable']} "
            "(run 'cache verify')"
        )
    print(f"quarantined files: {status['quarantined']}")
    for kind, summary in status["artifacts"].items():
        print(
            f"{kind} artifacts: {summary['live']} "
            f"({summary['live_bytes']:,} bytes), "
            f"quarantined: {summary['quarantined']} "
            f"({summary['quarantined_bytes']:,} bytes)"
        )
    manifest = status["manifest"]
    if manifest is not None:
        counters = manifest.get("cache", {})
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        print(f"last sweep manifest: grids={manifest.get('grids')} {summary}")
    return 0


def _cache_verify(cache_dir: Path, args: argparse.Namespace) -> int:
    bad = 0
    checked = 0
    for path in iter_cache_files(cache_dir):
        checked += 1
        try:
            decode_cache_entry(path.read_text("utf-8"))
        except (OSError, CacheIntegrityError) as error:
            bad += 1
            print(f"CORRUPT {path.name}: {error}")
    quarantined = list(iter_quarantined_files(cache_dir))
    for path in quarantined:
        print(f"QUARANTINED {path.name}")
    artifacts_checked = artifacts_bad = artifacts_quarantined = 0
    for kind, root, validate in ARTIFACT_LAYOUTS:
        live, held = artifact_dirs(root(cache_dir))
        artifacts_quarantined += len(held)
        for path in live:
            artifacts_checked += 1
            try:
                validate(path)
            except (OSError, CacheIntegrityError) as error:
                artifacts_bad += 1
                print(f"CORRUPT {kind} {path.name}: {error}")
        for path in held:
            print(f"QUARANTINED {kind} {path.name}")
    print(
        f"verified {checked} records: {checked - bad} ok, {bad} corrupt, "
        f"{len(quarantined)} quarantined"
    )
    print(
        f"verified {artifacts_checked} artifacts: "
        f"{artifacts_checked - artifacts_bad} ok, {artifacts_bad} corrupt, "
        f"{artifacts_quarantined} quarantined"
    )
    if bad or quarantined or artifacts_bad or artifacts_quarantined:
        print("run 'rampage-sim cache purge --corrupt-only' to discard them")
        return 1
    return 0


def _cache_purge(cache_dir: Path, args: argparse.Namespace) -> int:
    removed = 0
    targets = list(iter_quarantined_files(cache_dir))
    if not args.corrupt_only:
        targets += list(iter_cache_files(cache_dir))
    for path in targets:
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    dirs_removed = 0
    for _, root, _ in ARTIFACT_LAYOUTS:
        live, held = artifact_dirs(root(cache_dir))
        doomed = held if args.corrupt_only else held + live
        for path in doomed:
            try:
                shutil.rmtree(path)
                dirs_removed += 1
            except OSError:
                pass
    scope = "quarantined files" if args.corrupt_only else "cache entries"
    print(
        f"purged {removed} {scope} and {dirs_removed} artifact "
        f"directories from {cache_dir}"
    )
    return 0


# ----------------------------------------------------------------------
# Sweep-service verbs (docs/service.md)
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.errors import ConfigurationError
    from repro.service.server import serve

    def announce(service) -> None:
        print(
            f"sweep service listening on {service.base_url} "
            f"(cache {service.config.cache_dir}, "
            f"queue limit {service.scheduler.queue_limit})",
            flush=True,
        )

    try:
        serve(
            ExperimentConfig.from_env(),
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_limit=args.queue_limit,
            state_dir=args.state_dir,
            fabric=args.fabric,
            ready=announce,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _spec_payload(args: argparse.Namespace) -> dict:
    """The JSON job spec a ``submit`` invocation describes."""
    payload: dict = {}
    if args.labels:
        payload["labels"] = [
            token.strip() for token in args.labels.split(",") if token.strip()
        ]
    if args.rates:
        payload["rates"] = [
            int(float(token)) for token in args.rates.split(",") if token
        ]
    if args.sizes:
        payload["sizes"] = [
            int(token) for token in args.sizes.split(",") if token
        ]
    for field in ("scale", "slice_refs", "seed"):
        value = getattr(args, field, None)
        if value is not None:
            payload[field] = value
    return payload


def _print_progress(name: str, payload: dict) -> None:
    if name == "cell_completed":
        print(
            f"[{payload.get('done')}/{payload.get('total')}] "
            f"cell {payload.get('key')} mode={payload.get('mode')}"
        )
    elif name == "job_running":
        print(f"job running ({payload.get('total')} cells)")


def _watch_to_completion(client, job_id: str) -> int:
    final = client.wait(job_id, on_event=_print_progress)
    print(
        f"job {final['id']}: {final['status']} "
        f"({final['done']}/{final['total']} cells, modes {final['modes']})"
    )
    if final["status"] != "completed":
        if final.get("error"):
            print(f"error: {final['error']}", file=sys.stderr)
        return 1
    return 0


def _job_line(job: dict) -> str:
    return (
        f"{job['id']}  {job['status']:9s}  "
        f"{job['done']}/{job['total']} cells  "
        f"labels={','.join(job['spec']['labels'])}"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    job = client.submit(_spec_payload(args))
    admission = job.get("admission", {})
    print(
        f"job {job['id']}: {job['status']} "
        f"({'new' if job.get('created') else 'existing'})"
    )
    print(
        f"cells: {job['total']} total, {admission.get('cached', 0)} cached, "
        f"{admission.get('inflight', 0)} in flight, "
        f"{admission.get('fresh', 0)} fresh"
    )
    if args.wait:
        return _watch_to_completion(client, job["id"])
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.job_id:
        job = client.job(args.job_id)
        print(_job_line(job))
        if job.get("modes"):
            print(f"modes: {job['modes']}")
        if job.get("error"):
            print(f"error: {job['error']}")
        return 1 if job["status"] == "failed" else 0
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(_job_line(job))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    return _watch_to_completion(ServiceClient(args.url), args.job_id)


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    manifest = client.records(args.job_id)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    fetched = missing = 0
    for cell in manifest["records"]:
        if not cell["present"]:
            missing += 1
            continue
        (out / f"{cell['key']}.json").write_bytes(
            client.fetch_record(cell["key"])
        )
        fetched += 1
    note = f", {missing} not yet present" if missing else ""
    print(f"fetched {fetched} records to {out}{note}")
    return 1 if missing else 0


_SERVICE_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "watch": _cmd_watch,
    "fetch": _cmd_fetch,
}


def _cmd_service(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    try:
        return _SERVICE_COMMANDS[args.command](args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_figures(args: argparse.Namespace) -> int:
    """Render Figures 2-5: a thin wrapper over the report builder.

    With a cache the figures render straight from the ``figures``
    report's records -- byte-identical to the pre-builder output; any
    missing cells are simulated (and cached) first.  Without a cache
    the runner computes the grids in memory as before.
    """
    from repro.analysis.figures_svg import (
        FIGURE_GRID_LABELS,
        render_figure_svgs,
        write_figure_svgs,
    )
    from repro.reports import build_report

    config = _config_with_flags(args)
    if config.cache_dir is None:
        paths = write_figure_svgs(_make_runner(args), args.out)
    else:
        report = build_report("figures", config)
        if not report.complete:
            runner = _make_runner(args)
            for label in FIGURE_GRID_LABELS:
                runner.grid(label)  # simulate the gaps into the cache
            report = build_report("figures", config)
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = []
        for name, svg in render_figure_svgs(report.grids(), config).items():
            path = out_dir / name
            path.write_text(svg, encoding="utf-8")
            paths.append(path)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _report_overrides(
    config: ExperimentConfig, args: argparse.Namespace
) -> ExperimentConfig:
    """Fold ``report``'s --rates/--sizes flags into the configuration."""
    if args.rates:
        config = replace(
            config,
            issue_rates=tuple(
                int(float(token)) for token in args.rates.split(",") if token
            ),
        )
    if args.sizes:
        config = replace(
            config,
            sizes=tuple(int(token) for token in args.sizes.split(",") if token),
        )
    return config


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reports import build_report, export_report

    if args.server:
        from repro.service.client import ServiceClient, ServiceError

        spec: dict = {}
        if args.rates:
            spec["rates"] = [
                int(float(token)) for token in args.rates.split(",") if token
            ]
        if args.sizes:
            spec["sizes"] = [
                int(token) for token in args.sizes.split(",") if token
            ]
        for field in ("scale", "slice_refs", "seed"):
            value = getattr(args, field, None)
            if value is not None:
                spec[field] = value
        try:
            body = ServiceClient(args.server).fetch_report(
                args.name,
                format=args.format,
                min_complete=args.min_complete,
                spec=spec,
            )
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        config = _report_overrides(_config_with_flags(args), args)
        try:
            report = build_report(args.name, config)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if (
            args.min_complete is not None
            and report.completeness < args.min_complete
        ):
            print(
                json.dumps(report.completeness_payload(), indent=2),
                file=sys.stderr,
            )
            print(
                f"error: report {args.name!r} is "
                f"{report.completeness:.3f} complete, below "
                f"--min-complete {args.min_complete}",
                file=sys.stderr,
            )
            return 1
        body = export_report(report, args.format)
    if args.out:
        out = Path(args.out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(body)
        print(f"wrote {out}")
    else:
        sys.stdout.buffer.write(body)
        sys.stdout.buffer.flush()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "bench":
        return bench.run(args)
    if args.command in _SERVICE_COMMANDS:
        return _cmd_service(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
