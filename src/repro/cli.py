"""Command-line interface: ``rampage-sim``.

Subcommands::

    rampage-sim list                      # available experiments
    rampage-sim run table3 [table4 ...]   # run experiments, print reports
    rampage-sim run all --out results/    # everything, saved to files
    rampage-sim sweep --kind rampage ...  # one ad-hoc simulation cell

Workload scaling comes from the ``REPRO_*`` environment variables (see
:mod:`repro.experiments.config`) or the ``--scale`` / ``--slice-refs``
flags, which take precedence.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, Sequence

from repro.core.timer import ScopedTimer, refs_per_second
from repro.experiments import ExperimentConfig, ParallelRunner, Runner
from repro.experiments import (
    figure4,
    figure5,
    per_program,
    table1,
    table2,
    table3,
    table4,
    table5,
    warmup,
)
from repro.experiments.figures23 import run_figure2, run_figure3
from repro.experiments.runner import ExperimentOutput
from repro.systems.factory import (
    baseline_machine,
    rampage_machine,
    twoway_machine,
)
from repro.systems.simulator import simulate
from repro.trace.synthetic import build_workload

EXPERIMENTS: dict[str, Callable[[Runner], ExperimentOutput]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "warmup": warmup.run,
    "per_program": per_program.run,
}

_MACHINES = {
    "baseline": baseline_machine,
    "twoway": twoway_machine,
    "rampage": rampage_machine,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rampage-sim",
        description="RAMpage memory-hierarchy reproduction (ASPLOS 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_cmd = sub.add_parser("run", help="run experiments and print reports")
    run_cmd.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    run_cmd.add_argument("--scale", type=float, help="workload scale factor")
    run_cmd.add_argument("--slice-refs", type=int, help="scheduling quantum")
    run_cmd.add_argument("--out", help="directory to write report files to")
    run_cmd.add_argument(
        "--workers",
        type=int,
        help="worker processes for sweep cells (default: one per core)",
    )

    figures_cmd = sub.add_parser(
        "figures", help="render Figures 2-5 as SVG files"
    )
    figures_cmd.add_argument("--out", default="results/figures")
    figures_cmd.add_argument("--scale", type=float, help="workload scale factor")
    figures_cmd.add_argument("--slice-refs", type=int, help="scheduling quantum")
    figures_cmd.add_argument(
        "--workers",
        type=int,
        help="worker processes for sweep cells (default: one per core)",
    )

    sweep_cmd = sub.add_parser("sweep", help="run one ad-hoc simulation")
    sweep_cmd.add_argument(
        "--kind", choices=sorted(_MACHINES), default="rampage"
    )
    sweep_cmd.add_argument("--issue-rate", type=int, default=1_000_000_000)
    sweep_cmd.add_argument("--size", type=int, default=1024, help="block/page bytes")
    sweep_cmd.add_argument("--switch-on-miss", action="store_true")
    sweep_cmd.add_argument("--scale", type=float, default=0.001)
    sweep_cmd.add_argument("--slice-refs", type=int, default=20_000)
    return parser


def _config_with_flags(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.from_env()
    if getattr(args, "scale", None) is not None:
        config = replace(config, scale=args.scale)
    if getattr(args, "slice_refs", None) is not None:
        config = replace(config, slice_refs=args.slice_refs)
    return config


def _make_runner(args: argparse.Namespace) -> Runner:
    """A parallel runner unless the user pinned a single worker."""
    config = _config_with_flags(args)
    workers = getattr(args, "workers", None)
    if workers is not None and workers <= 1:
        return Runner(config)
    return ParallelRunner(config, workers=workers)


def _cmd_list() -> int:
    for name, func in EXPERIMENTS.items():
        doc = (func.__doc__ or "").strip().splitlines()
        print(f"{name:10s} {doc[0] if doc else ''}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    for name in names:
        with ScopedTimer() as timer:
            output = EXPERIMENTS[name](runner)
        print(output.text)
        print(f"[{name} finished in {timer.elapsed:.2f} s]")
        print()
        if args.out:
            path = output.write_to(args.out)
            print(f"[written to {path}]")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    builder = _MACHINES[args.kind]
    kwargs = {}
    if args.kind == "rampage":
        params = builder(args.issue_rate, args.size, switch_on_miss=args.switch_on_miss, **kwargs)
    else:
        if args.switch_on_miss:
            print("--switch-on-miss requires --kind rampage", file=sys.stderr)
            return 2
        params = builder(args.issue_rate, args.size, **kwargs)
    programs = build_workload(args.scale)
    with ScopedTimer() as timer:
        result = simulate(params, programs, slice_refs=args.slice_refs)
    stats = result.stats
    throughput = refs_per_second(stats.workload_refs, timer.elapsed)
    print(f"machine: {args.kind} @{args.issue_rate} Hz, unit {args.size} B")
    print(f"simulated time: {result.seconds:.6f} s")
    print(f"wall time: {timer.elapsed:.2f} s ({throughput:,.0f} refs/s)")
    print(f"workload refs: {stats.workload_refs}")
    print(f"TLB misses: {stats.tlb_misses}  page faults: {stats.page_faults}")
    print(f"L2 misses: {stats.l2_misses}  DRAM accesses: {stats.dram_accesses}")
    print(f"level fractions: { {k: round(v, 4) for k, v in result.level_fractions.items()} }")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.figures_svg import write_figure_svgs

    runner = _make_runner(args)
    paths = write_figure_svgs(runner, args.out)
    for path in paths:
        print(f"wrote {path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
