"""repro -- a reproduction of the RAMpage memory hierarchy.

Trace-driven simulator reproducing *"Hardware-Software Trade-Offs in a
Direct Rambus Implementation of the RAMpage Memory Hierarchy"*
(Machanick, Salverda & Pompe, ASPLOS 1998): a conventional two-level
cache machine and the RAMpage machine -- whose lowest SRAM level is a
software-managed paged main memory over Direct Rambus DRAM -- compared
across the growing CPU-DRAM speed gap.

Quick start::

    from repro import rampage_machine, baseline_machine, simulate
    from repro.trace import build_workload

    programs = build_workload(scale=0.001)
    result = simulate(rampage_machine(issue_rate_hz=10**9), programs,
                      slice_refs=2_000)
    print(result.seconds, result.stats.page_faults)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core.params import (
    BusParams,
    CacheParams,
    DiskParams,
    HandlerCosts,
    L1Params,
    MachineParams,
    RambusParams,
    RampageParams,
    TlbParams,
)
from repro.core.stats import SimStats
from repro.systems import (
    ConventionalSystem,
    RampageSystem,
    SimulationResult,
    Simulator,
    baseline_machine,
    build_system,
    rampage_machine,
    simulate,
    twoway_machine,
)
from repro.systems.factory import (
    ISSUE_RATES_HZ,
    TRANSFER_SIZES,
    aggressive_l1,
    large_tlb,
    with_future_work_upgrades,
)
from repro.trace import build_program, build_workload, table2_catalog

__version__ = "1.0.0"

__all__ = [
    "BusParams",
    "CacheParams",
    "DiskParams",
    "HandlerCosts",
    "L1Params",
    "MachineParams",
    "RambusParams",
    "RampageParams",
    "TlbParams",
    "SimStats",
    "ConventionalSystem",
    "RampageSystem",
    "SimulationResult",
    "Simulator",
    "baseline_machine",
    "build_system",
    "rampage_machine",
    "simulate",
    "twoway_machine",
    "ISSUE_RATES_HZ",
    "TRANSFER_SIZES",
    "aggressive_l1",
    "large_tlb",
    "with_future_work_upgrades",
    "build_program",
    "build_workload",
    "table2_catalog",
    "__version__",
]
