"""The RAMpage machine (paper sections 2, 4.5-4.6).

TLB -> split L1 -> SRAM main memory -> DRAM paging device.  The lowest
SRAM level is a paged, tagless main memory: the TLB translates straight
to SRAM frames, so a valid translation *guarantees* residency and an L1
miss never needs a tag check below -- full associativity with no hit
penalty, which is the paper's core trade.

The price is software: TLB misses run an inverted-page-table lookup
(pinned in SRAM, so it never touches DRAM -- section 2.3), and a page
fault runs a clock-algorithm replacement plus a DRAM page transfer.
With ``switch_on_miss`` enabled, the fault instead queues the transfer
on the Rambus channel in the background, runs the context-switch trace
and preempts the process (section 5.4); the CPU stalls later only if it
needs the page (or the channel) before the transfer completes.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.params import MachineParams
from repro.mem.sram_memory import SramMainMemory
from repro.ossim.footprint import OsLayout, rampage_layout
from repro.systems.base import MemorySystem
from repro.trace.record import IFETCH, TraceChunk

#: Bytes read from the DRAM-resident page table to locate a page's DRAM
#: copy during a fault (one table entry plus its cache line padding).
DRAM_TABLE_ENTRY_BYTES = 32


class RampageSystem(MemorySystem):
    """SRAM-main-memory machine with software-managed replacement."""

    kind = "rampage"

    def __init__(self, params: MachineParams) -> None:
        if params.kind != "rampage":
            raise ConfigurationError(
                f"RampageSystem requires kind='rampage', got {params.kind!r}"
            )
        super().__init__(params)
        self.sram = SramMainMemory(params.rampage)
        self._page_bytes = params.rampage.page_bytes
        self.switch_on_miss = params.switch_on_miss
        #: In-flight background page transfers: frame -> ready time (ps).
        self._pending: dict[int, int] = {}
        #: Recording-only shadow of ``_pending``: frame -> fill ordinal
        #: on the decision-op tape.  Never time-pruned -- a fill that
        #: completed under the recording timing could still stall a
        #: sibling cell, so the WAIT op must be recorded at the frame's
        #: first structural touch regardless.
        self._plane_shadow: dict[int, int] = {}
        self._current_pid = 0

    def _os_layout(self) -> OsLayout:
        return rampage_layout(self.params.rampage)

    # ------------------------------------------------------------------
    # Translation and faulting
    # ------------------------------------------------------------------

    def _translate(self, gvpn: int) -> int:
        """TLB miss: inverted-table lookup in pinned SRAM, fault if absent."""
        pid = gvpn >> self._vpn_space_bits
        counts = self.stats.tlb_misses_by_pid
        counts[pid] = counts.get(pid, 0) + 1
        frame, probes = self.sram.translate(gvpn)
        parts = self.handlers.tlb_miss_parts(gvpn, probes)
        self.stats.tlb_handler_refs += self.handlers.tlb_miss_ref_count(probes)
        self._run_handler_parts(parts)
        if frame == -1:
            frame = self._page_fault(gvpn)
        self.tlb.insert(gvpn, frame)
        self.sram.touch(frame)
        return frame

    def _page_fault(self, gvpn: int) -> int:
        """Service a page fault from the SRAM main memory.

        Charges: fault-handler software (including the clock scan),
        victim TLB flush, L1 flush of the reused frame, a DRAM
        page-table entry read, the dirty-victim writeback and the page
        fetch.  Under switch-on-miss the two page transfers are queued
        in the background and the process is preempted instead of
        stalling.
        """
        stats = self.stats
        stats.page_faults += 1
        pid = gvpn >> self._vpn_space_bits
        stats.faults_by_pid[pid] = stats.faults_by_pid.get(pid, 0) + 1
        outcome = self.sram.fault(gvpn)
        parts = self.handlers.page_fault_parts(gvpn, outcome.scanned)
        stats.fault_handler_refs += self.handlers.page_fault_ref_count(
            outcome.scanned
        )
        self._run_handler_parts(parts)
        if outcome.unmapped_vpn is not None:
            # The victim's translation is gone; flush its TLB entry
            # (section 2.3: "if a page is replaced ... its entry in the
            # TLB is flushed").
            self.tlb.flush_vpn(outcome.unmapped_vpn)
        if outcome.soft:
            # Standby-list reclaim: contents still in the frame.
            return outcome.frame
        frame = outcome.frame
        dirty_l1 = False
        if outcome.reused:
            dirty_l1 = self._flush_l1_range(
                frame << self._page_bits, self._page_bytes
            )
        if self._plane_shadow:
            ordinal = self._plane_shadow.pop(frame, None)
            if ordinal is not None:
                self._dop_sink.wait_op(ordinal, self.clock.cycles)
        if frame in self._pending:
            # The frame's previous fill is still in flight; the OS must
            # wait before overwriting it.
            stall = self.clock.advance_to(self._pending.pop(frame))
            self.lt.dram += stall
            stats.dram_stall_ps += stall
        needs_writeback = outcome.writeback_vpn is not None or dirty_l1
        # One entry read from the DRAM-resident page table locates the
        # page's DRAM copy (translations to DRAM are off the critical
        # path and not cached by the TLB -- section 2.3).
        self._dram_sync(DRAM_TABLE_ENTRY_BYTES)
        if self.switch_on_miss:
            now = self.clock.now_ps
            sink = self._dop_sink
            if needs_writeback:
                stats.page_writebacks += 1
                self.channel.begin_background(now, self._page_bytes)
                if sink is not None:
                    sink.background_op(
                        self._page_bytes, self.clock.cycles, fill=False
                    )
            ready = self.channel.begin_background(now, self._page_bytes)
            if sink is not None:
                self._plane_shadow[frame] = sink.background_op(
                    self._page_bytes, self.clock.cycles, fill=True
                )
            stats.dram_overlap_ps += ready - now
            self._prune_pending(now)
            self._pending[frame] = ready
            stats.switches_on_miss += 1
            self.context_switch(self._current_pid)
            self._preempted = True
        else:
            if needs_writeback:
                stats.page_writebacks += 1
                self._dram_sync(self._page_bytes)
            self._dram_sync(self._page_bytes)
        return frame

    def _prune_pending(self, now_ps: int) -> None:
        if not self._pending:
            return
        done = [f for f, ready in self._pending.items() if ready <= now_ps]
        for frame in done:
            del self._pending[frame]

    # ------------------------------------------------------------------
    # Below-L1: the SRAM main memory
    # ------------------------------------------------------------------

    def _below_l1_fetch(self, paddr: int) -> None:
        # A valid translation guarantees residency, so there is nothing
        # to look up -- the 12-cycle transfer is charged by the caller.
        # The only exception is a page still arriving from DRAM.
        if self._plane_shadow:
            ordinal = self._plane_shadow.pop(paddr >> self._page_bits, None)
            if ordinal is not None:
                self._dop_sink.wait_op(ordinal, self.clock.cycles)
        if self._pending:
            frame = paddr >> self._page_bits
            ready = self._pending.get(frame)
            if ready is not None:
                del self._pending[frame]
                stall = self.clock.advance_to(ready)
                self.lt.dram += stall
                self.stats.dram_stall_ps += stall

    def _l1_writeback_below(self, victim_block: int) -> None:
        frame = victim_block >> (self._page_bits - self._l1_block_bits)
        self.sram.mark_dirty(frame)

    # ------------------------------------------------------------------
    # Fast chunk path
    # ------------------------------------------------------------------

    def run_chunk(self, chunk: TraceChunk) -> int:
        """Fast chunk path; observationally identical to base access().

        Unlike the conventional machine, no micro-cache over the last
        translation survives a slow path: a page fault can unmap any
        page, so the cached (vpn, frame) pair is dropped after every
        TLB miss (``stable_translation=False``).  Direct-mapped L1s
        take the run-collapsed vectorized loop; associative L1s fall
        back to the scalar loop below.
        """
        self._current_pid = chunk.pid
        if self.l1i.ways == 1 and self.l1d.ways == 1:
            if self._plane_replay is not None:
                return self._run_chunk_filtered(chunk, stable_translation=False)
            if self._plane_sink is not None:
                return self._run_chunk_recording(chunk, stable_translation=False)
            return self._run_chunk_vectorized(chunk, stable_translation=False)
        return self._run_chunk_scalar(chunk)

    def _run_chunk_scalar(self, chunk: TraceChunk) -> int:
        """Inlined per-reference hot loop (associative-L1 fallback)."""
        kinds = chunk.kinds_list
        addrs = chunk.addrs_list
        n = len(kinds)
        pid_base = chunk.pid << self._vpn_space_bits
        page_bits = self._page_bits
        page_mask = self._page_mask
        l1_bits = self._l1_block_bits
        tlb = self.tlb
        l1i, l1d = self.l1i, self.l1d
        fast_l1 = l1i.ways == 1 and l1d.ways == 1
        i_tags, d_tags = l1i.tags, l1d.tags
        d_dirty = l1d.dirty
        i_mask, d_mask = l1i.set_mask, l1d.set_mask
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        last_vpn = -1
        last_frame = 0
        idx = 0
        while idx < n:
            vaddr = addrs[idx]
            gvpn = pid_base | (vaddr >> page_bits)
            if gvpn == last_vpn:
                frame = last_frame
                tlb.hits += 1
            else:
                frame = tlb.lookup(gvpn)
                if frame is None:
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    frame = self._translate(gvpn)
                    last_vpn = -1  # a fault may have remapped pages
                    if self._preempted:
                        self._preempted = False
                        break
                else:
                    last_vpn = gvpn
                    last_frame = frame
            paddr = (frame << page_bits) | (vaddr & page_mask)
            kind = kinds[idx]
            block = paddr >> l1_bits
            idx += 1
            if kind == IFETCH:
                ifetches += 1
                if fast_l1 and i_tags[block & i_mask] == block:
                    i_hits += 1
                    icycles += 1
                    continue
                if icycles:
                    lt.l1i += clock.tick_cycles(icycles)
                    icycles = 0
                if not fast_l1:
                    slot = l1i.slot_of(block)
                    if slot != -1:
                        i_hits += 1
                        lt.l1i += clock.tick_cycles(self._l1_hit_cycles)
                        continue
                self._l1_miss(l1i, block, paddr, kind)
            else:
                if fast_l1:
                    slot = block & d_mask
                    if d_tags[slot] == block:
                        d_hits += 1
                        if kind == 1:
                            writes += 1
                            d_dirty[slot] = 1
                        else:
                            reads += 1
                        continue
                else:
                    slot = l1d.slot_of(block)
                    if slot != -1:
                        d_hits += 1
                        if kind == 1:
                            writes += 1
                            l1d.dirty[slot] = 1
                        else:
                            reads += 1
                        continue
                if kind == 1:
                    writes += 1
                else:
                    reads += 1
                if icycles:
                    lt.l1i += clock.tick_cycles(icycles)
                    icycles = 0
                self._l1_miss(l1d, block, paddr, kind)
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        return idx

    def access(self, kind: int, vaddr: int, pid: int = 0) -> bool:
        self._current_pid = pid
        return super().access(kind, vaddr, pid)
