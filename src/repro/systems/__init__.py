"""The two simulated machines and the simulation driver.

* :mod:`repro.systems.base` -- shared machinery: L1 handling, handler
  execution, DRAM accounting, the scalar reference path.
* :mod:`repro.systems.conventional` -- TLB -> L1 -> L2 -> DRAM (the
  paper's baseline direct-mapped and "realistic" 2-way machines).
* :mod:`repro.systems.rampage` -- TLB -> L1 -> SRAM main memory -> DRAM
  paging device (the paper's contribution), with optional context
  switches on misses.
* :mod:`repro.systems.simulator` -- drives a machine over an
  interleaved workload, handling scheduled switches and preemption.
* :mod:`repro.systems.factory` -- presets for the paper's section 4
  configurations.
"""

from repro.systems.base import MemorySystem, SimulationResult
from repro.systems.conventional import ConventionalSystem
from repro.systems.factory import (
    baseline_machine,
    build_system,
    rampage_machine,
    twoway_machine,
)
from repro.systems.rampage import RampageSystem
from repro.systems.simulator import Simulator, simulate
from repro.systems.virtual_l1 import VirtualL1RampageSystem

__all__ = [
    "MemorySystem",
    "SimulationResult",
    "ConventionalSystem",
    "RampageSystem",
    "VirtualL1RampageSystem",
    "Simulator",
    "simulate",
    "build_system",
    "baseline_machine",
    "twoway_machine",
    "rampage_machine",
]
