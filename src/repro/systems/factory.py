"""Machine presets for the paper's section 4 configurations."""

from __future__ import annotations

from dataclasses import replace

from repro.core.errors import ConfigurationError
from repro.core.params import (
    CacheParams,
    MachineParams,
    RampageParams,
    TlbParams,
    L1Params,
    MIB,
    KIB,
)
from repro.systems.base import MemorySystem
from repro.systems.conventional import ConventionalSystem
from repro.systems.rampage import RampageSystem

#: The issue rates swept in the experiments.  The paper states "issue
#: rates of 200MHz to 4GHz are simulated"; these five sample that range
#: with exactly integral picosecond cycle times.
ISSUE_RATES_HZ = (
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    4_000_000_000,
)

#: Block / page sizes swept in Tables 3-5 and Figures 2-5.
TRANSFER_SIZES = (128, 256, 512, 1024, 2048, 4096)


def baseline_machine(
    issue_rate_hz: int = 200_000_000,
    block_bytes: int = 128,
    scheduled_switches: bool = False,
    **overrides,
) -> MachineParams:
    """Direct-mapped 4 MB L2 baseline (section 4.4)."""
    return MachineParams(
        kind="conventional",
        issue_rate_hz=issue_rate_hz,
        l2=CacheParams(4 * MIB, block_bytes, associativity=1),
        scheduled_switches=scheduled_switches,
        **overrides,
    )


def twoway_machine(
    issue_rate_hz: int = 200_000_000,
    block_bytes: int = 128,
    scheduled_switches: bool = True,
    **overrides,
) -> MachineParams:
    """2-way set-associative 4 MB L2, the "more realistic" machine
    (section 4.7); context-switch traces are on by default as in
    Table 5."""
    return MachineParams(
        kind="conventional",
        issue_rate_hz=issue_rate_hz,
        l2=CacheParams(4 * MIB, block_bytes, associativity=2),
        scheduled_switches=scheduled_switches,
        **overrides,
    )


def rampage_machine(
    issue_rate_hz: int = 200_000_000,
    page_bytes: int = 1 * KIB,
    switch_on_miss: bool = False,
    scheduled_switches: bool | None = None,
    standby_pages: int = 0,
    **overrides,
) -> MachineParams:
    """RAMpage machine (section 4.5).

    ``scheduled_switches`` defaults to following ``switch_on_miss``:
    Table 3's RAMpage rows carry no switch traces, Table 4's (switch on
    miss) include the full context-switch modelling.
    """
    if scheduled_switches is None:
        scheduled_switches = switch_on_miss
    return MachineParams(
        kind="rampage",
        issue_rate_hz=issue_rate_hz,
        rampage=RampageParams(page_bytes=page_bytes, standby_pages=standby_pages),
        switch_on_miss=switch_on_miss,
        scheduled_switches=scheduled_switches,
        **overrides,
    )


def virtual_l1_machine(
    issue_rate_hz: int = 200_000_000,
    page_bytes: int = 1 * KIB,
    switch_on_miss: bool = False,
    scheduled_switches: bool | None = None,
    standby_pages: int = 0,
    **overrides,
) -> MachineParams:
    """RAMpage with virtually-addressed L1s (the section 2.3 open point).

    Same defaults as :func:`rampage_machine`; the machine translates
    only on L1 misses (:class:`~repro.systems.virtual_l1.VirtualL1RampageSystem`).
    """
    return rampage_machine(
        issue_rate_hz=issue_rate_hz,
        page_bytes=page_bytes,
        switch_on_miss=switch_on_miss,
        scheduled_switches=scheduled_switches,
        standby_pages=standby_pages,
        virtual_l1=True,
        **overrides,
    )


def aggressive_l1() -> L1Params:
    """The section 6.3 work-in-progress L1: 64 KB 8-way I and D."""
    return L1Params(
        icache=CacheParams(64 * KIB, 32, associativity=8),
        dcache=CacheParams(64 * KIB, 32, associativity=8),
    )


def large_tlb() -> TlbParams:
    """The section 6.3 work-in-progress TLB: 1K entries, 2-way."""
    return TlbParams(entries=1024, associativity=2)


def with_future_work_upgrades(params: MachineParams) -> MachineParams:
    """Apply both section 6.3 upgrades to an existing machine."""
    return replace(params, l1=aggressive_l1(), tlb=large_tlb())


def build_system(params: MachineParams) -> MemorySystem:
    """Instantiate the machine described by ``params``."""
    if params.kind == "conventional":
        return ConventionalSystem(params)
    if params.kind == "rampage":
        if params.virtual_l1:
            from repro.systems.virtual_l1 import VirtualL1RampageSystem

            return VirtualL1RampageSystem(params)
        return RampageSystem(params)
    raise ConfigurationError(f"unknown machine kind {params.kind!r}")
