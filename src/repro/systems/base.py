"""Shared machinery of both simulated machines.

:class:`MemorySystem` holds everything the conventional and RAMpage
hierarchies have in common -- the split L1 caches, the TLB, the Rambus
channel, the clock and statistics, OS handler execution, and L1
inclusion maintenance -- and defines the access protocol:

* :meth:`access` is the scalar reference path: one (kind, vaddr, pid)
  at a time, returning whether the reference completed (False means the
  process was preempted by a switch-on-miss and the reference must
  replay).
* :meth:`run_chunk` consumes a :class:`~repro.trace.record.TraceChunk`
  and returns how many references it consumed.  The base implementation
  just loops over :meth:`access`; subclasses override it with an
  inlined fast path that must stay observationally identical (tests
  assert equivalence between the two).

Timing rules are documented in DESIGN.md section 4; every charge in
this file cites the paper parameter it implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.clock import SimClock, ps_to_seconds
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.params import MachineParams
from repro.core.rng import XorShiftRNG
from repro.core.stats import SimStats
from repro.mem.cache import SetAssociativeCache
from repro.mem.dram import RambusChannel
from repro.mem.tlb import TLB
from repro.ossim.handlers import HandlerLibrary
from repro.trace.filter import (
    FLAG_FIRST_WRITE,
    FLAG_IFETCH,
    FLAG_L1_MISS,
    FLAG_PREEMPT,
    FLAG_TRANSLATE,
    PlaneReplayError,
)
from repro.trace.record import IFETCH, READ, WRITE, TraceChunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ossim.footprint import OsLayout
    from repro.trace.filter import MissPlane, PlaneRecorder


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run."""

    params: MachineParams
    stats: SimStats

    @property
    def time_ps(self) -> int:
        return self.stats.total_time_ps

    @property
    def seconds(self) -> float:
        """Simulated run time in seconds (the unit of Tables 3-5)."""
        return ps_to_seconds(self.time_ps)

    @property
    def level_fractions(self) -> dict[str, float]:
        """Per-level time fractions (the unit of Figures 2-3)."""
        return self.stats.level_times.fractions()

    @property
    def overhead_ratio(self) -> float:
        """Handler-reference overhead (the unit of Figure 4)."""
        return self.stats.overhead_ratio

    def summary(self) -> dict[str, object]:
        """Compact description for reports and caching."""
        return {
            "kind": self.params.kind,
            "issue_rate_hz": self.params.issue_rate_hz,
            "transfer_unit_bytes": self.params.transfer_unit_bytes,
            "switch_on_miss": self.params.switch_on_miss,
            "seconds": self.seconds,
            "workload_refs": self.stats.workload_refs,
            "overhead_ratio": self.overhead_ratio,
            "level_fractions": self.level_fractions,
        }


class MemorySystem:
    """Base class of the two machines."""

    kind = "abstract"

    #: Subclasses whose front-end is a scalar loop with its own
    #: plane-capable recording/filtered variants (virtual-L1) set this
    #: to relax the generic-L1 requirement of ``_check_plane_capable``.
    _plane_scalar_front_end = False

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self.clock = SimClock(params.issue_rate_hz)
        self.stats = SimStats()
        self.lt = self.stats.level_times
        root_rng = XorShiftRNG(params.seed)
        # Fail fast if the cycle constants contradict the bus geometry
        # (the 12/9-cycle penalties are bus arithmetic, not free knobs).
        from repro.mem.bus import check_consistency

        check_consistency(params.bus, params.l1)
        self.l1i = SetAssociativeCache(params.l1.icache, root_rng.fork())
        self.l1d = SetAssociativeCache(params.l1.dcache, root_rng.fork())
        self.tlb = TLB(params.tlb, root_rng.fork())
        self.rng = root_rng
        self.channel = RambusChannel(params.dram)
        self._l1_block_bits = self.l1i.block_bits
        self._l1_hit_cycles = params.l1.hit_cycles
        self._l1_miss_cycles = params.l1.miss_penalty_cycles
        # Writeback cost differs between machines: 12 cycles with an L2
        # tag update, 9 without one (paper section 4.3).
        self._wb_cycles = (
            params.l1.rampage_writeback_cycles
            if params.kind == "rampage"
            else params.l1.writeback_cycles
        )
        page_bytes = params.translation_page_bytes
        self._page_bits = page_bytes.bit_length() - 1
        self._page_mask = page_bytes - 1
        self._vpn_space_bits = params.vaddr_bits - self._page_bits
        self.handlers = HandlerLibrary(params.handlers, self._os_layout())
        self._preempted = False
        # Fast paths that probe the L1 tag arrays directly are only
        # sound when the subclass keeps the generic physical-block
        # indexing (virtual-L1 machines override _l1_access to retag
        # handler references into their own block space).
        self._generic_l1_access = (
            type(self)._l1_access is MemorySystem._l1_access
        )
        # Shared handler parts are memoized lists owned by the handler
        # library; each is compiled once per system into same-block runs
        # (see _handler_runs).  Entries pin the refs list, keeping its
        # id() stable for the lifetime of the entry.
        self._handler_run_cache: dict[int, tuple[list, list]] = {}
        # Two-phase sweep hooks (repro.trace.filter): at most one of a
        # plane recorder (this run also writes the miss plane) or an
        # attached plane (this run replays only the plane's events).
        self._plane_sink: "PlaneRecorder | None" = None
        self._plane_replay: "MissPlane | None" = None
        self._plane_cursor = 0
        # Timing-tape tap: a recording run appends each synchronous DRAM
        # transfer's byte count here (see trace/filter.py).
        self._tape_sink: list[int] | None = None
        # Decision-op tap: set to the recorder only when recording a
        # preempting (switch-on-miss) machine; every DRAM interaction
        # then also lands on the recorder's decision-op tape.
        self._dop_sink: "PlaneRecorder | None" = None

    # ------------------------------------------------------------------
    # Subclass protocol
    # ------------------------------------------------------------------

    def _os_layout(self) -> "OsLayout":
        raise NotImplementedError

    def _translate(self, gvpn: int) -> int:
        """Slow translation path (TLB missed); returns the frame.

        May run handler software, fault, and request preemption.
        """
        raise NotImplementedError

    def _below_l1_fetch(self, paddr: int) -> None:
        """Make the block at ``paddr`` available one level below L1."""
        raise NotImplementedError

    def _l1_writeback_below(self, victim_block: int) -> None:
        """Propagate an L1 victim's dirty bit one level down."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Scalar reference path
    # ------------------------------------------------------------------

    def global_vpn(self, vaddr: int, pid: int) -> int:
        """Combine pid and virtual page number into one key."""
        return (pid << self._vpn_space_bits) | (vaddr >> self._page_bits)

    def access(self, kind: int, vaddr: int, pid: int = 0) -> bool:
        """Simulate one workload reference.

        Returns False when the reference did not complete because the
        process was preempted (switch-on-miss); the caller must replay
        it after rescheduling.
        """
        gvpn = self.global_vpn(vaddr, pid)
        frame = self.tlb.lookup(gvpn)
        if frame is None:
            frame = self._translate(gvpn)
            if self._preempted:
                self._preempted = False
                return False
        stats = self.stats
        if kind == IFETCH:
            stats.ifetches += 1
        elif kind == WRITE:
            stats.writes += 1
        else:
            stats.reads += 1
        paddr = (frame << self._page_bits) | (vaddr & self._page_mask)
        self._l1_access(kind, paddr)
        return True

    def run_chunk(self, chunk: TraceChunk) -> int:
        """Consume a chunk; returns references consumed (see class doc)."""
        pid = chunk.pid
        kinds = chunk.kinds_list
        addrs = chunk.addrs_list
        for idx in range(len(kinds)):
            if not self.access(kinds[idx], addrs[idx], pid):
                return idx
        return len(kinds)

    # ------------------------------------------------------------------
    # Run-collapsed fast path (direct-mapped L1s)
    # ------------------------------------------------------------------

    def _run_chunk_vectorized(self, chunk: TraceChunk, stable_translation: bool) -> int:
        """Hot loop over the chunk's pre-translated runs.

        Consumes the :class:`~repro.trace.record.ChunkRuns` structure --
        page numbers, block offsets and same-block run lengths computed
        in bulk by numpy -- and fast-forwards over each run instead of
        re-deriving ``gvpn``/``block`` per reference.  Within a run
        every reference shares one translation and, after the first
        reference settles the block, one L1 outcome, so hit counters
        and issue cycles can be added in one step.

        Only valid for direct-mapped L1s (associative L1s update
        replacement state per probe, which a collapsed run would skip);
        callers fall back to their scalar loops otherwise.

        ``stable_translation`` mirrors the machines' micro-cache rules:
        the conventional machine's frames never move, so the last
        (vpn, frame) pair survives a slow translation; RAMpage drops it
        after every TLB miss (a fault may remap pages) and re-probes
        the TLB on the following reference.  Observationally identical
        to the scalar paths -- the equivalence suites enforce it.
        """
        runs = chunk.runs_for(
            self._page_bits, self._l1_block_bits, self._vpn_space_bits
        )
        page_bits = self._page_bits
        frame_shift = page_bits - self._l1_block_bits
        tlb = self.tlb
        # Inline the TLB probe: hit/miss counters are settled in bulk
        # below, so the hot loop only needs the raw set-indexed get.
        # The common fully-associative shape is a single dict.
        if tlb.num_sets == 1:
            tlb_get = tlb._maps[0].get
        else:
            tlb_get = tlb.peek
        l1i, l1d = self.l1i, self.l1d
        i_tags, d_tags = l1i.tags, l1d.tags
        d_dirty = l1d.dirty
        i_mask, d_mask = l1i.set_mask, l1d.set_mask
        hit_c = self._l1_hit_cycles
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        tlb_hits = 0
        tlb_misses = 0
        last_vpn = -1
        last_frame = 0
        consumed = runs.n
        for start, length, gvpn, offset, bip, is_ifetch, w, first_kind in zip(
            runs.starts,
            runs.lengths,
            runs.gvpns,
            runs.offsets,
            runs.bips,
            runs.is_ifetch,
            runs.writes,
            runs.first_kinds,
        ):
            if gvpn == last_vpn:
                frame = last_frame
                tlb_hits += length
            else:
                frame = tlb_get(gvpn)
                if frame is None:
                    tlb_misses += 1
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    frame = self._translate(gvpn)
                    if self._preempted:
                        self._preempted = False
                        consumed = start
                        break
                    if stable_translation:
                        last_vpn = gvpn
                        last_frame = frame
                        tlb_hits += length - 1
                    elif length > 1:
                        # The fault may have remapped pages: the scalar
                        # loop re-probes the TLB (which now holds the
                        # fresh entry) on the next reference before the
                        # micro-cache takes over again.
                        frame = tlb_get(gvpn)
                        last_vpn = gvpn
                        last_frame = frame
                        tlb_hits += length - 1
                    else:
                        last_vpn = -1
                else:
                    last_vpn = gvpn
                    last_frame = frame
                    tlb_hits += length
            block = (frame << frame_shift) | bip
            if is_ifetch:
                ifetches += length
                if i_tags[block & i_mask] == block:
                    i_hits += length
                    icycles += length * hit_c
                else:
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1i, block, (frame << page_bits) | offset, IFETCH
                    )
                    i_hits += length - 1
                    icycles += (length - 1) * hit_c
            else:
                slot = block & d_mask
                if d_tags[slot] == block:
                    d_hits += length
                    writes += w
                    reads += length - w
                    if w:
                        d_dirty[slot] = 1
                else:
                    if first_kind == WRITE:
                        writes += 1
                        w -= 1
                    else:
                        reads += 1
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1d, block, (frame << page_bits) | offset, first_kind
                    )
                    rest = length - 1
                    if rest:
                        d_hits += rest
                        writes += w
                        reads += rest - w
                        if w:
                            d_dirty[slot] = 1
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        tlb.hits += tlb_hits
        tlb.misses += tlb_misses
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        return consumed

    # ------------------------------------------------------------------
    # Two-phase sweeps: miss-plane recording and filtered replay
    # ------------------------------------------------------------------

    def _check_plane_capable(self) -> None:
        """Both plane modes need a plane-describable front-end.

        Associative L1s take the scalar path the plane does not
        describe, and subclasses that retag references outside the
        generic physical block space need their own plane-capable
        loops (``_plane_scalar_front_end``).  Switch-on-miss machines
        are capable: preemptions are recorded as chunk-terminating
        events and their DRAM timing on the decision-op tape.
        """
        if (
            self.l1i.ways != 1
            or self.l1d.ways != 1
            or not (self._generic_l1_access or self._plane_scalar_front_end)
        ):
            raise ConfigurationError(
                f"{self.kind} machine with L1 ways "
                f"({self.l1i.ways}, {self.l1d.ways}) cannot record or "
                "replay a miss plane"
            )

    def attach_plane_recorder(self, recorder: "PlaneRecorder") -> None:
        """Record a miss plane while this run simulates normally."""
        self._check_plane_capable()
        self._plane_sink = recorder
        self._tape_sink = recorder.tape
        self._dop_sink = recorder if self.params.switch_on_miss else None
        self._plane_replay = None

    def attach_plane_replay(self, plane: "MissPlane") -> None:
        """Replay a recorded miss plane instead of the full front-end."""
        self._check_plane_capable()
        self._plane_replay = plane
        self._plane_sink = None
        self._tape_sink = None
        self._dop_sink = None
        self._plane_cursor = 0

    def _run_chunk_recording(self, chunk: TraceChunk, stable_translation: bool) -> int:
        """The vectorized hot loop, plus miss-plane recording taps.

        Identical control flow, state updates and timing arithmetic to
        :meth:`_run_chunk_vectorized` -- the recording run's results are
        cached as an ordinary cell, so it must stay byte-identical.  On
        top of that it classifies every run: runs that reach a TLB- or
        L1-miss path become plane *events* (recorded with the frame the
        run actually used and the original write count), runs settled
        entirely by L1 hits melt into per-gap aggregate counters plus an
        explicit list of dirty bits newly set within the gap.
        """
        recorder = self._plane_sink
        recorder.begin_chunk()
        runs = chunk.runs_for(
            self._page_bits, self._l1_block_bits, self._vpn_space_bits
        )
        page_bits = self._page_bits
        frame_shift = page_bits - self._l1_block_bits
        tlb = self.tlb
        if tlb.num_sets == 1:
            tlb_get = tlb._maps[0].get
        else:
            tlb_get = tlb.peek
        l1i, l1d = self.l1i, self.l1d
        i_tags, d_tags = l1i.tags, l1d.tags
        d_dirty = l1d.dirty
        i_mask, d_mask = l1i.set_mask, l1d.set_mask
        hit_c = self._l1_hit_cycles
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        tlb_hits = 0
        tlb_misses = 0
        last_vpn = -1
        last_frame = 0
        g_if = g_rd = g_wr = 0
        g_dirty: list[int] = []
        consumed = runs.n
        for start, length, gvpn, offset, bip, is_ifetch, w, first_kind in zip(
            runs.starts,
            runs.lengths,
            runs.gvpns,
            runs.offsets,
            runs.bips,
            runs.is_ifetch,
            runs.writes,
            runs.first_kinds,
        ):
            flags = 0
            if gvpn == last_vpn:
                frame = last_frame
                tlb_hits += length
            else:
                frame = tlb_get(gvpn)
                if frame is None:
                    flags = FLAG_TRANSLATE
                    tlb_misses += 1
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    frame = self._translate(gvpn)
                    if self._preempted:
                        self._preempted = False
                        if self._dop_sink is None:
                            raise SimulationError(
                                "preemption during miss-plane recording of "
                                "a machine without a decision-op tape"
                            )
                        # The faulting run never executed: record it as
                        # the chunk-terminating preempt event (replay
                        # re-runs the translate live and expects the
                        # same preemption) and hand the tail back.
                        if is_ifetch:
                            flags |= FLAG_IFETCH
                        elif first_kind == WRITE:
                            flags |= FLAG_FIRST_WRITE
                        recorder.event(
                            gvpn, frame, length, offset, bip, int(w),
                            flags | FLAG_PREEMPT, g_if, g_rd, g_wr, g_dirty,
                        )
                        g_if = g_rd = g_wr = 0
                        g_dirty = []
                        consumed = start
                        break
                    if stable_translation:
                        last_vpn = gvpn
                        last_frame = frame
                        tlb_hits += length - 1
                    elif length > 1:
                        frame = tlb_get(gvpn)
                        last_vpn = gvpn
                        last_frame = frame
                        tlb_hits += length - 1
                    else:
                        last_vpn = -1
                else:
                    last_vpn = gvpn
                    last_frame = frame
                    tlb_hits += length
            block = (frame << frame_shift) | bip
            if is_ifetch:
                ifetches += length
                if i_tags[block & i_mask] == block:
                    i_hits += length
                    icycles += length * hit_c
                    if flags:
                        recorder.event(
                            gvpn, frame, length, offset, bip, 0,
                            flags | FLAG_IFETCH, g_if, g_rd, g_wr, g_dirty,
                        )
                        g_if = g_rd = g_wr = 0
                        g_dirty = []
                    else:
                        g_if += length
                else:
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1i, block, (frame << page_bits) | offset, IFETCH
                    )
                    i_hits += length - 1
                    icycles += (length - 1) * hit_c
                    recorder.event(
                        gvpn, frame, length, offset, bip, 0,
                        flags | FLAG_IFETCH | FLAG_L1_MISS,
                        g_if, g_rd, g_wr, g_dirty,
                    )
                    g_if = g_rd = g_wr = 0
                    g_dirty = []
            else:
                w0 = w
                slot = block & d_mask
                if d_tags[slot] == block:
                    d_hits += length
                    writes += w
                    reads += length - w
                    if w:
                        # Replay applies a skipped gap run's 0->1 dirty
                        # transitions explicitly (evictions and flushes
                        # read the bit); event runs replay live.
                        if flags:
                            d_dirty[slot] = 1
                        elif not d_dirty[slot]:
                            d_dirty[slot] = 1
                            g_dirty.append(block)
                    if flags:
                        recorder.event(
                            gvpn, frame, length, offset, bip, w0, flags,
                            g_if, g_rd, g_wr, g_dirty,
                        )
                        g_if = g_rd = g_wr = 0
                        g_dirty = []
                    else:
                        g_wr += w
                        g_rd += length - w
                else:
                    if first_kind == WRITE:
                        flags |= FLAG_FIRST_WRITE
                        writes += 1
                        w -= 1
                    else:
                        reads += 1
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1d, block, (frame << page_bits) | offset, first_kind
                    )
                    rest = length - 1
                    if rest:
                        d_hits += rest
                        writes += w
                        reads += rest - w
                        if w:
                            d_dirty[slot] = 1
                    recorder.event(
                        gvpn, frame, length, offset, bip, w0,
                        flags | FLAG_L1_MISS, g_if, g_rd, g_wr, g_dirty,
                    )
                    g_if = g_rd = g_wr = 0
                    g_dirty = []
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        tlb.hits += tlb_hits
        tlb.misses += tlb_misses
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        recorder.end_chunk(chunk.pid, runs.n, consumed, g_if, g_rd, g_wr, g_dirty)
        return consumed

    def _run_chunk_filtered(self, chunk: TraceChunk, stable_translation: bool) -> int:
        """Replay a chunk from the attached miss plane.

        Walks only the plane's recorded events -- every run that reached
        a TLB- or L1-miss path when the plane was recorded -- and folds
        each inter-event gap in O(1): bulk hit/ref counters, one batched
        instruction-hit cycle charge, and the gap's recorded dirty-bit
        transitions.  Everything timed runs live (translations, handler
        software, L2/SRAM/DRAM traffic), so the back-end sees the exact
        reference sequence of the unfiltered run and the produced
        records are byte-identical; gap skipping never needs the
        chunk's reference arrays at all.

        Divergence -- a chunk that does not line up with the plane's
        chunk table, or a recorded L1 outcome contradicting the live tag
        state -- raises :class:`PlaneReplayError`; callers quarantine
        the plane and rerun unfiltered.
        """
        plane = self._plane_replay
        ordinal = self._plane_cursor
        self._plane_cursor = ordinal + 1
        view = plane.chunk_view(ordinal)
        if view.pid != chunk.pid or view.n_refs != len(chunk):
            raise PlaneReplayError(
                f"plane chunk {ordinal} is (pid={view.pid}, "
                f"n_refs={view.n_refs}); the workload drove "
                f"(pid={chunk.pid}, n_refs={len(chunk)})"
            )
        page_bits = self._page_bits
        frame_shift = page_bits - self._l1_block_bits
        tlb = self.tlb
        if tlb.num_sets == 1:
            tlb_get = tlb._maps[0].get
        else:
            tlb_get = tlb.peek
        l1i, l1d = self.l1i, self.l1d
        i_tags, d_tags = l1i.tags, l1d.tags
        d_dirty = l1d.dirty
        i_mask, d_mask = l1i.set_mask, l1d.set_mask
        hit_c = self._l1_hit_cycles
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        tlb_hits = 0
        tlb_misses = 0
        ev_gvpn = view.ev_gvpn
        ev_frame = view.ev_frame
        ev_length = view.ev_length
        ev_offset = view.ev_offset
        ev_bip = view.ev_bip
        ev_writes = view.ev_writes
        ev_flags = view.ev_flags
        gap_ifetch = view.gap_ifetch
        gap_reads = view.gap_reads
        gap_writes = view.gap_writes
        gap_dirty = view.gap_dirty
        preempted = False
        for index in range(view.n_events + 1):
            # Fold the gap preceding event ``index`` (the last gap,
            # after the final event, closes the chunk).  Gap references
            # are all L1 and TLB hits by construction: data hits are
            # untimed, instruction hits join the running cycle batch.
            g_if = gap_ifetch[index]
            g_rd = gap_reads[index]
            g_wr = gap_writes[index]
            ifetches += g_if
            reads += g_rd
            writes += g_wr
            i_hits += g_if
            d_hits += g_rd + g_wr
            icycles += g_if * hit_c
            tlb_hits += g_if + g_rd + g_wr
            for block in gap_dirty[index]:
                d_dirty[block & d_mask] = 1
            if index == view.n_events:
                break
            flags = ev_flags[index]
            gvpn = ev_gvpn[index]
            length = ev_length[index]
            if flags & FLAG_TRANSLATE:
                tlb_misses += 1
                if icycles:
                    lt.l1i += clock.tick_cycles(icycles)
                    icycles = 0
                frame = self._translate(gvpn)
                if self._preempted:
                    self._preempted = False
                    if not flags & FLAG_PREEMPT:
                        raise PlaneReplayError(
                            "live preemption where the plane recorded none"
                        )
                    if index != view.n_events - 1:
                        raise PlaneReplayError(
                            "preempt event is not the plane chunk's last"
                        )
                    preempted = True
                    break
                if flags & FLAG_PREEMPT:
                    raise PlaneReplayError(
                        "no live preemption where the plane recorded one"
                    )
                if stable_translation:
                    tlb_hits += length - 1
                elif length > 1:
                    frame = tlb_get(gvpn)
                    tlb_hits += length - 1
            else:
                if flags & FLAG_PREEMPT:
                    raise PlaneReplayError(
                        "preempt event without a translate flag"
                    )
                frame = ev_frame[index]
                tlb_hits += length
            block = (frame << frame_shift) | ev_bip[index]
            if flags & FLAG_IFETCH:
                ifetches += length
                if i_tags[block & i_mask] == block:
                    if flags & FLAG_L1_MISS:
                        raise PlaneReplayError(
                            "live L1I hit where the plane recorded a miss"
                        )
                    i_hits += length
                    icycles += length * hit_c
                else:
                    if not flags & FLAG_L1_MISS:
                        raise PlaneReplayError(
                            "live L1I miss where the plane recorded a hit"
                        )
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1i,
                        block,
                        (frame << page_bits) | ev_offset[index],
                        IFETCH,
                    )
                    i_hits += length - 1
                    icycles += (length - 1) * hit_c
            else:
                w = ev_writes[index]
                slot = block & d_mask
                if d_tags[slot] == block:
                    if flags & FLAG_L1_MISS:
                        raise PlaneReplayError(
                            "live L1D hit where the plane recorded a miss"
                        )
                    d_hits += length
                    writes += w
                    reads += length - w
                    if w:
                        d_dirty[slot] = 1
                else:
                    if not flags & FLAG_L1_MISS:
                        raise PlaneReplayError(
                            "live L1D miss where the plane recorded a hit"
                        )
                    if flags & FLAG_FIRST_WRITE:
                        first_kind = WRITE
                        writes += 1
                        w -= 1
                    else:
                        first_kind = READ
                        reads += 1
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1d,
                        block,
                        (frame << page_bits) | ev_offset[index],
                        first_kind,
                    )
                    rest = length - 1
                    if rest:
                        d_hits += rest
                        writes += w
                        reads += rest - w
                        if w:
                            d_dirty[slot] = 1
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        tlb.hits += tlb_hits
        tlb.misses += tlb_misses
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        if not preempted and view.consumed != view.n_refs:
            raise PlaneReplayError(
                f"plane chunk consumed {view.consumed} of {view.n_refs} "
                "references but recorded no preemption"
            )
        return view.consumed

    # ------------------------------------------------------------------
    # L1 handling (shared by workload and handler references)
    # ------------------------------------------------------------------

    def _l1_access(self, kind: int, paddr: int) -> None:
        block = paddr >> self._l1_block_bits
        stats = self.stats
        if kind == IFETCH:
            cache = self.l1i
            slot = cache.slot_of(block)
            if slot != -1:
                stats.l1i_hits += 1
                # An instruction fetch hit costs one issue cycle; data
                # hits and TLB hits are fully pipelined (section 4.3).
                self.lt.l1i += self.clock.tick_cycles(self._l1_hit_cycles)
                return
        else:
            cache = self.l1d
            slot = cache.slot_of(block)
            if slot != -1:
                stats.l1d_hits += 1
                if kind == WRITE:
                    cache.dirty[slot] = 1
                return
        self._l1_miss(cache, block, paddr, kind)

    def _l1_miss(self, cache: SetAssociativeCache, block: int, paddr: int, kind: int) -> None:
        stats = self.stats
        if cache is self.l1i:
            stats.l1i_misses += 1
        else:
            stats.l1d_misses += 1
        self._below_l1_fetch(paddr)
        # 12-cycle L1 miss penalty to L2 / SRAM main memory (section 4.3).
        self.lt.l2 += self.clock.tick_cycles(self._l1_miss_cycles)
        if cache.ways == 1:
            # Inline of SetAssociativeCache.fill for the direct-mapped
            # shape (the hot path of every simulated miss).  An invalid
            # slot always has a clear dirty bit, so the empty-way case
            # needs no special handling.
            slot = block & cache.set_mask
            tags = cache.tags
            victim = tags[slot]
            victim_dirty = cache.dirty[slot]
            tags[slot] = block
            cache.dirty[slot] = 1 if kind == WRITE else 0
            cache.fills += 1
            if victim != -1:
                cache.evictions += 1
        else:
            victim, victim_dirty = cache.fill(block, dirty=(kind == WRITE))
        if victim != -1 and victim_dirty:
            stats.l1_writebacks += 1
            self.lt.l2 += self.clock.tick_cycles(self._wb_cycles)
            self._l1_writeback_below(victim)
        if kind == IFETCH:
            self.lt.l1i += self.clock.tick_cycles(self._l1_hit_cycles)

    def _flush_l1_range(self, base_paddr: int, nbytes: int) -> bool:
        """Invalidate both L1 caches over a physical range (inclusion).

        Each probe is charged an L1 hit time ("the given hit times are
        however used when ... maintaining inclusion", section 4.3).
        Dirty data blocks cost a writeback.  Returns True when any dirty
        block was found, so the caller can write the enclosing block or
        page back to DRAM.
        """
        first = base_paddr >> self._l1_block_bits
        count = nbytes >> self._l1_block_bits
        stats = self.stats
        clock = self.clock
        lt = self.lt
        dirty_found = False
        l1i, l1d = self.l1i, self.l1d
        hit = self._l1_hit_cycles
        if l1i.ways == 1 and l1d.ways == 1:
            # Direct-mapped fast path: probe both caches inline and
            # batch the per-probe hit-time charges into one tick per
            # cache (cycle charges are additive; no reference in this
            # loop reads the clock, so timing is unchanged).
            i_tags, d_tags = l1i.tags, l1d.tags
            i_mask, d_mask = l1i.set_mask, l1d.set_mask
            d_dirty = l1d.dirty
            invalidations = 0
            writebacks = 0
            for block in range(first, first + count):
                slot = block & i_mask
                if i_tags[slot] == block:
                    invalidations += 1
                    i_tags[slot] = -1
                    l1i.dirty[slot] = 0
                slot = block & d_mask
                if d_tags[slot] == block:
                    invalidations += 1
                    d_tags[slot] = -1
                    if d_dirty[slot]:
                        d_dirty[slot] = 0
                        dirty_found = True
                        writebacks += 1
            lt.l1i += clock.tick_cycles(count * hit)
            lt.l1d += clock.tick_cycles(count * hit)
            stats.inclusion_invalidations += invalidations
            if writebacks:
                stats.l1_writebacks += writebacks
                lt.l2 += clock.tick_cycles(writebacks * self._wb_cycles)
            return dirty_found
        for block in range(first, first + count):
            lt.l1i += clock.tick_cycles(hit)
            present, _ = l1i.invalidate(block)
            if present:
                stats.inclusion_invalidations += 1
            lt.l1d += clock.tick_cycles(hit)
            present, was_dirty = l1d.invalidate(block)
            if present:
                stats.inclusion_invalidations += 1
                if was_dirty:
                    dirty_found = True
                    stats.l1_writebacks += 1
                    lt.l2 += clock.tick_cycles(self._wb_cycles)
        return dirty_found

    # ------------------------------------------------------------------
    # OS software execution
    # ------------------------------------------------------------------

    #: Bound on compiled handler-run entries; cleared wholesale when
    #: full (entries rebuild in one pass over a short refs list).
    HANDLER_RUN_CACHE_MAX = 1024

    def _handler_runs(self, refs: list[tuple[int, int]]) -> list[list]:
        """Compile a shared handler part into same-block runs, memoized.

        Only called on *shared* parts: memoized (and therefore repeated)
        list objects owned by the :class:`HandlerLibrary`.  Keying on
        ``id(refs)`` with the list pinned in the entry makes the probe
        O(1) without hashing hundreds of tuples, and the pin keeps the
        id stable for the entry's lifetime.  Each run is
        ``[block, first_paddr, is_ifetch, length, first_kind,
        any_write, rest_write]`` -- everything the collapsed executor
        in :meth:`_run_handler_parts` needs.
        """
        key = id(refs)
        entry = self._handler_run_cache.get(key)
        if entry is not None and entry[0] is refs:
            return entry[1]
        block_bits = self._l1_block_bits
        runs: list[list] = []
        last_block = -1
        last_ifetch = None
        for kind, paddr in refs:
            block = paddr >> block_bits
            is_ifetch = kind == IFETCH
            if runs and block == last_block and is_ifetch == last_ifetch:
                run = runs[-1]
                run[3] += 1
                if kind == WRITE:
                    run[5] = True
                    run[6] = True
            else:
                runs.append(
                    [block, paddr, is_ifetch, 1, kind, kind == WRITE, False]
                )
                last_block = block
                last_ifetch = is_ifetch
        if len(self._handler_run_cache) >= self.HANDLER_RUN_CACHE_MAX:
            self._handler_run_cache.clear()
        self._handler_run_cache[key] = (refs, runs)
        return runs

    def _run_handler_parts(
        self, parts: "list[tuple[bool, list[tuple[int, int]]]]"
    ) -> None:
        """Execute a handler's ordered parts through the hierarchy.

        Handler references are physically addressed (the OS runs below
        translation) and therefore bypass the TLB; they do populate and
        pollute the L1s and lower levels, as the paper's interleaved
        handler traces do.

        Parts arrive from the :class:`HandlerLibrary` as
        ``(shared, refs)`` pairs.  On direct-mapped L1s the shared parts
        -- memoized straight-line code walks that repeat on every miss
        -- execute through pre-compiled same-block runs
        (:meth:`_handler_runs`): one tag probe and one batched hit-cycle
        charge per run, observing that the run's first reference settles
        the block.  Per-call data parts are short and rarely repeat
        (each fault touches a fresh vpn), so compiling them would cost
        more than it saves; they run through the per-reference inline
        loop.  Hit counters and batched instruction-hit cycles span
        parts, and the cycle batch is flushed before any miss (the only
        clock reader), so part boundaries are observationally invisible;
        the equivalence suites enforce identity with the scalar path.
        Associative L1s go through the generic per-reference path.
        """
        l1i, l1d = self.l1i, self.l1d
        if l1i.ways != 1 or l1d.ways != 1 or not self._generic_l1_access:
            access = self._l1_access
            for _, refs in parts:
                for kind, paddr in refs:
                    access(kind, paddr)
            return
        block_bits = self._l1_block_bits
        hit_c = self._l1_hit_cycles
        i_tags, d_tags = l1i.tags, l1d.tags
        i_mask, d_mask = l1i.set_mask, l1d.set_mask
        d_dirty = l1d.dirty
        clock = self.clock
        lt = self.lt
        stats = self.stats
        i_hits = d_hits = 0
        icycles = 0
        for shared, refs in parts:
            if shared:
                for run in self._handler_runs(refs):
                    block, paddr, is_ifetch, length, first_kind, any_write, rest_write = run
                    if is_ifetch:
                        if i_tags[block & i_mask] == block:
                            i_hits += length
                            icycles += length * hit_c
                            continue
                        if icycles:
                            lt.l1i += clock.tick_cycles(icycles)
                            icycles = 0
                        self._l1_miss(l1i, block, paddr, first_kind)
                        i_hits += length - 1
                        icycles += (length - 1) * hit_c
                    else:
                        slot = block & d_mask
                        if d_tags[slot] == block:
                            d_hits += length
                            if any_write:
                                d_dirty[slot] = 1
                            continue
                        if icycles:
                            lt.l1i += clock.tick_cycles(icycles)
                            icycles = 0
                        self._l1_miss(l1d, block, paddr, first_kind)
                        if length > 1:
                            d_hits += length - 1
                            if rest_write:
                                d_dirty[slot] = 1
            else:
                for kind, paddr in refs:
                    block = paddr >> block_bits
                    if kind == IFETCH:
                        if i_tags[block & i_mask] == block:
                            i_hits += 1
                            icycles += hit_c
                            continue
                    else:
                        slot = block & d_mask
                        if d_tags[slot] == block:
                            d_hits += 1
                            if kind == WRITE:
                                d_dirty[slot] = 1
                            continue
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    self._l1_miss(
                        l1i if kind == IFETCH else l1d, block, paddr, kind
                    )
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits

    def context_switch(self, pid: int) -> None:
        """Run the ~400-reference context-switch trace (section 4.6)."""
        parts = self.handlers.context_switch_parts(pid)
        self.stats.context_switches += 1
        self.stats.switch_refs += sum(len(refs) for _, refs in parts)
        self._run_handler_parts(parts)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _dram_sync(self, nbytes: int) -> None:
        """Blocking DRAM transfer: stall the CPU for queue + transfer."""
        tape = self._tape_sink
        if tape is not None:
            tape.append(nbytes)
            if self._dop_sink is not None:
                self._dop_sink.sync_op(nbytes, self.clock.cycles)
        wait, cost = self.channel.synchronous(self.clock.now_ps, nbytes)
        self.lt.dram += self.clock.tick_ps(wait + cost)
        self.stats.dram_accesses += 1
        self.stats.dram_stall_ps += wait

    def finalize(self) -> SimulationResult:
        """Fold component counters into the stats and wrap them up."""
        self.stats.tlb_hits = self.tlb.hits
        self.stats.tlb_misses = self.tlb.misses
        return SimulationResult(params=self.params, stats=self.stats)
