"""The conventional cache hierarchy (paper sections 4.3-4.4, 4.7).

TLB -> split L1 -> L2 cache -> Direct Rambus DRAM.  The TLB caches
virtual-to-DRAM-frame translations over fixed 4 KB DRAM pages; the L2 is
direct-mapped (baseline) or 2-way set-associative ("realistic"), with
its block size swept 128 B ... 4 KB.  Inclusion between L1 and L2 is
maintained (L1 is always a subset of L2, modulo dirty L1 blocks).

DRAM is infinite: pages are allocated on first touch and never paged to
disk ("infinite DRAM modeled with no misses to disk", section 4.3), so
the only page-table software is the TLB-miss handler, whose code and
table live in a reserved DRAM region and are cached like everything
else -- unlike RAMpage, which pins them in SRAM.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError, SimulationError
from repro.core.params import MachineParams
from repro.mem.cache import SetAssociativeCache
from repro.mem.victim import VictimBuffer
from repro.ossim.footprint import CONVENTIONAL_OS_BASE, OsLayout, conventional_layout
from repro.systems.base import MemorySystem
from repro.trace.record import IFETCH, TraceChunk


class ConventionalSystem(MemorySystem):
    """Baseline / 2-way associative cache machine."""

    kind = "conventional"

    def __init__(self, params: MachineParams) -> None:
        if params.kind != "conventional":
            raise ConfigurationError(
                f"ConventionalSystem requires kind='conventional', got {params.kind!r}"
            )
        super().__init__(params)
        self.l2 = SetAssociativeCache(params.l2, self.rng.fork())
        self._l2_block_bits = self.l2.block_bits
        self._l2_block_bytes = params.l2.block_bytes
        self.victim_buffer = VictimBuffer(params.victim_cache_blocks)
        self.page_table: dict[int, int] = {}
        self._next_frame = 0
        self._os_base_frame = CONVENTIONAL_OS_BASE >> self._page_bits

    def _os_layout(self) -> OsLayout:
        return conventional_layout()

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def _alloc_frame(self, gvpn: int) -> int:
        frame = self._next_frame
        if frame >= self._os_base_frame:
            raise SimulationError(
                "DRAM frame allocation reached the reserved OS region; "
                "the workload touched implausibly many pages"
            )
        self._next_frame = frame + 1
        self.page_table[gvpn] = frame
        return frame

    def _translate(self, gvpn: int) -> int:
        """TLB miss: walk the DRAM page table in software.

        The conventional machine's inverted table over DRAM stays at a
        low load factor (DRAM is infinite), so the handler probes once;
        Figure 4's baseline overhead is consequently flat across block
        sizes.
        """
        pid = gvpn >> self._vpn_space_bits
        counts = self.stats.tlb_misses_by_pid
        counts[pid] = counts.get(pid, 0) + 1
        frame = self.page_table.get(gvpn)
        if frame is None:
            frame = self._alloc_frame(gvpn)
        parts = self.handlers.tlb_miss_parts(gvpn, probes=1)
        self.stats.tlb_handler_refs += self.handlers.tlb_miss_ref_count(1)
        self._run_handler_parts(parts)
        self.tlb.insert(gvpn, frame)
        return frame

    # ------------------------------------------------------------------
    # L2 and DRAM
    # ------------------------------------------------------------------

    def _below_l1_fetch(self, paddr: int) -> None:
        l2_block = paddr >> self._l2_block_bits
        l2 = self.l2
        if l2.ways == 1:
            # Direct-mapped probe, inlined: one list index on the miss
            # path of every L1 miss.
            if l2.tags[l2_block & l2.set_mask] == l2_block:
                self.stats.l2_hits += 1
                return
        elif l2.slot_of(l2_block) != -1:
            self.stats.l2_hits += 1
            return
        self.stats.l2_misses += 1
        self._l2_miss(l2_block)

    def _l2_miss(self, l2_block: int) -> None:
        incoming_dirty = False
        swapped = self.victim_buffer.lookup_remove(l2_block)
        if swapped is not None:
            # Victim-buffer hit: the block swaps back over the bus at
            # one transfer cost instead of a DRAM access.
            incoming_dirty = swapped
            self.lt.l2 += self.clock.tick_cycles(self._l1_miss_cycles)
        else:
            self._dram_sync(self._l2_block_bytes)
        victim, victim_dirty = self.l2.fill(l2_block, dirty=incoming_dirty)
        if victim == -1:
            return
        # Inclusion: purge the victim's L1 blocks; dirty L1 data rides
        # out with the victim.
        dirty_l1 = self._flush_l1_range(
            victim << self._l2_block_bits, self._l2_block_bytes
        )
        victim_dirty = victim_dirty or dirty_l1
        if self.victim_buffer.enabled:
            displaced = self.victim_buffer.insert(victim, victim_dirty)
            if displaced is not None:
                displaced_block, displaced_dirty = displaced
                if displaced_dirty:
                    self.stats.l2_writebacks += 1
                    self._dram_sync(self._l2_block_bytes)
        elif victim_dirty:
            self.stats.l2_writebacks += 1
            self._dram_sync(self._l2_block_bytes)

    def _l1_writeback_below(self, victim_block: int) -> None:
        l2_block = victim_block >> (self._l2_block_bits - self._l1_block_bits)
        # Inclusion guarantees residency; mark_dirty raises otherwise.
        self.l2.mark_dirty(l2_block)

    # ------------------------------------------------------------------
    # Fast chunk path
    # ------------------------------------------------------------------

    def run_chunk(self, chunk: TraceChunk) -> int:
        """Fast chunk path; observationally identical to base access().

        DRAM pages are never reclaimed in this machine, so a
        (vpn -> frame) micro-cache over the last translation is safe --
        and survives slow translations (``stable_translation=True``).
        Direct-mapped L1s take the run-collapsed vectorized loop;
        associative L1s need per-probe replacement updates and fall
        back to the scalar loop below.
        """
        if self.l1i.ways == 1 and self.l1d.ways == 1:
            if self._plane_replay is not None:
                return self._run_chunk_filtered(chunk, stable_translation=True)
            if self._plane_sink is not None:
                return self._run_chunk_recording(chunk, stable_translation=True)
            return self._run_chunk_vectorized(chunk, stable_translation=True)
        return self._run_chunk_scalar(chunk)

    def _run_chunk_scalar(self, chunk: TraceChunk) -> int:
        """Inlined per-reference hot loop (associative-L1 fallback)."""
        kinds = chunk.kinds_list
        addrs = chunk.addrs_list
        n = len(kinds)
        pid_base = chunk.pid << self._vpn_space_bits
        page_bits = self._page_bits
        page_mask = self._page_mask
        l1_bits = self._l1_block_bits
        tlb = self.tlb
        l1i, l1d = self.l1i, self.l1d
        fast_l1 = l1i.ways == 1 and l1d.ways == 1
        i_tags, d_tags = l1i.tags, l1d.tags
        d_dirty = l1d.dirty
        i_mask, d_mask = l1i.set_mask, l1d.set_mask
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        last_vpn = -1
        last_frame = 0
        for idx in range(n):
            vaddr = addrs[idx]
            gvpn = pid_base | (vaddr >> page_bits)
            if gvpn == last_vpn:
                frame = last_frame
                tlb.hits += 1
            else:
                frame = tlb.lookup(gvpn)
                if frame is None:
                    if icycles:
                        lt.l1i += clock.tick_cycles(icycles)
                        icycles = 0
                    frame = self._translate(gvpn)
                last_vpn = gvpn
                last_frame = frame
            paddr = (frame << page_bits) | (vaddr & page_mask)
            kind = kinds[idx]
            block = paddr >> l1_bits
            if kind == IFETCH:
                ifetches += 1
                if fast_l1 and i_tags[block & i_mask] == block:
                    i_hits += 1
                    icycles += 1
                    continue
                if icycles:
                    lt.l1i += clock.tick_cycles(icycles)
                    icycles = 0
                if not fast_l1:
                    slot = l1i.slot_of(block)
                    if slot != -1:
                        i_hits += 1
                        lt.l1i += clock.tick_cycles(self._l1_hit_cycles)
                        continue
                self._l1_miss(l1i, block, paddr, kind)
            else:
                if fast_l1:
                    slot = block & d_mask
                    if d_tags[slot] == block:
                        d_hits += 1
                        if kind == 1:
                            writes += 1
                            d_dirty[slot] = 1
                        else:
                            reads += 1
                        continue
                else:
                    slot = l1d.slot_of(block)
                    if slot != -1:
                        d_hits += 1
                        if kind == 1:
                            writes += 1
                            l1d.dirty[slot] = 1
                        else:
                            reads += 1
                        continue
                if kind == 1:
                    writes += 1
                else:
                    reads += 1
                if icycles:
                    lt.l1i += clock.tick_cycles(icycles)
                    icycles = 0
                self._l1_miss(l1d, block, paddr, kind)
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        return n
