"""Simulation driver.

Connects a machine (:mod:`repro.systems.conventional` or
:mod:`repro.systems.rampage`) to an interleaved workload
(:mod:`repro.trace.interleave`), implementing the two scheduling
behaviours of the paper:

* **scheduled switches** -- when the workload rotates to the next
  program's time slice, a context-switch trace is inserted
  (sections 4.6-4.7),
* **switch on miss** -- when the RAMpage machine preempts on a page
  fault, the simulator pushes the unconsumed references back and
  rotates immediately; the switch trace was already charged by the
  fault path, so no second trace is inserted at the resulting slice
  boundary.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.params import MachineParams
from repro.systems.base import MemorySystem, SimulationResult
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import SyntheticProgram


class Simulator:
    """Runs one machine over one interleaved workload."""

    def __init__(self, system: MemorySystem, workload: InterleavedWorkload) -> None:
        self.system = system
        self.workload = workload
        params = system.params
        self.scheduled_switches = params.scheduled_switches
        self.preemptions = 0

    def run(self, max_refs: int | None = None) -> SimulationResult:
        """Drive the workload to completion (or ``max_refs``)."""
        if max_refs is not None and max_refs <= 0:
            raise ConfigurationError(f"max_refs must be positive, got {max_refs}")
        system = self.system
        workload = self.workload
        consumed_total = 0
        first_slice = True
        skip_switch_trace = False
        while True:
            chunk = workload.next_chunk()
            if chunk is None:
                break
            if chunk.new_slice and not first_slice:
                if self.scheduled_switches and not skip_switch_trace:
                    system.context_switch(chunk.pid)
                skip_switch_trace = False
            first_slice = False
            consumed = system.run_chunk(chunk)
            consumed_total += consumed
            if consumed < len(chunk):
                # The machine preempted mid-chunk (switch on miss): hand
                # the tail back and rotate.  The fault path already ran
                # the switch trace.
                self.preemptions += 1
                workload.preempt(chunk.tail(consumed))
                skip_switch_trace = True
            if max_refs is not None and consumed_total >= max_refs:
                break
        return system.finalize()


def simulate(
    params: MachineParams,
    programs: Sequence[SyntheticProgram],
    slice_refs: int = 500_000,
    max_refs: int | None = None,
    record_plane=None,
    replay_plane=None,
) -> SimulationResult:
    """Build a machine for ``params`` and run it over ``programs``.

    This is the library's main entry point: a one-call reproduction of
    one cell of the paper's result tables.

    ``record_plane`` (a :class:`~repro.trace.filter.PlaneRecorder`)
    additionally records the run's miss plane; ``replay_plane`` (a
    :class:`~repro.trace.filter.MissPlane`) replays one instead of
    simulating the full L1/TLB front-end.  At most one may be given.
    """
    from repro.systems.factory import build_system

    if record_plane is not None and replay_plane is not None:
        raise ConfigurationError(
            "simulate() accepts record_plane or replay_plane, not both"
        )
    system = build_system(params)
    if record_plane is not None:
        system.attach_plane_recorder(record_plane)
    elif replay_plane is not None:
        system.attach_plane_replay(replay_plane)
    workload = InterleavedWorkload(programs, slice_refs=slice_refs)
    result = Simulator(system, workload).run(max_refs=max_refs)
    if record_plane is not None:
        record_plane.capture(
            system.clock.cycle_ps, result.stats.as_dict(), system.params.dram
        )
    if replay_plane is not None and system._plane_cursor != replay_plane.num_chunks:
        from repro.trace.filter import PlaneReplayError

        raise PlaneReplayError(
            f"workload drove {system._plane_cursor} chunks; the plane "
            f"recorded {replay_plane.num_chunks}"
        )
    return result
