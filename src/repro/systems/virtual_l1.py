"""RAMpage with virtually-indexed, virtually-tagged L1 caches.

Section 2.3 leaves a design point open: "it is possible in principle to
address the L1 cache virtually, in which case the TLB would only be
needed on a miss to the SRAM main memory ... This possibility is not
explored in this paper."  This module explores it.

With virtual L1s, a hit needs no translation at all -- the TLB (and its
miss handler) is consulted only on the L1 miss path, which removes the
dominant software cost of small SRAM pages (Figure 4's 60%-plus
overhead).  The classic virtual-cache hazards are handled the way a
single-address-space RAMpage OS would:

* **homonyms** (same vaddr, different process): L1 blocks are tagged
  with the process id (a pid-extended virtual block number), so no
  flushing on context switch;
* **stale translations**: replacing an SRAM page flushes the page's L1
  blocks *by virtual range* (the fault handler knows the victim's vpn),
  so no L1 line can outlive its page;
* **writebacks**: each L1 line carries its physical frame the way real
  virtual caches carry a physical tag for coherency, modelled by an
  SRAM page-table lookup off the critical path (no handler software is
  charged -- it is a hardware-assisted reverse lookup);
* **synonyms** (shared memory): out of scope, as in the paper (no
  sharing between the workload's processes).

The OS's own physically-addressed handler references are kept disjoint
from every process's virtual space with a reserved pid tag.

Only the RAMpage machine gets this option: a conventional hierarchy
maintains L1/L2 inclusion by *physical* block, which a virtual L1
cannot honour without the reverse maps this design avoids -- the
asymmetry is itself one of the paper's hardware-vs-software points.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.params import MachineParams
from repro.mem.inverted_page_table import FREE
from repro.systems.rampage import DRAM_TABLE_ENTRY_BYTES, RampageSystem
from repro.trace.record import IFETCH, WRITE, TraceChunk

#: Reserved "process id" tagging the OS's physically-addressed handler
#: references so they can share the virtually-indexed L1s without
#: colliding with any real process's address space.
OS_PID = 1 << 20


class VirtualL1RampageSystem(RampageSystem):
    """RAMpage variant translating only on L1 misses."""

    kind = "rampage"

    def __init__(self, params: MachineParams) -> None:
        if params.kind != "rampage":
            raise ConfigurationError("virtual-L1 machines are RAMpage-only")
        super().__init__(params)
        self._vblock_shift = params.vaddr_bits - self._l1_block_bits
        self._blocks_per_page_bits = self._page_bits - self._l1_block_bits

    # ------------------------------------------------------------------
    # Reference path: L1 first, translate only on a miss
    # ------------------------------------------------------------------

    def access(self, kind: int, vaddr: int, pid: int = 0) -> bool:
        self._current_pid = pid
        stats = self.stats
        vblock = (pid << self._vblock_shift) | (vaddr >> self._l1_block_bits)
        cache = self.l1i if kind == IFETCH else self.l1d
        slot = cache.slot_of(vblock)
        if slot != -1:
            if kind == IFETCH:
                stats.ifetches += 1
                stats.l1i_hits += 1
                self.lt.l1i += self.clock.tick_cycles(self._l1_hit_cycles)
            else:
                if kind == WRITE:
                    stats.writes += 1
                    cache.dirty[slot] = 1
                else:
                    stats.reads += 1
                stats.l1d_hits += 1
            return True
        # Miss: now (and only now) translate.
        gvpn = self.global_vpn(vaddr, pid)
        frame = self.tlb.lookup(gvpn)
        if frame is None:
            frame = self._translate(gvpn)
            if self._preempted:
                self._preempted = False
                return False
        if kind == IFETCH:
            stats.ifetches += 1
        elif kind == WRITE:
            stats.writes += 1
        else:
            stats.reads += 1
        paddr = (frame << self._page_bits) | (vaddr & self._page_mask)
        self._l1_miss(cache, vblock, paddr, kind)
        return True

    def run_chunk(self, chunk: TraceChunk) -> int:
        """Scalar loop; the virtual path has no inlined fast loop."""
        pid = chunk.pid
        kinds = chunk.kinds.tolist()
        addrs = chunk.addrs.tolist()
        for idx in range(len(kinds)):
            if not self.access(kinds[idx], addrs[idx], pid):
                return idx
        return len(kinds)

    # ------------------------------------------------------------------
    # Below-L1 plumbing in virtual-block space
    # ------------------------------------------------------------------

    def _l1_access(self, kind: int, paddr: int) -> None:
        """Handler references: physically addressed, OS-pid tagged."""
        vblock = (OS_PID << self._vblock_shift) | (paddr >> self._l1_block_bits)
        cache = self.l1i if kind == IFETCH else self.l1d
        slot = cache.slot_of(vblock)
        stats = self.stats
        if slot != -1:
            if kind == IFETCH:
                stats.l1i_hits += 1
                self.lt.l1i += self.clock.tick_cycles(self._l1_hit_cycles)
            else:
                stats.l1d_hits += 1
                if kind == WRITE:
                    cache.dirty[slot] = 1
            return
        self._l1_miss(cache, vblock, paddr, kind)

    def _l1_writeback_below(self, victim_vblock: int) -> None:
        pid = victim_vblock >> self._vblock_shift
        if pid == OS_PID:
            # OS blocks map identity within the pinned frames.
            paddr_block = victim_vblock & ((1 << self._vblock_shift) - 1)
            frame = paddr_block >> self._blocks_per_page_bits
            self.sram.mark_dirty(frame)
            return
        # The line's physical tag: resolved via the page table, off the
        # critical path (no handler software charged).
        gvpn = victim_vblock >> self._blocks_per_page_bits
        frame, _ = self.sram.translate(gvpn)
        if frame == FREE:
            raise ConfigurationError(
                "virtual L1 line outlived its SRAM page; flush logic broken"
            )
        self.sram.mark_dirty(frame)

    def _flush_victim_page(self, gvpn: int) -> bool:
        """Flush a dying page's L1 blocks by virtual range."""
        base_vblock = gvpn << self._blocks_per_page_bits
        return self._flush_l1_range(
            base_vblock << self._l1_block_bits, self._page_bytes
        )

    def _page_fault(self, gvpn: int) -> int:
        """Same fault protocol, but L1 flushes are by virtual page.

        The flush must cover the *unmapped* page (its lines are tagged
        with its vpn) before the frame is reused; soft-reclaimed pages
        keep their lines, which stay correct because the vpn->frame
        mapping is restored unchanged.
        """
        stats = self.stats
        stats.page_faults += 1
        pid = gvpn >> self._vpn_space_bits
        stats.faults_by_pid[pid] = stats.faults_by_pid.get(pid, 0) + 1
        outcome = self.sram.fault(gvpn)
        parts = self.handlers.page_fault_parts(gvpn, outcome.scanned)
        stats.fault_handler_refs += self.handlers.page_fault_ref_count(
            outcome.scanned
        )
        self._run_handler_parts(parts)
        if outcome.unmapped_vpn is not None:
            self.tlb.flush_vpn(outcome.unmapped_vpn)
        if outcome.soft:
            return outcome.frame
        frame = outcome.frame
        dirty_l1 = False
        if outcome.discarded_vpn is not None:
            # The destroyed page's lines must go even when it was clean
            # (they are tagged by vpn and would alias a later re-fault).
            dirty_l1 = self._flush_victim_page(outcome.discarded_vpn)
        # (On the standby path the clock victim parks with its frame and
        # lines intact; nothing to flush for it -- its mapping returns
        # unchanged on a soft fault.)
        if frame in self._pending:
            stall = self.clock.advance_to(self._pending.pop(frame))
            self.lt.dram += stall
            stats.dram_stall_ps += stall
        needs_writeback = outcome.writeback_vpn is not None or dirty_l1
        self._dram_sync(DRAM_TABLE_ENTRY_BYTES)
        if self.switch_on_miss:
            now = self.clock.now_ps
            if needs_writeback:
                stats.page_writebacks += 1
                self.channel.begin_background(now, self._page_bytes)
            ready = self.channel.begin_background(now, self._page_bytes)
            stats.dram_overlap_ps += ready - now
            self._prune_pending(now)
            self._pending[frame] = ready
            stats.switches_on_miss += 1
            self.context_switch(self._current_pid)
            self._preempted = True
        else:
            if needs_writeback:
                stats.page_writebacks += 1
                self._dram_sync(self._page_bytes)
            self._dram_sync(self._page_bytes)
        return frame
