"""RAMpage with virtually-indexed, virtually-tagged L1 caches.

Section 2.3 leaves a design point open: "it is possible in principle to
address the L1 cache virtually, in which case the TLB would only be
needed on a miss to the SRAM main memory ... This possibility is not
explored in this paper."  This module explores it.

With virtual L1s, a hit needs no translation at all -- the TLB (and its
miss handler) is consulted only on the L1 miss path, which removes the
dominant software cost of small SRAM pages (Figure 4's 60%-plus
overhead).  The classic virtual-cache hazards are handled the way a
single-address-space RAMpage OS would:

* **homonyms** (same vaddr, different process): L1 blocks are tagged
  with the process id (a pid-extended virtual block number), so no
  flushing on context switch;
* **stale translations**: replacing an SRAM page flushes the page's L1
  blocks *by virtual range* (the fault handler knows the victim's vpn),
  so no L1 line can outlive its page;
* **writebacks**: each L1 line carries its physical frame the way real
  virtual caches carry a physical tag for coherency, modelled by an
  SRAM page-table lookup off the critical path (no handler software is
  charged -- it is a hardware-assisted reverse lookup);
* **synonyms** (shared memory): out of scope, as in the paper (no
  sharing between the workload's processes).

The OS's own physically-addressed handler references are kept disjoint
from every process's virtual space with a reserved pid tag.

Only the RAMpage machine gets this option: a conventional hierarchy
maintains L1/L2 inclusion by *physical* block, which a virtual L1
cannot honour without the reverse maps this design avoids -- the
asymmetry is itself one of the paper's hardware-vs-software points.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError, SimulationError
from repro.core.params import MachineParams
from repro.mem.inverted_page_table import FREE
from repro.systems.rampage import DRAM_TABLE_ENTRY_BYTES, RampageSystem
from repro.trace.filter import (
    FLAG_FIRST_WRITE,
    FLAG_IFETCH,
    FLAG_L1_MISS,
    FLAG_PREEMPT,
    FLAG_TRANSLATE,
    PlaneReplayError,
)
from repro.trace.record import IFETCH, READ, WRITE, TraceChunk

#: Reserved "process id" tagging the OS's physically-addressed handler
#: references so they can share the virtually-indexed L1s without
#: colliding with any real process's address space.
OS_PID = 1 << 20


class VirtualL1RampageSystem(RampageSystem):
    """RAMpage variant translating only on L1 misses."""

    kind = "rampage"

    #: The virtual front-end has its own scalar plane loops below; the
    #: generic run-collapsed recorder does not apply (references are
    #: tagged in virtual-block space), but planes are still sound: one
    #: event per L1 miss, gap aggregates for the untranslated hits.
    _plane_scalar_front_end = True

    def __init__(self, params: MachineParams) -> None:
        if params.kind != "rampage":
            raise ConfigurationError("virtual-L1 machines are RAMpage-only")
        super().__init__(params)
        self._vblock_shift = params.vaddr_bits - self._l1_block_bits
        self._blocks_per_page_bits = self._page_bits - self._l1_block_bits

    # ------------------------------------------------------------------
    # Reference path: L1 first, translate only on a miss
    # ------------------------------------------------------------------

    def access(self, kind: int, vaddr: int, pid: int = 0) -> bool:
        self._current_pid = pid
        stats = self.stats
        vblock = (pid << self._vblock_shift) | (vaddr >> self._l1_block_bits)
        cache = self.l1i if kind == IFETCH else self.l1d
        slot = cache.slot_of(vblock)
        if slot != -1:
            if kind == IFETCH:
                stats.ifetches += 1
                stats.l1i_hits += 1
                self.lt.l1i += self.clock.tick_cycles(self._l1_hit_cycles)
            else:
                if kind == WRITE:
                    stats.writes += 1
                    cache.dirty[slot] = 1
                else:
                    stats.reads += 1
                stats.l1d_hits += 1
            return True
        # Miss: now (and only now) translate.
        gvpn = self.global_vpn(vaddr, pid)
        frame = self.tlb.lookup(gvpn)
        if frame is None:
            frame = self._translate(gvpn)
            if self._preempted:
                self._preempted = False
                return False
        if kind == IFETCH:
            stats.ifetches += 1
        elif kind == WRITE:
            stats.writes += 1
        else:
            stats.reads += 1
        paddr = (frame << self._page_bits) | (vaddr & self._page_mask)
        self._l1_miss(cache, vblock, paddr, kind)
        return True

    def run_chunk(self, chunk: TraceChunk) -> int:
        """Scalar loop; the virtual path has no inlined fast loop."""
        if self._plane_replay is not None:
            return self._run_chunk_filtered_virtual(chunk)
        if self._plane_sink is not None:
            return self._run_chunk_recording_virtual(chunk)
        pid = chunk.pid
        kinds = chunk.kinds.tolist()
        addrs = chunk.addrs.tolist()
        for idx in range(len(kinds)):
            if not self.access(kinds[idx], addrs[idx], pid):
                return idx
        return len(kinds)

    # ------------------------------------------------------------------
    # Two-phase sweeps: the virtual front-end's plane loops
    # ------------------------------------------------------------------

    def _run_chunk_recording_virtual(self, chunk: TraceChunk) -> int:
        """The scalar loop of :meth:`access`, plus plane recording taps.

        Identical control flow, state updates and timing arithmetic to
        the unrecorded loop (the recording run's results are cached as
        an ordinary cell).  Every L1 miss becomes one plane event
        (``length == 1``; ``bip`` stores the virtual block, ``offset``
        the in-page offset); L1 hits -- which never probe the TLB here
        -- melt into the gap aggregates, with 0->1 dirty transitions
        recorded per virtual block.  Instruction-hit cycles batch
        exactly like the run-collapsed recorder: flushed before every
        event, the only point where anything reads the clock.
        """
        recorder = self._plane_sink
        recorder.begin_chunk()
        pid = chunk.pid
        self._current_pid = pid
        kinds = chunk.kinds.tolist()
        addrs = chunk.addrs.tolist()
        n = len(kinds)
        vblock_shift = self._vblock_shift
        l1_bits = self._l1_block_bits
        page_bits = self._page_bits
        page_mask = self._page_mask
        hit_c = self._l1_hit_cycles
        l1i, l1d = self.l1i, self.l1d
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        g_if = g_rd = g_wr = 0
        g_dirty: list[int] = []
        consumed = n
        for idx in range(n):
            kind = kinds[idx]
            vaddr = addrs[idx]
            vblock = (pid << vblock_shift) | (vaddr >> l1_bits)
            cache = l1i if kind == IFETCH else l1d
            slot = cache.slot_of(vblock)
            if slot != -1:
                if kind == IFETCH:
                    ifetches += 1
                    i_hits += 1
                    icycles += hit_c
                    g_if += 1
                else:
                    if kind == WRITE:
                        writes += 1
                        if not cache.dirty[slot]:
                            cache.dirty[slot] = 1
                            g_dirty.append(vblock)
                        g_wr += 1
                    else:
                        reads += 1
                        g_rd += 1
                    d_hits += 1
                continue
            if icycles:
                lt.l1i += clock.tick_cycles(icycles)
                icycles = 0
            flags = FLAG_L1_MISS
            if kind == IFETCH:
                flags |= FLAG_IFETCH
            elif kind == WRITE:
                flags |= FLAG_FIRST_WRITE
            gvpn = self.global_vpn(vaddr, pid)
            frame = self.tlb.lookup(gvpn)
            if frame is None:
                flags |= FLAG_TRANSLATE
                frame = self._translate(gvpn)
                if self._preempted:
                    self._preempted = False
                    if self._dop_sink is None:
                        raise SimulationError(
                            "preemption during miss-plane recording of "
                            "a machine without a decision-op tape"
                        )
                    recorder.event(
                        gvpn, frame, 1, vaddr & page_mask, vblock,
                        1 if kind == WRITE else 0,
                        flags | FLAG_PREEMPT, g_if, g_rd, g_wr, g_dirty,
                    )
                    g_if = g_rd = g_wr = 0
                    g_dirty = []
                    consumed = idx
                    break
            if kind == IFETCH:
                ifetches += 1
            elif kind == WRITE:
                writes += 1
            else:
                reads += 1
            self._l1_miss(
                cache, vblock, (frame << page_bits) | (vaddr & page_mask), kind
            )
            recorder.event(
                gvpn, frame, 1, vaddr & page_mask, vblock,
                1 if kind == WRITE else 0,
                flags, g_if, g_rd, g_wr, g_dirty,
            )
            g_if = g_rd = g_wr = 0
            g_dirty = []
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        recorder.end_chunk(pid, n, consumed, g_if, g_rd, g_wr, g_dirty)
        return consumed

    def _run_chunk_filtered_virtual(self, chunk: TraceChunk) -> int:
        """Replay a chunk of the virtual front-end from its plane.

        Gap references are L1 hits that never reached the TLB: bulk
        counters, one batched instruction-cycle charge, and the
        recorded dirty transitions.  Events run live below the L1
        (translations, handlers, faults, the preemption protocol), so
        the back-end sees the exact reference sequence of the
        unfiltered run.
        """
        plane = self._plane_replay
        ordinal = self._plane_cursor
        self._plane_cursor = ordinal + 1
        view = plane.chunk_view(ordinal)
        if view.pid != chunk.pid or view.n_refs != len(chunk):
            raise PlaneReplayError(
                f"plane chunk {ordinal} is (pid={view.pid}, "
                f"n_refs={view.n_refs}); the workload drove "
                f"(pid={chunk.pid}, n_refs={len(chunk)})"
            )
        self._current_pid = chunk.pid
        page_bits = self._page_bits
        hit_c = self._l1_hit_cycles
        l1i, l1d = self.l1i, self.l1d
        d_mask = l1d.set_mask
        d_dirty = l1d.dirty
        clock = self.clock
        lt = self.lt
        stats = self.stats
        ifetches = reads = writes = 0
        i_hits = d_hits = 0
        icycles = 0
        tlb_hits = 0
        tlb_misses = 0
        ev_gvpn = view.ev_gvpn
        ev_frame = view.ev_frame
        ev_offset = view.ev_offset
        ev_bip = view.ev_bip
        ev_flags = view.ev_flags
        gap_ifetch = view.gap_ifetch
        gap_reads = view.gap_reads
        gap_writes = view.gap_writes
        gap_dirty = view.gap_dirty
        preempted = False
        for index in range(view.n_events + 1):
            # Gap references never probed the TLB (the virtual hit path
            # has no translation), so only L1 counters fold here.
            g_if = gap_ifetch[index]
            g_rd = gap_reads[index]
            g_wr = gap_writes[index]
            ifetches += g_if
            reads += g_rd
            writes += g_wr
            i_hits += g_if
            d_hits += g_rd + g_wr
            icycles += g_if * hit_c
            for vblock in gap_dirty[index]:
                d_dirty[vblock & d_mask] = 1
            if index == view.n_events:
                break
            flags = ev_flags[index]
            if not flags & FLAG_L1_MISS:
                raise PlaneReplayError(
                    "virtual-L1 plane event without an L1 miss flag"
                )
            vblock = ev_bip[index]
            cache = l1i if flags & FLAG_IFETCH else l1d
            if cache.slot_of(vblock) != -1:
                raise PlaneReplayError(
                    "live L1 hit where the plane recorded a miss"
                )
            if icycles:
                lt.l1i += clock.tick_cycles(icycles)
                icycles = 0
            gvpn = ev_gvpn[index]
            if flags & FLAG_TRANSLATE:
                tlb_misses += 1
                frame = self._translate(gvpn)
                if self._preempted:
                    self._preempted = False
                    if not flags & FLAG_PREEMPT:
                        raise PlaneReplayError(
                            "live preemption where the plane recorded none"
                        )
                    if index != view.n_events - 1:
                        raise PlaneReplayError(
                            "preempt event is not the plane chunk's last"
                        )
                    preempted = True
                    break
                if flags & FLAG_PREEMPT:
                    raise PlaneReplayError(
                        "no live preemption where the plane recorded one"
                    )
            else:
                if flags & FLAG_PREEMPT:
                    raise PlaneReplayError(
                        "preempt event without a translate flag"
                    )
                frame = ev_frame[index]
                tlb_hits += 1
            if flags & FLAG_IFETCH:
                kind = IFETCH
                ifetches += 1
            elif flags & FLAG_FIRST_WRITE:
                kind = WRITE
                writes += 1
            else:
                kind = READ
                reads += 1
            self._l1_miss(
                cache, vblock, (frame << page_bits) | ev_offset[index], kind
            )
        if icycles:
            lt.l1i += clock.tick_cycles(icycles)
        self.tlb.hits += tlb_hits
        self.tlb.misses += tlb_misses
        stats.ifetches += ifetches
        stats.reads += reads
        stats.writes += writes
        stats.l1i_hits += i_hits
        stats.l1d_hits += d_hits
        if not preempted and view.consumed != view.n_refs:
            raise PlaneReplayError(
                f"plane chunk consumed {view.consumed} of {view.n_refs} "
                "references but recorded no preemption"
            )
        return view.consumed

    # ------------------------------------------------------------------
    # Below-L1 plumbing in virtual-block space
    # ------------------------------------------------------------------

    def _l1_access(self, kind: int, paddr: int) -> None:
        """Handler references: physically addressed, OS-pid tagged."""
        vblock = (OS_PID << self._vblock_shift) | (paddr >> self._l1_block_bits)
        cache = self.l1i if kind == IFETCH else self.l1d
        slot = cache.slot_of(vblock)
        stats = self.stats
        if slot != -1:
            if kind == IFETCH:
                stats.l1i_hits += 1
                self.lt.l1i += self.clock.tick_cycles(self._l1_hit_cycles)
            else:
                stats.l1d_hits += 1
                if kind == WRITE:
                    cache.dirty[slot] = 1
            return
        self._l1_miss(cache, vblock, paddr, kind)

    def _l1_writeback_below(self, victim_vblock: int) -> None:
        pid = victim_vblock >> self._vblock_shift
        if pid == OS_PID:
            # OS blocks map identity within the pinned frames.
            paddr_block = victim_vblock & ((1 << self._vblock_shift) - 1)
            frame = paddr_block >> self._blocks_per_page_bits
            self.sram.mark_dirty(frame)
            return
        # The line's physical tag: resolved via the page table, off the
        # critical path (no handler software charged).
        gvpn = victim_vblock >> self._blocks_per_page_bits
        frame, _ = self.sram.translate(gvpn)
        if frame == FREE:
            raise ConfigurationError(
                "virtual L1 line outlived its SRAM page; flush logic broken"
            )
        self.sram.mark_dirty(frame)

    def _flush_victim_page(self, gvpn: int) -> bool:
        """Flush a dying page's L1 blocks by virtual range."""
        base_vblock = gvpn << self._blocks_per_page_bits
        return self._flush_l1_range(
            base_vblock << self._l1_block_bits, self._page_bytes
        )

    def _page_fault(self, gvpn: int) -> int:
        """Same fault protocol, but L1 flushes are by virtual page.

        The flush must cover the *unmapped* page (its lines are tagged
        with its vpn) before the frame is reused; soft-reclaimed pages
        keep their lines, which stay correct because the vpn->frame
        mapping is restored unchanged.
        """
        stats = self.stats
        stats.page_faults += 1
        pid = gvpn >> self._vpn_space_bits
        stats.faults_by_pid[pid] = stats.faults_by_pid.get(pid, 0) + 1
        outcome = self.sram.fault(gvpn)
        parts = self.handlers.page_fault_parts(gvpn, outcome.scanned)
        stats.fault_handler_refs += self.handlers.page_fault_ref_count(
            outcome.scanned
        )
        self._run_handler_parts(parts)
        if outcome.unmapped_vpn is not None:
            self.tlb.flush_vpn(outcome.unmapped_vpn)
        if outcome.soft:
            return outcome.frame
        frame = outcome.frame
        dirty_l1 = False
        if outcome.discarded_vpn is not None:
            # The destroyed page's lines must go even when it was clean
            # (they are tagged by vpn and would alias a later re-fault).
            dirty_l1 = self._flush_victim_page(outcome.discarded_vpn)
        # (On the standby path the clock victim parks with its frame and
        # lines intact; nothing to flush for it -- its mapping returns
        # unchanged on a soft fault.)
        if self._plane_shadow:
            ordinal = self._plane_shadow.pop(frame, None)
            if ordinal is not None:
                self._dop_sink.wait_op(ordinal, self.clock.cycles)
        if frame in self._pending:
            stall = self.clock.advance_to(self._pending.pop(frame))
            self.lt.dram += stall
            stats.dram_stall_ps += stall
        needs_writeback = outcome.writeback_vpn is not None or dirty_l1
        self._dram_sync(DRAM_TABLE_ENTRY_BYTES)
        if self.switch_on_miss:
            now = self.clock.now_ps
            sink = self._dop_sink
            if needs_writeback:
                stats.page_writebacks += 1
                self.channel.begin_background(now, self._page_bytes)
                if sink is not None:
                    sink.background_op(
                        self._page_bytes, self.clock.cycles, fill=False
                    )
            ready = self.channel.begin_background(now, self._page_bytes)
            if sink is not None:
                self._plane_shadow[frame] = sink.background_op(
                    self._page_bytes, self.clock.cycles, fill=True
                )
            stats.dram_overlap_ps += ready - now
            self._prune_pending(now)
            self._pending[frame] = ready
            stats.switches_on_miss += 1
            self.context_switch(self._current_pid)
            self._preempted = True
        else:
            if needs_writeback:
                stats.page_writebacks += 1
                self._dram_sync(self._page_bytes)
            self._dram_sync(self._page_bytes)
        return frame
