"""Three-Cs miss classification for the conventional L2.

RAMpage's performance case rests on removing *conflict* misses: "through
managing the lowest level of SRAM as a paged memory, RAMpage is able to
achieve full associativity without a hit penalty and the resulting
reduction in misses compensates for the extra time required for each
miss" (section 1).  This module quantifies exactly that, using Hill's
classic decomposition of the baseline L2's misses:

* **compulsory** -- the block was never referenced before (would miss
  even in an infinite cache),
* **capacity** -- a fully associative LRU cache of the same size would
  also miss,
* **conflict** -- only the real (limited-associativity) cache misses.

Implementation: :class:`ThreeCsProbe` shadows the real L2 with an
infinite first-touch set and a fully associative LRU model, classifying
each real miss at the moment it happens.  The probe attaches to a
:class:`~repro.systems.conventional.ConventionalSystem` subclass so the
L2 access stream is the genuine one (filtered through the L1s, polluted
by handler software).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.core.params import MachineParams
from repro.systems.conventional import ConventionalSystem
from repro.systems.simulator import Simulator
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import SyntheticProgram


@dataclass(frozen=True)
class ThreeCsResult:
    """Counts of the decomposed L2 misses."""

    accesses: int
    hits: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def misses(self) -> int:
        return self.compulsory + self.capacity + self.conflict

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def fraction(self, kind: str) -> float:
        """Share of all misses belonging to ``kind``."""
        if kind not in ("compulsory", "capacity", "conflict"):
            raise ConfigurationError(f"unknown miss class {kind!r}")
        return getattr(self, kind) / self.misses if self.misses else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "compulsory": self.compulsory,
            "capacity": self.capacity,
            "conflict": self.conflict,
            "miss_rate": self.miss_rate,
        }


class ThreeCsProbe:
    """Shadow models classifying one cache's miss stream."""

    __slots__ = ("_capacity_blocks", "_seen", "_lru", "accesses", "hits",
                 "compulsory", "capacity", "conflict")

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError("capacity_blocks must be positive")
        self._capacity_blocks = capacity_blocks
        self._seen: set[int] = set()
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.accesses = 0
        self.hits = 0
        self.compulsory = 0
        self.capacity = 0
        self.conflict = 0

    def observe(self, block: int, real_hit: bool) -> None:
        """Record one access to the real cache and classify its miss."""
        self.accesses += 1
        lru = self._lru
        lru_hit = block in lru
        if lru_hit:
            lru.move_to_end(block)
        else:
            lru[block] = None
            if len(lru) > self._capacity_blocks:
                lru.popitem(last=False)
        if real_hit:
            self.hits += 1
        elif block not in self._seen:
            self.compulsory += 1
        elif not lru_hit:
            self.capacity += 1
        else:
            self.conflict += 1
        self._seen.add(block)

    def result(self) -> ThreeCsResult:
        return ThreeCsResult(
            accesses=self.accesses,
            hits=self.hits,
            compulsory=self.compulsory,
            capacity=self.capacity,
            conflict=self.conflict,
        )


class _ProbedConventionalSystem(ConventionalSystem):
    """Conventional machine with a three-Cs probe on its L2."""

    def __init__(self, params: MachineParams) -> None:
        super().__init__(params)
        self.probe = ThreeCsProbe(params.l2.num_blocks)

    def _below_l1_fetch(self, paddr: int) -> None:
        l2_block = paddr >> self._l2_block_bits
        real_hit = self.l2.slot_of(l2_block) != -1
        self.probe.observe(l2_block, real_hit)
        super()._below_l1_fetch(paddr)


def classify_l2_misses(
    params: MachineParams,
    programs: Sequence[SyntheticProgram],
    slice_refs: int = 20_000,
) -> ThreeCsResult:
    """Run the workload and decompose the L2's misses.

    ``params`` must describe a conventional machine; the three-Cs
    question is about its L2 (RAMpage's SRAM level is already fully
    associative, which is the point of the comparison).
    """
    if params.kind != "conventional":
        raise ConfigurationError(
            "three-Cs classification applies to the conventional L2; "
            "RAMpage's SRAM main memory is fully associative by design"
        )
    system = _ProbedConventionalSystem(params)
    workload = InterleavedWorkload(programs, slice_refs=slice_refs)
    Simulator(system, workload).run()
    return system.probe.result()
