"""Result assembly and reporting.

Turns raw simulation results into the paper's tables and figures:

* :mod:`repro.analysis.efficiency` -- Table 1 (analytic bandwidth
  efficiency of Direct Rambus vs disk).
* :mod:`repro.analysis.runtime` -- run-time grids (Tables 3-5).
* :mod:`repro.analysis.fractions` -- per-level time fractions
  (Figures 2-3).
* :mod:`repro.analysis.overheads` -- software overhead ratios
  (Figure 4).
* :mod:`repro.analysis.relative` -- relative-slowdown series
  (Figure 5).
* :mod:`repro.analysis.report` -- plain-text table/figure rendering.
* :mod:`repro.analysis.figures_svg` -- SVG renderings of Figures 2-5.
* :mod:`repro.analysis.three_cs` -- compulsory/capacity/conflict miss
  decomposition of the conventional L2.
* :mod:`repro.analysis.characterize` -- workload footprint, working-set
  and reuse-distance profiling.
"""

from repro.analysis.characterize import (
    WorkloadProfile,
    characterize,
    reuse_distance_histogram,
)
from repro.analysis.efficiency import (
    disk_efficiency,
    rambus_efficiency,
    table1_rows,
)
from repro.analysis.figures_svg import write_figure_svgs
from repro.analysis.fractions import level_fraction_rows
from repro.analysis.overheads import overhead_rows
from repro.analysis.relative import relative_speed_rows
from repro.analysis.runtime import RunGrid, best_cell, speedup
from repro.analysis.three_cs import ThreeCsResult, classify_l2_misses

__all__ = [
    "WorkloadProfile",
    "characterize",
    "reuse_distance_histogram",
    "disk_efficiency",
    "rambus_efficiency",
    "table1_rows",
    "write_figure_svgs",
    "level_fraction_rows",
    "overhead_rows",
    "relative_speed_rows",
    "RunGrid",
    "best_cell",
    "speedup",
    "ThreeCsResult",
    "classify_l2_misses",
]
