"""Figures 2-3: fraction of run time per hierarchy level.

The paper plots, for each block/page size, the share of simulated run
time spent in L1i, L1d, L2 (or the SRAM main memory), and DRAM -- at a
200 MHz issue rate (Figure 2) and 4 GHz (Figure 3).  Two properties it
calls out, both of which the model reproduces structurally:

* "L1 data traffic is a very low fraction because hits are assumed to
  be fully pipelined; the 'L1d' time accounted for is purely that taken
  to maintain inclusion",
* the RAMpage system "is more tolerant of the increased DRAM latency"
  as the CPU is scaled up.
"""

from __future__ import annotations

from repro.analysis.runtime import RunGrid

LEVEL_ORDER = ("l1i", "l1d", "l2", "dram", "other")


def level_fraction_rows(grid: RunGrid, issue_rate_hz: int) -> list[dict[str, float]]:
    """One figure panel: per-size level fractions at one issue rate."""
    rows = []
    for record in grid.row(issue_rate_hz):
        fractions = record.level_fractions
        row: dict[str, float] = {"size_bytes": record.size_bytes}
        for level in LEVEL_ORDER:
            row[level] = fractions.get(level, 0.0)
        rows.append(row)
    return rows


def dram_fraction_series(grid: RunGrid, issue_rate_hz: int) -> dict[int, float]:
    """Size -> DRAM time fraction, the headline series of Figures 2-3."""
    return {
        record.size_bytes: record.level_fractions.get("dram", 0.0)
        for record in grid.row(issue_rate_hz)
    }
