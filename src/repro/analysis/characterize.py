"""Workload characterization.

The calibration story in ``docs/workload-model.md`` rests on measurable
properties of the reference streams: total footprint, working-set
growth, page-level locality and reuse.  This module computes them
directly from any chunk stream, so workload claims are checkable rather
than asserted -- and users bringing their own traces can characterise
them the same way before simulating.

All measures are exact except the reuse-distance profile, which uses
the standard set-based stack-distance algorithm over block granules
(exact but O(n log n)-ish via position maps; fine at analysis scales).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.errors import ConfigurationError
from repro.trace.record import IFETCH, TraceChunk


@dataclass
class WorkloadProfile:
    """Summary of one reference stream (single- or multi-process)."""

    refs: int = 0
    ifetches: int = 0
    footprint_bytes: int = 0
    distinct_pages: dict[int, int] = field(default_factory=dict)
    working_set_curve: list[tuple[int, int]] = field(default_factory=list)
    page_change_rate: dict[int, float] = field(default_factory=dict)

    @property
    def ifetch_fraction(self) -> float:
        return self.ifetches / self.refs if self.refs else 0.0

    def as_dict(self) -> dict[str, object]:
        return {
            "refs": self.refs,
            "ifetch_fraction": self.ifetch_fraction,
            "footprint_bytes": self.footprint_bytes,
            "distinct_pages": dict(self.distinct_pages),
            "working_set_curve": list(self.working_set_curve),
            "page_change_rate": dict(self.page_change_rate),
        }


def characterize(
    chunks: Iterable[TraceChunk],
    granule_bytes: int = 32,
    page_sizes: tuple[int, ...] = (128, 1024, 4096),
    curve_points: int = 16,
) -> WorkloadProfile:
    """Profile a chunk stream.

    * ``footprint_bytes`` -- distinct ``granule_bytes`` granules touched,
      times the granule size (the workload's total memory demand);
    * ``distinct_pages[p]`` -- distinct pages at page size ``p`` (what a
      TLB/page table must cover);
    * ``working_set_curve`` -- (refs consumed, footprint so far) at
      ``curve_points`` evenly spaced milestones (how fast memory demand
      grows -- the warm-up driver);
    * ``page_change_rate[p]`` -- fraction of consecutive same-process
      references that land on a *different* page at size ``p`` (a cheap
      upper-bound proxy for TLB pressure).
    """
    if granule_bytes <= 0 or (granule_bytes & (granule_bytes - 1)):
        raise ConfigurationError("granule_bytes must be a power of two")
    for page in page_sizes:
        if page <= 0 or (page & (page - 1)):
            raise ConfigurationError("page sizes must be powers of two")

    profile = WorkloadProfile()
    granule_shift = granule_bytes.bit_length() - 1
    page_shifts = {page: page.bit_length() - 1 for page in page_sizes}
    seen_granules: set[int] = set()
    seen_pages: dict[int, set[int]] = {page: set() for page in page_sizes}
    changes = {page: 0 for page in page_sizes}
    change_pairs = 0
    last_pid = None
    last_page = {page: -1 for page in page_sizes}

    chunk_list = list(chunks)
    total = sum(len(c) for c in chunk_list)
    if total == 0:
        return profile
    step = max(1, total // curve_points)
    next_milestone = step

    for chunk in chunk_list:
        pid_tag = chunk.pid << 48
        addrs = chunk.addrs.astype(np.int64)
        kinds = chunk.kinds
        profile.ifetches += int(np.count_nonzero(kinds == IFETCH))
        granules = (addrs >> granule_shift).tolist()
        same_process = last_pid == chunk.pid
        for page, shift in page_shifts.items():
            pages = (addrs >> shift).tolist()
            seen = seen_pages[page]
            prev = last_page[page] if same_process else -1
            flips = 0
            for p in pages:
                key = pid_tag | p
                seen.add(key)
                if p != prev:
                    if prev != -1:
                        flips += 1
                    prev = p
            changes[page] += flips
            last_page[page] = prev
        if same_process:
            change_pairs += len(chunk)
        else:
            change_pairs += max(0, len(chunk) - 1)
        for g in granules:
            seen_granules.add(pid_tag | g)
        profile.refs += len(chunk)
        last_pid = chunk.pid
        while profile.refs >= next_milestone:
            profile.working_set_curve.append(
                (next_milestone, len(seen_granules) * granule_bytes)
            )
            next_milestone += step

    profile.footprint_bytes = len(seen_granules) * granule_bytes
    profile.distinct_pages = {page: len(seen) for page, seen in seen_pages.items()}
    profile.page_change_rate = {
        page: (changes[page] / change_pairs if change_pairs else 0.0)
        for page in page_sizes
    }
    return profile


def reuse_distance_histogram(
    chunks: Iterable[TraceChunk],
    granule_bytes: int = 32,
    bucket_edges: tuple[int, ...] = (1, 8, 64, 512, 4096, 32768),
) -> dict[str, int]:
    """Stack-distance histogram over granules (single stream).

    Distance = number of distinct granules touched since the previous
    access to the same granule; cold first touches go to ``"cold"``.
    Buckets are labelled ``"<=N"`` by their upper edge plus ``">last"``.
    Exact LRU stack distances via an order-preserving position list --
    quadratic in distinct granules in the worst case, intended for
    analysis-scale streams (up to a few hundred thousand references).
    """
    if granule_bytes <= 0 or (granule_bytes & (granule_bytes - 1)):
        raise ConfigurationError("granule_bytes must be a power of two")
    if list(bucket_edges) != sorted(set(bucket_edges)):
        raise ConfigurationError("bucket_edges must be strictly increasing")
    shift = granule_bytes.bit_length() - 1
    stack: list[int] = []  # most recent last
    index: dict[int, int] = {}
    labels = [f"<={edge}" for edge in bucket_edges] + [f">{bucket_edges[-1]}"]
    histogram = {"cold": 0, **{label: 0 for label in labels}}
    for chunk in chunks:
        pid_tag = chunk.pid << 48
        for addr in (chunk.addrs.astype(np.int64) >> shift).tolist():
            key = pid_tag | addr
            pos = index.get(key)
            if pos is None:
                histogram["cold"] += 1
            else:
                distance = len(stack) - pos - 1
                for edge, label in zip(bucket_edges, labels):
                    if distance <= edge:
                        histogram[label] += 1
                        break
                else:
                    histogram[labels[-1]] += 1
                stack.pop(pos)
                for moved in stack[pos:]:
                    index[moved] -= 1
            index[key] = len(stack)
            stack.append(key)
    return histogram
