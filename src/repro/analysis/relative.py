"""Figure 5: relative speed of RAMpage (switch on miss) vs 2-way L2.

"The relative measure is n, where n means 1.n times slower than the
best time for each CPU speed."  For each issue rate the best time over
*both* hierarchies and all sizes is the reference; each cell is then
``time / best - 1``.
"""

from __future__ import annotations

from repro.analysis.runtime import RunGrid


def relative_speed_rows(
    grids: list[RunGrid], issue_rate_hz: int
) -> list[dict[str, object]]:
    """Per-size relative slowdowns against the per-rate best time."""
    best_ps = min(
        record.time_ps
        for grid in grids
        for record in grid.row(issue_rate_hz)
    )
    sizes = sorted({size for grid in grids for size in grid.sizes()})
    rows: list[dict[str, object]] = []
    for size in sizes:
        row: dict[str, object] = {"size_bytes": size}
        for grid in grids:
            if (issue_rate_hz, size) in grid:
                cell = grid.cell(issue_rate_hz, size)
                row[grid.label] = cell.time_ps / best_ps - 1.0
        rows.append(row)
    return rows


def relative_speed_series(
    grids: list[RunGrid], issue_rates: list[int]
) -> dict[str, dict[int, dict[int, float]]]:
    """Full Figure 5 data: label -> rate -> size -> slowdown."""
    series: dict[str, dict[int, dict[int, float]]] = {
        grid.label: {} for grid in grids
    }
    for rate in issue_rates:
        rows = relative_speed_rows(grids, rate)
        for row in rows:
            size = row["size_bytes"]
            for grid in grids:
                if grid.label in row:
                    series[grid.label].setdefault(rate, {})[size] = row[grid.label]
    return series
