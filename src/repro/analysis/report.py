"""Plain-text rendering of tables and figure data.

Every experiment renders through these helpers so the benchmark harness
and CLI produce consistent, diff-friendly output.
"""

from __future__ import annotations

from typing import Sequence


def format_rate(issue_rate_hz: int) -> str:
    """200_000_000 -> '200MHz', 4_000_000_000 -> '4GHz'."""
    if issue_rate_hz % 1_000_000_000 == 0:
        return f"{issue_rate_hz // 1_000_000_000}GHz"
    if issue_rate_hz % 1_000_000 == 0:
        return f"{issue_rate_hz // 1_000_000}MHz"
    return f"{issue_rate_hz}Hz"


def format_size(size_bytes: int) -> str:
    """128 -> '128', 4096 -> '4096' (paper uses raw byte columns)."""
    return str(size_bytes)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Monospace table with a title line and optional footnote."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [title]
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(note)
    return "\n".join(lines)


def render_bar_chart(
    title: str,
    series: dict[str, dict[int, float]],
    unit: str = "",
    width: int = 40,
) -> str:
    """ASCII bar chart: one group per x value, one bar per series.

    ``series`` maps label -> {x -> value}.  Used for the figure
    experiments so a terminal run still *shows* the figure shape.
    """
    xs = sorted({x for values in series.values() for x in values})
    peak = max(
        (abs(v) for values in series.values() for v in values.values()),
        default=0.0,
    )
    lines = [title]
    label_width = max((len(label) for label in series), default=0)
    for x in xs:
        lines.append(f"  {x}:")
        for label, values in series.items():
            if x not in values:
                continue
            value = values[x]
            bar = "#" * (round(width * abs(value) / peak) if peak else 0)
            lines.append(
                f"    {label.ljust(label_width)} {value:8.3f}{unit} |{bar}"
            )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
