"""Table 1: bandwidth efficiency of Direct Rambus versus disk.

Section 3.5 quantifies why DRAM can be treated as a paging device: like
disk, it transfers large units far more efficiently than small ones.
Table 1 reports "% bandwidth utilized" for a 2-byte-wide Direct Rambus
(no pipelining) and a disk with 10 ms latency and 40 MB/s transfer rate.

Efficiency is the ratio of ideal transfer time (bytes / peak bandwidth)
to actual time (latency + bytes / peak bandwidth).  The paper's worked
example is reproduced by :func:`transfer_cost_instructions`: "with a
1GHz issue rate, a 4Kbyte disk transfer costs about 10-million
instructions, whereas a 4Kbyte Direct Rambus transfer costs about 2,600
instructions".
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.params import DiskParams, RambusParams
from repro.mem.dram import disk_transfer_s, rambus_transfer_ps

#: Transfer sizes tabulated (bytes).  The OCR of Table 1 does not
#: preserve the original column set; these powers of two span the range
#: the surrounding text discusses (single references to 4 KB pages and
#: beyond).
TABLE1_SIZES = (2, 8, 32, 128, 512, 2048, 4096, 16384, 65536, 1 << 20)


def rambus_efficiency(nbytes: int, params: RambusParams | None = None) -> float:
    """Fraction of peak Direct Rambus bandwidth used by one transfer."""
    if params is None:
        params = RambusParams()
    if nbytes <= 0:
        raise ConfigurationError(f"nbytes must be positive, got {nbytes}")
    beats = -(-nbytes // params.bytes_per_beat)
    ideal_ps = beats * params.ps_per_beat
    actual_ps = rambus_transfer_ps(params, nbytes)
    return ideal_ps / actual_ps


def disk_efficiency(nbytes: int, params: DiskParams | None = None) -> float:
    """Fraction of peak disk bandwidth used by one transfer."""
    if params is None:
        params = DiskParams()
    if nbytes <= 0:
        raise ConfigurationError(f"nbytes must be positive, got {nbytes}")
    ideal_s = nbytes / params.bandwidth_bytes_per_s
    actual_s = disk_transfer_s(params, nbytes)
    return ideal_s / actual_s


def transfer_cost_instructions(
    nbytes: int,
    issue_rate_hz: int,
    device: str = "rambus",
    rambus: RambusParams | None = None,
    disk: DiskParams | None = None,
) -> float:
    """Instructions forgone during one blocking transfer.

    Reproduces the section 3.5 example (1 GHz issue rate, 4 KB):
    ~10 million instructions for disk, ~2,600 for Direct Rambus.
    """
    if device == "rambus":
        seconds = rambus_transfer_ps(rambus or RambusParams(), nbytes) * 1e-12
    elif device == "disk":
        seconds = disk_transfer_s(disk or DiskParams(), nbytes)
    else:
        raise ConfigurationError(f"unknown device {device!r}")
    return seconds * issue_rate_hz


def table1_rows(
    sizes: tuple[int, ...] = TABLE1_SIZES,
    rambus: RambusParams | None = None,
    disk: DiskParams | None = None,
) -> list[dict[str, float]]:
    """Table 1 as structured rows: size, rambus %, disk %."""
    rows = []
    for size in sizes:
        rows.append(
            {
                "bytes": size,
                "rambus_pct": 100.0 * rambus_efficiency(size, rambus),
                "disk_pct": 100.0 * disk_efficiency(size, disk),
            }
        )
    return rows
