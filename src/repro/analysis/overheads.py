"""Figure 4: TLB miss and page fault handling overheads.

"Overhead is the ratio of additional TLB miss and page fault handling
references to the total number of references in the benchmark trace
files.  The baseline hierarchy data is the same across all block
sizes."  Context-switch references are excluded, exactly as in
:attr:`repro.core.stats.SimStats.overhead_refs`.
"""

from __future__ import annotations

from repro.analysis.runtime import RunGrid


def overhead_rows(
    grids: list[RunGrid], issue_rate_hz: int
) -> list[dict[str, object]]:
    """Overhead ratio per size for each hierarchy, at one issue rate."""
    rows: list[dict[str, object]] = []
    sizes = sorted({size for grid in grids for size in grid.sizes()})
    for size in sizes:
        row: dict[str, object] = {"size_bytes": size}
        for grid in grids:
            if (issue_rate_hz, size) in grid:
                row[grid.label] = grid.cell(issue_rate_hz, size).overhead_ratio
        rows.append(row)
    return rows


def overhead_series(grid: RunGrid, issue_rate_hz: int) -> dict[int, float]:
    """Size -> overhead ratio for one hierarchy."""
    return {
        record.size_bytes: record.overhead_ratio
        for record in grid.row(issue_rate_hz)
    }
