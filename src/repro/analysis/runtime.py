"""Run-time grids: the structure behind Tables 3, 4 and 5.

A :class:`RunRecord` is the durable, JSON-friendly residue of one
simulation (what the experiment cache stores); a :class:`RunGrid`
organises records over the paper's two sweep axes -- instruction issue
rate and L2-block/SRAM-page size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.systems.base import SimulationResult


@dataclass(frozen=True)
class RunRecord:
    """One simulation, reduced to plain data."""

    label: str
    kind: str
    issue_rate_hz: int
    size_bytes: int
    switch_on_miss: bool
    seconds: float
    time_ps: int
    stats: dict = field(hash=False)

    @classmethod
    def from_result(cls, label: str, size_bytes: int, result: SimulationResult) -> "RunRecord":
        return cls(
            label=label,
            kind=result.params.kind,
            issue_rate_hz=result.params.issue_rate_hz,
            size_bytes=size_bytes,
            switch_on_miss=result.params.switch_on_miss,
            seconds=result.seconds,
            time_ps=result.time_ps,
            stats=result.stats.as_dict(),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            label=data["label"],
            kind=data["kind"],
            issue_rate_hz=data["issue_rate_hz"],
            size_bytes=data["size_bytes"],
            switch_on_miss=data["switch_on_miss"],
            seconds=data["seconds"],
            time_ps=data["time_ps"],
            stats=data["stats"],
        )

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "issue_rate_hz": self.issue_rate_hz,
            "size_bytes": self.size_bytes,
            "switch_on_miss": self.switch_on_miss,
            "seconds": self.seconds,
            "time_ps": self.time_ps,
            "stats": self.stats,
        }

    @property
    def level_times(self) -> dict[str, int]:
        return self.stats["level_times"]

    @property
    def level_fractions(self) -> dict[str, float]:
        total = sum(self.level_times.values())
        if total == 0:
            return {name: 0.0 for name in self.level_times}
        return {name: value / total for name, value in self.level_times.items()}

    @property
    def workload_refs(self) -> int:
        return self.stats["ifetches"] + self.stats["reads"] + self.stats["writes"]

    @property
    def overhead_refs(self) -> int:
        return self.stats["tlb_handler_refs"] + self.stats["fault_handler_refs"]

    @property
    def overhead_ratio(self) -> float:
        refs = self.workload_refs
        return self.overhead_refs / refs if refs else 0.0


class RunGrid:
    """Records indexed by (issue_rate_hz, size_bytes)."""

    def __init__(self, label: str) -> None:
        self.label = label
        self._cells: dict[tuple[int, int], RunRecord] = {}

    def add(self, record: RunRecord) -> None:
        key = (record.issue_rate_hz, record.size_bytes)
        if key in self._cells:
            raise ConfigurationError(f"duplicate grid cell {key} in {self.label!r}")
        self._cells[key] = record

    def cell(self, issue_rate_hz: int, size_bytes: int) -> RunRecord:
        try:
            return self._cells[(issue_rate_hz, size_bytes)]
        except KeyError:
            raise ConfigurationError(
                f"grid {self.label!r} has no cell "
                f"({issue_rate_hz} Hz, {size_bytes} B)"
            ) from None

    def issue_rates(self) -> list[int]:
        return sorted({rate for rate, _ in self._cells})

    def sizes(self) -> list[int]:
        return sorted({size for _, size in self._cells})

    def row(self, issue_rate_hz: int) -> list[RunRecord]:
        """All records at one issue rate, ordered by size."""
        return [
            self.cell(issue_rate_hz, size)
            for size in self.sizes()
            if (issue_rate_hz, size) in self._cells
        ]

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._cells


def best_cell(grid: RunGrid, issue_rate_hz: int) -> RunRecord:
    """Fastest record in one issue-rate row (the paper's "best time")."""
    row = grid.row(issue_rate_hz)
    if not row:
        raise ConfigurationError(
            f"grid {grid.label!r} empty at {issue_rate_hz} Hz"
        )
    return min(row, key=lambda record: record.time_ps)


def speedup(slower: RunRecord, faster: RunRecord) -> float:
    """Paper-style speedup: how much faster ``faster`` is, as a fraction.

    E.g. 0.26 means 26 % faster (the paper's "26% faster than the
    baseline hierarchy").
    """
    if faster.time_ps <= 0:
        raise ConfigurationError("cannot compute speedup against zero time")
    return slower.time_ps / faster.time_ps - 1.0
