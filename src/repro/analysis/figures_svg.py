"""Standalone SVG renderings of the paper's figures.

The text reports in :mod:`repro.analysis.report` are the canonical
("table view") output; this module adds publication-style SVG files:

* Figures 2-3 -- stacked bars of per-level time fractions per size, one
  panel per hierarchy (parts-of-a-whole composition),
* Figure 4 -- overhead-ratio lines per hierarchy over page size,
* Figure 5 -- relative-slowdown lines per hierarchy, one panel per
  issue rate.

Visual rules follow the dataviz method: a validated categorical palette
assigned in fixed slot order (validated for light and dark surfaces;
series identity is never color-alone -- every chart has a legend and
the marks carry native ``<title>`` hover tooltips), one y-axis per
chart, thin marks with 2px surface gaps between stacked segments, text
in text tokens rather than series colors, and a dark-mode variant
selected via ``prefers-color-scheme``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.report import format_rate
from repro.core.errors import ConfigurationError

# Validated categorical slots (reference palette; light / dark steps).
_SERIES_LIGHT = ("#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948")
_SERIES_DARK = ("#3987e5", "#199e70", "#c98500", "#008300", "#9085e9", "#e66767")

_STYLE = """
  .viz-root { --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
              --grid: #e4e3df; }
  @media (prefers-color-scheme: dark) {
    .viz-root { --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
                --grid: #3a3a38; }
  }
  .surface { fill: var(--surface); }
  text { font-family: system-ui, sans-serif; fill: var(--ink); }
  .muted { fill: var(--ink-2); }
  .grid { stroke: var(--grid); stroke-width: 1; }
  .axis { stroke: var(--ink-2); stroke-width: 1; }
"""

LEVEL_LABELS = {
    "l1i": "L1i",
    "l1d": "L1d",
    "l2": "L2",
    "sram": "SRAM",
    "dram": "DRAM",
    "other": "other",
}


def _series_css(n: int) -> str:
    rules = []
    for idx in range(n):
        rules.append(f".s{idx} {{ fill: {_SERIES_LIGHT[idx]}; stroke: {_SERIES_LIGHT[idx]}; }}")
    dark = "\n    ".join(
        f".s{idx} {{ fill: {_SERIES_DARK[idx]}; stroke: {_SERIES_DARK[idx]}; }}"
        for idx in range(n)
    )
    rules.append(f"@media (prefers-color-scheme: dark) {{\n    {dark}\n  }}")
    return "\n  ".join(rules)


def _svg(width: int, height: int, body: str, n_series: int) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" class="viz-root" '
        f'role="img">\n'
        f"<style>{_STYLE}\n  {_series_css(n_series)}</style>\n"
        f'<rect class="surface" x="0" y="0" width="{width}" height="{height}"/>\n'
        f"{body}\n</svg>\n"
    )


def _legend(items: list[tuple[int, str]], x: int, y: int) -> str:
    parts = []
    cursor = x
    for slot, label in items:
        parts.append(
            f'<rect class="s{slot}" x="{cursor}" y="{y - 9}" width="10" '
            f'height="10" rx="2"/>'
        )
        cursor += 14
        parts.append(
            f'<text x="{cursor}" y="{y}" font-size="11">{label}</text>'
        )
        cursor += 9 * len(label) // 1 + 14
    return "\n".join(parts)


def stacked_fraction_panel(
    rows: list[dict[str, float]],
    levels: tuple[str, ...],
    title: str,
    sram_label: str = "L2",
) -> str:
    """One Figure 2/3 panel: stacked time-fraction bars by size."""
    if not rows:
        raise ConfigurationError("no rows to plot")
    width, height = 560, 360
    left, top, right, bottom = 64, 56, 20, 64
    plot_w = width - left - right
    plot_h = height - top - bottom
    n = len(rows)
    slot_w = plot_w / n
    bar_w = min(44, slot_w * 0.55)
    body: list[str] = [
        f'<text x="{left}" y="24" font-size="14" font-weight="600">{title}</text>'
    ]
    # y grid at 0, .25, .5, .75, 1
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = top + plot_h * (1 - frac)
        body.append(f'<line class="grid" x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}"/>')
        body.append(
            f'<text class="muted" x="{left - 8}" y="{y + 4:.1f}" font-size="10" '
            f'text-anchor="end">{frac:.2f}</text>'
        )
    body.append(
        f'<text class="muted" x="16" y="{top + plot_h / 2:.0f}" font-size="11" '
        f'transform="rotate(-90 16 {top + plot_h / 2:.0f})" '
        f'text-anchor="middle">fraction of run time</text>'
    )
    for col, row in enumerate(rows):
        x = left + slot_w * col + (slot_w - bar_w) / 2
        y_cursor = top + plot_h
        for slot, level in enumerate(levels):
            value = float(row.get(level, 0.0))
            seg_h = plot_h * value
            if seg_h <= 0:
                continue
            y_cursor -= seg_h
            label = LEVEL_LABELS.get(level, level)
            if level == "l2":
                label = sram_label
            gap_h = max(0.0, seg_h - 2)  # 2px surface gap between segments
            body.append(
                f'<rect class="s{slot}" x="{x:.1f}" y="{y_cursor + 1:.1f}" '
                f'width="{bar_w:.1f}" height="{gap_h:.1f}" rx="2">'
                f"<title>{row['size_bytes']}B {label}: {value:.3f}</title></rect>"
            )
            # Direct labels on segments tall enough to hold them.
            if seg_h > 26 and value >= 0.08:
                body.append(
                    f'<text x="{x + bar_w / 2:.1f}" y="{y_cursor + seg_h / 2 + 4:.1f}" '
                    f'font-size="10" text-anchor="middle">{value:.2f}</text>'
                )
        body.append(
            f'<text class="muted" x="{x + bar_w / 2:.1f}" '
            f'y="{top + plot_h + 16}" font-size="11" '
            f'text-anchor="middle">{row["size_bytes"]}</text>'
        )
    body.append(
        f'<text class="muted" x="{left + plot_w / 2:.0f}" '
        f'y="{top + plot_h + 34}" font-size="11" '
        f'text-anchor="middle">block / page size (bytes)</text>'
    )
    legend_items = []
    for slot, level in enumerate(levels):
        label = sram_label if level == "l2" else LEVEL_LABELS.get(level, level)
        legend_items.append((slot, label))
    body.append(_legend(legend_items, left, height - 12))
    return _svg(width, height, "\n".join(body), n_series=len(levels))


def line_chart(
    series: dict[str, dict[int, float]],
    title: str,
    y_label: str,
    x_label: str = "block / page size (bytes)",
) -> str:
    """Multi-series line chart over ordered sizes (Figures 4-5)."""
    if not series:
        raise ConfigurationError("no series to plot")
    xs = sorted({x for values in series.values() for x in values})
    if not xs:
        raise ConfigurationError("series contain no points")
    y_max = max(
        (v for values in series.values() for v in values.values()), default=1.0
    )
    y_max = max(y_max, 1e-9) * 1.08
    width, height = 560, 340
    left, top, right, bottom = 64, 56, 20, 64
    plot_w = width - left - right
    plot_h = height - top - bottom

    def x_of(x: int) -> float:
        return left + plot_w * xs.index(x) / max(1, len(xs) - 1)

    def y_of(v: float) -> float:
        return top + plot_h * (1 - v / y_max)

    body: list[str] = [
        f'<text x="{left}" y="24" font-size="14" font-weight="600">{title}</text>'
    ]
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        value = y_max * frac
        y = y_of(value)
        body.append(
            f'<line class="grid" x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}"/>'
        )
        body.append(
            f'<text class="muted" x="{left - 8}" y="{y + 4:.1f}" font-size="10" '
            f'text-anchor="end">{value:.2f}</text>'
        )
    for x in xs:
        body.append(
            f'<text class="muted" x="{x_of(x):.1f}" y="{top + plot_h + 16}" '
            f'font-size="11" text-anchor="middle">{x}</text>'
        )
    body.append(
        f'<text class="muted" x="{left + plot_w / 2:.0f}" y="{top + plot_h + 34}" '
        f'font-size="11" text-anchor="middle">{x_label}</text>'
    )
    body.append(
        f'<text class="muted" x="16" y="{top + plot_h / 2:.0f}" font-size="11" '
        f'transform="rotate(-90 16 {top + plot_h / 2:.0f})" '
        f'text-anchor="middle">{y_label}</text>'
    )
    for slot, (label, values) in enumerate(series.items()):
        points = [(x, values[x]) for x in xs if x in values]
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{x_of(x):.1f},{y_of(v):.1f}"
            for i, (x, v) in enumerate(points)
        )
        body.append(
            f'<path class="s{slot}" d="{path}" fill="none" stroke-width="2"/>'
        )
        for x, v in points:
            body.append(
                f'<circle class="s{slot}" cx="{x_of(x):.1f}" cy="{y_of(v):.1f}" '
                f'r="4"><title>{label} @{x}B: {v:.3f}</title></circle>'
            )
        # Direct label at the line's last point.
        last_x, last_v = points[-1]
        body.append(
            f'<text x="{x_of(last_x) - 6:.1f}" y="{y_of(last_v) - 8:.1f}" '
            f'font-size="10" text-anchor="end">{label}</text>'
        )
    body.append(
        _legend(list(enumerate(series)), left, height - 12)
    )
    return _svg(width, height, "\n".join(body), n_series=len(series))


#: Grid labels Figures 2-5 draw from, in rendering order.
FIGURE_GRID_LABELS = ("baseline", "rampage", "rampage_som", "twoway")

#: Stacked-panel level order for the Figure 2/3 time-fraction bars.
FIGURE_LEVELS = ("l1i", "l1d", "l2", "dram", "other")


def figure23_panel(grid, issue_rate_hz: int, fig_name: str, grid_label: str) -> str:
    """One Figure 2/3 panel drawn from an in-memory grid of records."""
    from repro.analysis.fractions import level_fraction_rows

    sram_label = "SRAM" if grid_label == "rampage" else "L2"
    rows = level_fraction_rows(grid, issue_rate_hz)
    return stacked_fraction_panel(
        rows,
        FIGURE_LEVELS,
        title=f"{fig_name}: {grid_label}, {format_rate(issue_rate_hz)}",
        sram_label=sram_label,
    )


def figure4_chart(grids, issue_rate_hz: int) -> str:
    """Figure 4: overhead-ratio lines from in-memory grids of records."""
    from repro.analysis.overheads import overhead_series

    overhead = {
        label: overhead_series(grids[label], issue_rate_hz)
        for label in ("baseline", "rampage")
    }
    return line_chart(
        overhead,
        title=f"figure4: handler overhead, {format_rate(issue_rate_hz)}",
        y_label="handler refs / workload refs",
    )


def figure5_chart(grids, issue_rate_hz: int) -> str:
    """One Figure 5 panel (relative slowdowns) for one issue rate."""
    from repro.analysis.relative import relative_speed_rows

    pair = [grids["rampage_som"], grids["twoway"]]
    rows = relative_speed_rows(pair, issue_rate_hz)
    series: dict[str, dict[int, float]] = {"rampage_som": {}, "twoway": {}}
    for row in rows:
        for label in series:
            if label in row:
                series[label][row["size_bytes"]] = row[label]
    return line_chart(
        series,
        title=f"figure5: slowdown vs best, {format_rate(issue_rate_hz)}",
        y_label="n (1.n x slower than best)",
    )


def render_figure_svgs(grids, config) -> dict[str, str]:
    """Figures 2-5 rendered purely from in-memory record grids.

    ``grids`` maps each :data:`FIGURE_GRID_LABELS` label to a
    :class:`~repro.analysis.runtime.RunGrid` (however it was obtained:
    a live runner, the run-record cache, or HTTP-fetched records);
    nothing here triggers a simulation.  Returns ``{filename: svg
    text}`` in the canonical file order.
    """
    svgs: dict[str, str] = {}
    for fig_name, rate in (
        ("figure2", config.slow_rate),
        ("figure3", config.fast_rate),
    ):
        for grid_label in ("baseline", "rampage"):
            svgs[f"{fig_name}_{grid_label}.svg"] = figure23_panel(
                grids[grid_label], rate, fig_name, grid_label
            )
    svgs["figure4.svg"] = figure4_chart(grids, config.slow_rate)
    for rate in config.issue_rates:
        svgs[f"figure5_{format_rate(rate)}.svg"] = figure5_chart(grids, rate)
    return svgs


def write_figure_svgs(runner, out_dir: str | Path) -> list[Path]:
    """Render Figures 2-5 from a runner's cached grids; returns paths.

    The runner computes (or loads from cache) the four figure grids;
    rendering itself goes through :func:`render_figure_svgs`, which
    only sees in-memory records -- the same code path the reports
    subsystem serves over HTTP.
    """
    grids = {label: runner.grid(label) for label in FIGURE_GRID_LABELS}
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, svg in render_figure_svgs(grids, runner.config).items():
        path = out_dir / name
        path.write_text(svg, encoding="utf-8")
        written.append(path)
    return written
