"""The sweep service daemon: a stdlib-only asyncio HTTP server.

``rampage-sim serve`` turns the experiment engine into a long-running
service: clients submit sweeps as durable jobs, stream progress over
Server-Sent Events, and fetch run records that are **byte-identical**
to what the serial :class:`~repro.experiments.runner.Runner` writes to
the cache -- the result endpoints serve the cache files themselves.

Endpoints (all JSON unless noted)::

    GET  /healthz                  liveness + admission-queue state
    GET  /dashboard                live HTML dashboard (docs/reports.md)
    GET  /v1/jobs                  all jobs, submission order
    POST /v1/jobs                  submit a sweep (idempotent)
    GET  /v1/jobs/<id>             one job's status and counters
    GET  /v1/jobs/<id>/events      SSE progress stream
    GET  /v1/jobs/<id>/records     per-cell record manifest
    GET  /v1/records/<key>         raw cache file bytes for one cell (ETag)
    GET  /v1/reports               report + format index
    GET  /v1/reports/<name>        report render; ?format=svg|html|json|md|csv
    GET  /v1/bench                 throughput trend + cache summary

Submission semantics:

* ``201`` -- a new job was journalled and queued.
* ``200`` -- the job already exists (same cells, same key); its current
  state is returned.  Submitting is always safe to retry.
* ``429`` + ``Retry-After`` -- the bounded admission queue is full.
* ``400`` -- malformed spec (unknown labels, bad numbers).

On ``SIGTERM``/``SIGINT`` the daemon drains gracefully: the listener
closes, the in-flight job finishes and is journalled, queued jobs stay
``queued`` in the journal, and the next start resumes them.  A
``SIGKILL`` is also survivable -- that is the journal's job, not the
signal handler's.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection:
close``, no TLS): the service fronts a simulation cache on a trusted
network, and the no-new-dependencies rule rules out a web framework.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import json
import math
import queue
import re
import signal
import threading
from dataclasses import replace
from pathlib import Path
from urllib.parse import parse_qs

from repro.core.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.reports import (
    CONTENT_TYPES,
    DASHBOARD_HTML,
    FORMATS,
    bench_status,
    build_report,
    cache_status,
    export_report,
    report_names,
)
from repro.service.jobs import Job, JobSpec, JobStore, plan_cells
from repro.service.scheduler import BackpressureError, SweepScheduler

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8337

#: Subdirectory of the cache directory holding service state (journal).
SERVICE_DIRNAME = "service"

#: Cache keys and job ids are short hex digests; anything else is a 400
#: (and, incidentally, path traversal never reaches the filesystem).
_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: How often an idle SSE stream emits a keep-alive comment (seconds).
SSE_KEEPALIVE_S = 2.0


def _record_etag(blob: bytes) -> str:
    """The validator for one record file: its envelope checksum.

    The envelope already carries a SHA-256 over the record payload, so
    reuse it (stable across cache relocations).  A file that predates
    the envelope -- or is mid-quarantine -- falls back to a digest of
    the raw bytes, which is still a correct validator.
    """
    try:
        envelope = json.loads(blob.decode("utf-8"))
        checksum = envelope.get("checksum")
        if isinstance(checksum, str) and checksum:
            return checksum
    except (json.JSONDecodeError, UnicodeDecodeError):
        pass
    return hashlib.sha256(blob).hexdigest()


def _etag_matches(if_none_match: str, etag: str) -> bool:
    """RFC 9110 ``If-None-Match``: comma list, ``W/`` prefixes, ``*``."""
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if not candidate:
            continue
        if candidate == "*":
            return True
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def _report_config(base: ExperimentConfig, query: dict[str, str]) -> ExperimentConfig:
    """Apply a report request's workload-knob query params over ``base``.

    The same knobs a job spec carries; values accept scientific
    notation (``rates=2e8``) because that is how humans type 200 MHz.
    Raises ``ValueError``/``ConfigurationError`` on malformed values --
    the route maps both to a 400.
    """
    overrides: dict = {}
    if "scale" in query:
        overrides["scale"] = float(query["scale"])
    if "slice_refs" in query:
        overrides["slice_refs"] = int(float(query["slice_refs"]))
    if "seed" in query:
        overrides["seed"] = int(float(query["seed"]))
    for name in ("rates", "sizes"):
        if name in query:
            values = tuple(
                int(float(token))
                for token in query[name].split(",")
                if token.strip()
            )
            overrides["issue_rates" if name == "rates" else "sizes"] = values
    return replace(base, **overrides) if overrides else base


class SweepService:
    """Binds the job store, the scheduler and the HTTP front end."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: int | None = None,
        queue_limit: int = 8,
        state_dir: str | Path | None = None,
        fabric: int = 0,
        bench_path: str | Path | None = None,
    ) -> None:
        self.config = config if config is not None else ExperimentConfig.from_env()
        if self.config.cache_dir is None:
            raise ConfigurationError(
                "the sweep service requires a cache directory "
                "(set REPRO_CACHE_DIR or pass a config with cache_dir)"
            )
        self.host = host
        self.port = port
        state = (
            Path(state_dir)
            if state_dir is not None
            else Path(self.config.cache_dir) / SERVICE_DIRNAME
        )
        self.bench_path = (
            Path(bench_path)
            if bench_path is not None
            else Path.cwd() / "BENCH_throughput.json"
        )
        self.store = JobStore(state)
        self.scheduler = SweepScheduler(
            self.store,
            self.config,
            workers=workers,
            queue_limit=queue_limit,
            fabric=fabric,
        )
        self._server: asyncio.base_events.Server | None = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Recover journalled jobs, start the worker, bind the socket."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Resolve the actual port for ``--port 0`` (tests, smoke jobs).
        for sock in self._server.sockets:
            self.port = sock.getsockname()[1]
            break

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish the running job."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.stop)

    async def run(self, *, ready=None) -> None:
        """Start, announce, then serve until SIGTERM/SIGINT drains us."""
        await self.start()
        if ready is not None:
            ready(self)
        drain = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, drain.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop; Ctrl-C still raises KeyboardInterrupt
        try:
            await drain.wait()
        finally:
            await self.shutdown()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, headers, body = await self._read_request(reader)
            except (ValueError, asyncio.IncompleteReadError, UnicodeDecodeError):
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            path, _, query_string = target.partition("?")
            query = {
                name: values[-1]
                for name, values in parse_qs(
                    query_string, keep_blank_values=True
                ).items()
            }
            try:
                await self._route(method, path, query, headers, body, writer)
            except ConnectionError:
                pass  # client went away mid-response
            except Exception as exc:  # route bugs become a 500, not a hang
                try:
                    await self._respond(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                except ConnectionError:
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError(f"bad request line: {request_line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)
        return method.upper(), target, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | list | None = None,
        *,
        raw: bytes | None = None,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = raw
        if body is None:
            body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        headers: dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(
                writer,
                200,
                {
                    "status": "draining" if self._closing else "ok",
                    "admission": self.scheduler.admission_state(),
                    "cache_dir": str(self.config.cache_dir),
                },
            )
            return
        if path == "/v1/jobs":
            if method == "GET":
                await self._respond(
                    writer, 200, [job.as_dict() for job in self.store.jobs()]
                )
            elif method == "POST":
                await self._submit(body, writer)
            else:
                await self._respond(writer, 405, {"error": "GET or POST"})
            return
        match = re.match(r"^/v1/jobs/([^/]+)(/events|/records)?$", path)
        if match:
            job_id, suffix = match.group(1), match.group(2)
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET only"})
                return
            if not _KEY_RE.match(job_id):
                await self._respond(writer, 400, {"error": "invalid job id"})
                return
            job = self.store.get(job_id)
            if job is None:
                await self._respond(writer, 404, {"error": f"no job {job_id}"})
                return
            if suffix is None:
                await self._respond(writer, 200, job.as_dict())
            elif suffix == "/events":
                await self._stream_events(job, writer)
            else:
                await self._records_manifest(job, writer)
            return
        match = re.match(r"^/v1/records/([^/]+)$", path)
        if match:
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET only"})
                return
            await self._serve_record(match.group(1), headers, writer)
            return
        if path == "/dashboard":
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET only"})
                return
            await self._respond(
                writer,
                200,
                raw=DASHBOARD_HTML.encode("utf-8"),
                content_type="text/html; charset=utf-8",
            )
            return
        if path == "/v1/bench":
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET only"})
                return
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                None,
                lambda: {
                    "bench": bench_status(self.bench_path),
                    "cache": cache_status(self.config.cache_dir),
                },
            )
            await self._respond(writer, 200, payload)
            return
        if path == "/v1/reports":
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET only"})
                return
            await self._respond(
                writer,
                200,
                {"reports": report_names(), "formats": list(FORMATS)},
            )
            return
        match = re.match(r"^/v1/reports/([^/]+)$", path)
        if match:
            if method != "GET":
                await self._respond(writer, 405, {"error": "GET only"})
                return
            await self._serve_report(match.group(1), query, writer)
            return
        await self._respond(writer, 404, {"error": f"no route for {path}"})

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await self._respond(writer, 400, {"error": f"bad JSON body: {exc}"})
            return
        loop = asyncio.get_running_loop()
        try:
            # Planning enumerates grids; keep it off the event loop.
            spec = JobSpec.from_request(payload, self.config)
            cells = await loop.run_in_executor(
                None, functools.partial(plan_cells, spec, self.config)
            )
            preview = self.scheduler.dedup_preview(cells)
            job, created = await loop.run_in_executor(
                None, functools.partial(self.scheduler.submit, spec)
            )
        except ConfigurationError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        except BackpressureError as exc:
            await self._respond(
                writer,
                429,
                {"error": str(exc), "retry_after_s": exc.retry_after},
                # Ceil, never truncate: a 0.5 s hint must not become
                # "Retry-After: 0" and invite an instant hot retry.
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))
                },
            )
            return
        await self._respond(
            writer,
            201 if created else 200,
            {**job.as_dict(), "created": created, "admission": preview},
        )

    async def _records_manifest(
        self, job: Job, writer: asyncio.StreamWriter
    ) -> None:
        records = []
        for cell in job.cells:
            path = self.scheduler.record_path(cell["key"])
            records.append(
                {**cell, "present": bool(path is not None and path.exists())}
            )
        await self._respond(
            writer,
            200,
            {"job": job.id, "status": job.status, "records": records},
        )

    async def _serve_record(
        self, key: str, headers: dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        if not _KEY_RE.match(key):
            await self._respond(writer, 400, {"error": "invalid record key"})
            return
        path = self.scheduler.record_path(key)
        if path is None or not path.exists():
            await self._respond(writer, 404, {"error": f"no record {key}"})
            return
        # The raw cache file, byte for byte -- the envelope checksum the
        # client verifies is the one the runner wrote.  That checksum
        # also makes a natural validator: the ETag is the envelope's
        # record checksum, so pollers can revalidate with
        # ``If-None-Match`` instead of refetching record bytes.
        blob = path.read_bytes()
        etag = f'"{_record_etag(blob)}"'
        if _etag_matches(headers.get("if-none-match", ""), etag):
            await self._respond(
                writer, 304, raw=b"", extra_headers={"ETag": etag}
            )
            return
        await self._respond(
            writer,
            200,
            raw=blob,
            content_type="application/json",
            extra_headers={"ETag": etag},
        )

    async def _serve_report(
        self, name: str, query: dict[str, str], writer: asyncio.StreamWriter
    ) -> None:
        """Render one report from cached records -- never simulates.

        ``?format=`` picks the export (default ``json``); the workload
        knobs (``scale``, ``slice_refs``, ``seed``, ``rates``,
        ``sizes``) default to the daemon's configuration, so a report
        fetched right after a default-knob job sees that job's cells.
        ``?min_complete=`` turns an under-populated report into a 409
        carrying the completeness payload instead of a render.
        """
        fmt = query.get("format", "json")
        if fmt not in CONTENT_TYPES:
            await self._respond(
                writer,
                400,
                {"error": f"unknown format {fmt!r}; known: {list(FORMATS)}"},
            )
            return
        try:
            config = _report_config(self.config, query)
            min_complete = float(query.get("min_complete", "0") or "0")
        except (ValueError, ConfigurationError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        loop = asyncio.get_running_loop()
        try:
            # Key derivation + cache reads; keep them off the event loop.
            report = await loop.run_in_executor(
                None, functools.partial(build_report, name, config)
            )
        except ConfigurationError as exc:
            await self._respond(writer, 404, {"error": str(exc)})
            return
        if report.completeness < min_complete:
            await self._respond(
                writer,
                409,
                {
                    "error": (
                        f"report {name!r} is {report.completeness:.3f} "
                        f"complete, below min_complete={min_complete}"
                    ),
                    **report.completeness_payload(),
                },
            )
            return
        body = await loop.run_in_executor(
            None, functools.partial(export_report, report, fmt)
        )
        await self._respond(
            writer, 200, raw=body, content_type=CONTENT_TYPES[fmt]
        )

    async def _stream_events(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """SSE: snapshot first, then live progress until terminal.

        Events between subscription and the snapshot can be delivered
        twice; consumers key on ``done``/``key`` so replays are benign
        (documented at-least-once semantics).
        """
        channel = self.scheduler.subscribe(job.id)
        loop = asyncio.get_running_loop()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            await self._send_event(writer, "job", job.as_dict())
            current = self.store.get(job.id)
            while current is not None and not current.terminal:
                if self._closing:
                    break
                try:
                    payload = await loop.run_in_executor(
                        None,
                        functools.partial(
                            channel.get, timeout=SSE_KEEPALIVE_S
                        ),
                    )
                except queue.Empty:
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    current = self.store.get(job.id)
                    continue
                await self._send_event(
                    writer, str(payload.get("event", "progress")), payload
                )
                if payload.get("event") in ("job_completed", "job_failed"):
                    return
                current = self.store.get(job.id)
            final = self.store.get(job.id)
            if final is not None and final.terminal:
                name = "job_completed" if final.status == "completed" else "job_failed"
                await self._send_event(writer, name, final.as_dict())
        finally:
            self.scheduler.unsubscribe(job.id, channel)

    @staticmethod
    async def _send_event(
        writer: asyncio.StreamWriter, name: str, payload: dict
    ) -> None:
        blob = json.dumps(payload)
        writer.write(f"event: {name}\ndata: {blob}\n\n".encode("utf-8"))
        await writer.drain()


class ServiceThread:
    """Run a :class:`SweepService` on a background event loop.

    The harness tests and the CI smoke tool use this to stand up a real
    HTTP daemon inside one process: ``start()`` returns once the socket
    is bound (resolving ``port=0`` to the real port), ``stop()`` drains
    and joins.  Production deployments run ``rampage-sim serve``
    instead.
    """

    def __init__(self, service: SweepService) -> None:
        self.service = service
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self, timeout: float = 10.0) -> str:
        started = threading.Event()
        failure: list[BaseException] = []

        def runloop() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.service.start())
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                started.set()
                return
            started.set()
            loop.run_forever()

        self._thread = threading.Thread(
            target=runloop, name="sweep-service", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise TimeoutError("sweep service failed to start in time")
        if failure:
            raise failure[0]
        return self.service.base_url

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)


def serve(
    config: ExperimentConfig | None = None,
    *,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int | None = None,
    queue_limit: int = 8,
    state_dir: str | Path | None = None,
    fabric: int = 0,
    ready=None,
) -> None:
    """Blocking entry point used by ``rampage-sim serve``."""
    service = SweepService(
        config,
        host=host,
        port=port,
        workers=workers,
        queue_limit=queue_limit,
        state_dir=state_dir,
        fabric=fabric,
    )
    try:
        asyncio.run(service.run(ready=ready))
    except KeyboardInterrupt:
        pass
