"""Scale-out sweep fabric: lease-based multi-process sweep workers.

The service's journal (:mod:`repro.service.jobs`) doubles as a work
ledger: ``rampage-job/2`` adds ``lease``/``release`` ops so *worker
processes* can claim work directly from the journal instead of routing
everything through the daemon's single scheduler thread.  A worker:

1. :meth:`~repro.service.jobs.JobStore.tail`-s the shared journal to
   see jobs and other workers' progress,
2. plans the job's cells into deterministic **work groups** -- one per
   miss-plane group (so whole-group vectorized re-pricing stays intact
   across the process boundary), one per ungrouped cell,
3. leases a group (``flock``-arbitrated, expiry-carrying), executes it
   through the ordinary serial :class:`~repro.experiments.runner.Runner`
   (records land in the sharded run-record cache with the same atomic
   commits, so results are byte-identical to a serial run), journals
   each finished cell, releases the lease,
4. marks the job completed once every cell key is journalled done.

Crash safety falls out of the lease expiry: a worker killed mid-group
simply stops renewing, the lease lapses, and any peer reclaims the
group -- finished cells are cache hits, the interrupted cell re-runs
to the identical bytes.

``python -m repro.service.fabric --state-dir ... --cache-dir ...``
runs one worker; the daemon (``rampage-sim serve --fabric N``) spawns
N of them per job and bridges their journal entries to SSE.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.observe import EventLog
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner
from repro.service.jobs import (
    DEFAULT_LEASE_TTL_S,
    QUEUED,
    Job,
    JobSpec,
    JobStore,
    PlannedCell,
    plan_cells,
)
from repro.trace.filter import plane_key, registry_stats, select_replay_mode

#: Default seconds a worker sleeps when it finds nothing claimable.
DEFAULT_POLL_S = 0.05


@dataclass(frozen=True)
class WorkGroup:
    """One leasable unit of work: the cells of a single miss-plane group.

    The group id is content-derived (a hash over the member cache keys),
    so every worker planning the same journalled spec derives the same
    ids -- leases taken by one process are meaningful to all.
    """

    gid: str
    cells: tuple[PlannedCell, ...]

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(cell.key for cell in self.cells)


def group_id(keys) -> str:
    """Deterministic work-group id over member cache keys."""
    blob = ",".join(sorted(keys))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def plan_groups(spec: JobSpec, base: ExperimentConfig) -> list[WorkGroup]:
    """Split a job's cells into leasable work groups, deterministically.

    Plane-eligible cells bucket by miss-plane key -- leasing the whole
    group to one worker preserves the record-one-replay-the-rest
    economics of :meth:`Runner._replay_cells` (splitting a group across
    workers would re-record the plane N times for nothing).  Everything
    else becomes a single-cell group.  Derived purely from the
    journalled spec, so recovery and every peer replan identically.
    """
    cells = plan_cells(spec, base)
    config = spec.experiment_config(base)
    buckets: dict[str, list[PlannedCell]] = {}
    order: list[str] = []
    for cell in cells:
        mode = select_replay_mode(
            cell.params, cache_dir=config.cache_dir, require_cache=True
        )
        if mode == "plane":
            bucket = "plane:" + plane_key(
                cell.params, config.scale, config.seed, config.slice_refs
            )
        else:
            bucket = "cell:" + cell.key
        if bucket not in buckets:
            order.append(bucket)
        buckets.setdefault(bucket, []).append(cell)
    return [
        WorkGroup(
            gid=group_id(cell.key for cell in buckets[bucket]),
            cells=tuple(buckets[bucket]),
        )
        for bucket in order
    ]


def _execute_group(
    store: JobStore, runner: Runner, job: Job, group: WorkGroup
) -> int:
    """Run one leased group's pending cells; journal each completion.

    Cells already journalled done are skipped; cells already on disk
    (a crashed predecessor got that far) complete as ``cached``.  The
    rest go through :meth:`Runner._replay_cells`, which records one
    representative per plane group and re-prices the siblings -- the
    exact serial path, so the record bytes cannot differ.
    """
    done = set(job.done_keys)
    todo: list[PlannedCell] = []
    recorded = 0
    for cell in group.cells:
        if cell.key in done:
            continue
        if runner._lookup(cell.key) is not None:
            store.record_cell(job.id, cell.key, "cached", label=cell.label)
            recorded += 1
            continue
        todo.append(cell)
    if not todo:
        return recorded
    wanted = {cell.key for cell in todo}

    def on_runner_event(payload: dict) -> None:
        if payload.get("event") != "cell_completed":
            return
        key = str(payload.get("key"))
        if key in wanted:
            store.record_cell(
                job.id,
                key,
                str(payload.get("mode", "full")),
                label=payload.get("label"),
                wall_s=payload.get("wall_s"),
            )

    runner.events.subscribe(on_runner_event)
    try:
        runner._replay_cells([(cell.label, cell.params) for cell in todo])
    finally:
        runner.events.unsubscribe(on_runner_event)
    return recorded + len(todo)


def run_worker(
    state_dir: str | Path,
    config: ExperimentConfig,
    worker_id: str,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = DEFAULT_POLL_S,
    hold_after_claim: float = 0.0,
    job_filter: set[str] | None = None,
) -> dict:
    """Drain the journal's active jobs; returns execution counters.

    Loops claiming and executing work groups until every targeted job
    (``job_filter``, or all journalled jobs) is terminal.  Groups whose
    lease another worker holds are skipped and retried after ``poll_s``
    -- their cells arrive through the journal when the peer finishes.
    ``hold_after_claim`` is a test hook: sleep that long after each
    claim so a harness can ``SIGKILL`` the worker mid-lease.

    The returned counters include a ``plane_registry`` snapshot: jobs
    sharing a plane group hit the worker's in-process LRU registry
    instead of re-loading and re-validating the artifact per job, and
    the hit/miss/eviction mix shows whether the byte budget fits the
    job stream.
    """
    store = JobStore(state_dir)
    store.recover()
    events = EventLog(config.event_log)
    runners: dict[str, Runner] = {}
    stats = {"worker": worker_id, "groups": 0, "cells": 0, "denied": 0}
    while True:
        store.tail()
        jobs = [
            job
            for job in store.jobs()
            if job_filter is None or job.id in job_filter
        ]
        active = [job for job in jobs if not job.terminal]
        if not active:
            if jobs or job_filter is None:
                stats["plane_registry"] = registry_stats()
                return stats
            time.sleep(poll_s)  # targeted job not journalled yet
            continue
        progressed = False
        for job in active:
            runner = runners.get(job.id)
            if runner is None:
                runner = Runner(
                    job.spec.experiment_config(config), events=events
                )
                runners[job.id] = runner
            groups = plan_groups(job.spec, config)
            pending = [
                group
                for group in groups
                if any(key not in job.done_keys for key in group.keys)
            ]
            if not pending:
                current = store.get(job.id)
                if current is not None and not current.terminal:
                    store.mark_completed(job.id)
                progressed = True
                continue
            for group in pending:
                if not store.claim_group(
                    job.id, group.gid, worker_id, ttl=lease_ttl
                ):
                    stats["denied"] += 1
                    continue
                current = store.get(job.id)
                if current is None or current.terminal:
                    store.release_group(job.id, group.gid, worker_id)
                    continue
                if current.status == QUEUED:
                    store.mark_running(job.id)
                if hold_after_claim > 0:
                    time.sleep(hold_after_claim)
                try:
                    stats["cells"] += _execute_group(
                        store, runner, store.get(job.id), group
                    )
                except Exception as exc:  # journal, don't kill the fabric
                    store.mark_failed(job.id, f"{type(exc).__name__}: {exc}")
                    store.release_group(job.id, group.gid, worker_id)
                    progressed = True
                    break
                store.release_group(job.id, group.gid, worker_id)
                stats["groups"] += 1
                progressed = True
        if not progressed:
            time.sleep(poll_s)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.fabric",
        description="One lease-based sweep fabric worker.",
    )
    parser.add_argument("--state-dir", required=True, help="service state dir")
    parser.add_argument("--cache-dir", required=True, help="run-record cache")
    parser.add_argument("--worker-id", required=True, help="lease owner id")
    parser.add_argument(
        "--job",
        action="append",
        default=None,
        help="drain only this job id (repeatable; default: all journalled)",
    )
    parser.add_argument(
        "--ttl", type=float, default=DEFAULT_LEASE_TTL_S, help="lease TTL (s)"
    )
    parser.add_argument(
        "--poll", type=float, default=DEFAULT_POLL_S, help="idle poll (s)"
    )
    parser.add_argument(
        "--hold-after-claim",
        type=float,
        default=0.0,
        help="test hook: sleep this long after each claim",
    )
    args = parser.parse_args(argv)
    config = replace(
        ExperimentConfig.from_env(), cache_dir=Path(args.cache_dir)
    )
    stats = run_worker(
        args.state_dir,
        config,
        args.worker_id,
        lease_ttl=args.ttl,
        poll_s=args.poll,
        hold_after_claim=args.hold_after_claim,
        job_filter=set(args.job) if args.job else None,
    )
    print(json.dumps(stats))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
