"""Sweep service: durable jobs, an HTTP daemon and its client.

The serving layer over the experiment engine (see ``docs/service.md``):

* :mod:`repro.service.jobs` -- journalled job store with idempotent
  keys and crash recovery.
* :mod:`repro.service.scheduler` -- dedups submitted cells against the
  cache and in-flight work, coalesces plane groups, dispatches to the
  parallel runner, fans progress out to subscribers.
* :mod:`repro.service.fabric` -- lease-based multi-process workers
  draining work groups from the shared journal
  (``rampage-sim serve --fabric N``).
* :mod:`repro.service.server` -- the stdlib asyncio HTTP daemon
  (``rampage-sim serve``).
* :mod:`repro.service.client` -- typed client with jittered-backoff
  retries (``rampage-sim submit | status | watch | fetch``).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.fabric import WorkGroup, plan_groups, run_worker
from repro.service.jobs import Job, JobSpec, JobStore, job_key, plan_cells
from repro.service.scheduler import BackpressureError, SweepScheduler
from repro.service.server import ServiceThread, SweepService, serve

__all__ = [
    "BackpressureError",
    "Job",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "ServiceThread",
    "SweepService",
    "SweepScheduler",
    "WorkGroup",
    "job_key",
    "plan_cells",
    "plan_groups",
    "run_worker",
    "serve",
]
