"""Durable sweep jobs: idempotent keys, an append-only journal, recovery.

A *job* is one sweep request -- a set of grid labels plus the workload
knobs (scale, slice, rates, sizes, seed) that pin its cells.  Jobs are
**idempotent by construction**: the job id is a hash over the sorted
cache keys of the cells the job would simulate, so submitting the same
grid twice yields the same job, not a second sweep.

Durability comes from an **append-only JSONL journal** under the
service state directory.  Every state transition is one line::

    {"op": "submit", "id": ..., "spec": {...}, "cells": [...]}
    {"op": "start",  "id": ...}
    {"op": "cell",   "id": ..., "key": ..., "mode": ...}
    {"op": "done",   "id": ...}   /   {"op": "fail", "id": ..., "error": ...}

On restart :meth:`JobStore.recover` replays the journal: jobs without a
terminal op come back ``queued`` and are re-executed.  Cells completed
before a crash live in the run-record cache, so a resumed job finishes
them as cache hits -- the journal only has to remember *that* the job
was accepted, never simulation state.  A torn trailing line (``kill
-9`` mid-append) is skipped, the same policy as
:func:`repro.core.observe.read_events`.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.errors import ConfigurationError
from repro.core.observe import EventLog
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import GRID_BUILDERS, Runner

#: Journal schema tag, embedded in every line for forward compatibility.
JOURNAL_SCHEMA = "rampage-job/1"

JOURNAL_NAME = "journal.jsonl"

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

#: States a job can still make progress from.
ACTIVE_STATES = frozenset({QUEUED, RUNNING})

#: Default grid labels for a submission that names none.
DEFAULT_LABELS = ("baseline", "rampage")


@dataclass(frozen=True)
class JobSpec:
    """The sweep a job runs: grid labels plus workload knobs."""

    labels: tuple[str, ...]
    scale: float
    slice_refs: int
    issue_rates: tuple[int, ...]
    sizes: tuple[int, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.labels:
            raise ConfigurationError("a job needs at least one grid label")
        unknown = [label for label in self.labels if label not in GRID_BUILDERS]
        if unknown:
            raise ConfigurationError(
                f"unknown grid labels {unknown}; known: {sorted(GRID_BUILDERS)}"
            )

    @classmethod
    def from_request(
        cls, payload: dict, base: ExperimentConfig
    ) -> "JobSpec":
        """Build a spec from an HTTP/CLI payload, defaulting to ``base``.

        Raises :class:`ConfigurationError` on malformed values -- the
        server maps that to a 400, never a crash.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"job spec must be an object, got {type(payload).__name__}"
            )
        labels = payload.get("labels", DEFAULT_LABELS)
        if isinstance(labels, str):
            labels = [token for token in labels.split(",") if token]
        try:
            return cls(
                labels=tuple(str(label) for label in labels),
                scale=float(payload.get("scale", base.scale)),
                slice_refs=int(payload.get("slice_refs", base.slice_refs)),
                issue_rates=tuple(
                    int(rate)
                    for rate in payload.get("rates", base.issue_rates)
                ),
                sizes=tuple(
                    int(size) for size in payload.get("sizes", base.sizes)
                ),
                seed=int(payload.get("seed", base.seed)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed job spec: {exc}") from exc

    def experiment_config(self, base: ExperimentConfig) -> ExperimentConfig:
        """The runner configuration for this job over ``base``'s cache."""
        return replace(
            base,
            scale=self.scale,
            slice_refs=self.slice_refs,
            issue_rates=self.issue_rates,
            sizes=self.sizes,
            seed=self.seed,
        )

    def as_dict(self) -> dict:
        return {
            "labels": list(self.labels),
            "scale": self.scale,
            "slice_refs": self.slice_refs,
            "rates": list(self.issue_rates),
            "sizes": list(self.sizes),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            labels=tuple(payload["labels"]),
            scale=float(payload["scale"]),
            slice_refs=int(payload["slice_refs"]),
            issue_rates=tuple(int(rate) for rate in payload["rates"]),
            sizes=tuple(int(size) for size in payload["sizes"]),
            seed=int(payload["seed"]),
        )


@dataclass(frozen=True)
class PlannedCell:
    """One grid cell a job will need, with its run-record cache key."""

    key: str
    label: str
    params: object  # MachineParams; opaque here
    issue_rate_hz: int
    size_bytes: int
    kind: str

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "issue_rate_hz": self.issue_rate_hz,
            "size_bytes": self.size_bytes,
            "kind": self.kind,
        }


def plan_cells(spec: JobSpec, base: ExperimentConfig) -> list[PlannedCell]:
    """Enumerate the job's cells, de-duplicated by cache key.

    Uses a throwaway :class:`Runner` purely for its key derivation and
    grid enumeration -- no workload is synthesized and nothing touches
    the cache.  Deterministic, so recovery can re-derive the same plan
    from the journalled spec.
    """
    runner = Runner(spec.experiment_config(base), events=EventLog(None))
    cells: list[PlannedCell] = []
    seen: set[str] = set()
    for label in spec.labels:
        for params in runner.grid_params(label):
            key = runner._cache_key(params)
            if key in seen:
                continue
            seen.add(key)
            cells.append(
                PlannedCell(
                    key=key,
                    label=label,
                    params=params,
                    issue_rate_hz=params.issue_rate_hz,
                    size_bytes=params.transfer_unit_bytes,
                    kind=params.kind,
                )
            )
    return cells


def job_key(spec: JobSpec, cells: list[PlannedCell]) -> str:
    """Idempotent job id, derived from the cells' cache keys.

    Two submissions that would simulate the same cells under the same
    labels are the same job.  Label order is irrelevant; the workload
    knobs are already folded into each cell's cache key.
    """
    blob = ",".join(sorted(spec.labels)) + "|" + ",".join(
        sorted(cell.key for cell in cells)
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


@dataclass
class Job:
    """One journalled sweep job and its progress counters."""

    id: str
    spec: JobSpec
    cells: list[dict] = field(default_factory=list)
    status: str = QUEUED
    done: int = 0
    modes: dict[str, int] = field(default_factory=dict)
    done_keys: set[str] = field(default_factory=set)
    error: str | None = None
    submitted_ts: float = 0.0
    updated_ts: float = 0.0

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def terminal(self) -> bool:
        return self.status not in ACTIVE_STATES

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "status": self.status,
            "spec": self.spec.as_dict(),
            "cells": list(self.cells),
            "total": self.total,
            "done": self.done,
            "modes": dict(self.modes),
            "error": self.error,
            "submitted_ts": self.submitted_ts,
            "updated_ts": self.updated_ts,
        }


class JobStore:
    """Thread-safe job registry backed by the append-only journal."""

    def __init__(self, state_dir: str | Path, *, clock=time.time) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.state_dir / JOURNAL_NAME
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    def _append(self, entry: dict) -> None:
        """Append one journal line; callers hold the store lock.

        The line is flushed before the method returns, so a submission
        is durable before the server acknowledges it (the *commit
        before ack* the crash-recovery contract needs).
        """
        entry = {"schema": JOURNAL_SCHEMA, "ts": round(self._clock(), 6), **entry}
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()

    def _apply(self, entry: dict) -> None:
        """Replay one journal line into the in-memory registry."""
        op = entry.get("op")
        if op == "submit":
            try:
                spec = JobSpec.from_dict(entry["spec"])
            except (KeyError, TypeError, ValueError, ConfigurationError):
                return  # a stale or foreign line must not poison recovery
            job = Job(
                id=entry["id"],
                spec=spec,
                cells=list(entry.get("cells", [])),
                submitted_ts=entry.get("ts", 0.0),
                updated_ts=entry.get("ts", 0.0),
            )
            if job.id not in self._jobs:
                self._order.append(job.id)
            self._jobs[job.id] = job
            return
        job = self._jobs.get(entry.get("id", ""))
        if job is None:
            return
        job.updated_ts = entry.get("ts", job.updated_ts)
        if op == "start":
            job.status = RUNNING
        elif op == "cell":
            key = entry.get("key")
            if key and key not in job.done_keys:
                job.done_keys.add(key)
                job.done += 1
                mode = entry.get("mode", "full")
                job.modes[mode] = job.modes.get(mode, 0) + 1
        elif op == "done":
            job.status = COMPLETED
        elif op == "fail":
            job.status = FAILED
            job.error = entry.get("error")

    def recover(self) -> list[Job]:
        """Replay the journal; returns jobs that need to resume.

        Jobs left ``queued`` or ``running`` by a crash come back as
        ``queued`` -- their completed cells are cache hits when the
        scheduler re-executes them, so nothing is simulated twice.
        """
        with self._lock:
            if self.path.exists():
                for line in self.path.read_text("utf-8").splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn trailing line from a crash
                    if isinstance(entry, dict):
                        self._apply(entry)
            resumable = []
            for job_id in self._order:
                job = self._jobs[job_id]
                if job.status in ACTIVE_STATES:
                    job.status = QUEUED
                    resumable.append(job)
            return resumable

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, cells: list[PlannedCell]) -> tuple[Job, bool]:
        """Register (or return) the job for ``spec``; journal if new.

        Returns ``(job, created)``.  An existing queued, running or
        completed job is returned untouched -- idempotent submission.
        A previously *failed* job is re-journalled and re-queued.
        """
        key = job_key(spec, cells)
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None and existing.status != FAILED:
                return existing, False
            now = self._clock()
            job = Job(
                id=key,
                spec=spec,
                cells=[cell.as_dict() for cell in cells],
                submitted_ts=now,
                updated_ts=now,
            )
            if key not in self._jobs:
                self._order.append(key)
            self._jobs[key] = job
            self._append(
                {"op": "submit", "id": key, "spec": spec.as_dict(),
                 "cells": job.cells}
            )
            return job, True

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.status = RUNNING
            job.updated_ts = self._clock()
            self._append({"op": "start", "id": job_id})

    def record_cell(self, job_id: str, key: str, mode: str) -> Job:
        """Journal one completed cell; de-duplicates by cell key."""
        with self._lock:
            job = self._jobs[job_id]
            if key not in job.done_keys:
                job.done_keys.add(key)
                job.done += 1
                job.modes[mode] = job.modes.get(mode, 0) + 1
                job.updated_ts = self._clock()
                self._append(
                    {"op": "cell", "id": job_id, "key": key, "mode": mode}
                )
            return job

    def mark_completed(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            job.status = COMPLETED
            job.error = None
            job.updated_ts = self._clock()
            self._append({"op": "done", "id": job_id})
            return job

    def mark_failed(self, job_id: str, error: str) -> Job:
        with self._lock:
            job = self._jobs[job_id]
            job.status = FAILED
            job.error = error
            job.updated_ts = self._clock()
            self._append({"op": "fail", "id": job_id, "error": error})
            return job

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def active_count(self) -> int:
        """Jobs that still occupy the admission queue (queued/running)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.status in ACTIVE_STATES
            )
