"""Durable sweep jobs: idempotent keys, an append-only journal, recovery.

A *job* is one sweep request -- a set of grid labels plus the workload
knobs (scale, slice, rates, sizes, seed) that pin its cells.  Jobs are
**idempotent by construction**: the job id is a hash over the sorted
cache keys of the cells the job would simulate, so submitting the same
grid twice yields the same job, not a second sweep.

Durability comes from an **append-only JSONL journal** under the
service state directory.  Every state transition is one line::

    {"op": "submit", "id": ..., "spec": {...}, "cells": [...]}
    {"op": "start",  "id": ...}
    {"op": "cell",   "id": ..., "key": ..., "mode": ...}
    {"op": "done",   "id": ...}   /   {"op": "fail", "id": ..., "error": ...}

On restart :meth:`JobStore.recover` replays the journal: jobs without a
terminal op come back ``queued`` and are re-executed.  Cells completed
before a crash live in the run-record cache, so a resumed job finishes
them as cache hits -- the journal only has to remember *that* the job
was accepted, never simulation state.  A torn trailing line (``kill
-9`` mid-append) is skipped, the same policy as
:func:`repro.core.observe.read_events`.

**Multi-worker leases (``rampage-job/2``).**  The journal doubles as
the work ledger for the scale-out fabric
(:mod:`repro.service.fabric`): worker processes *lease* whole work
groups (one miss-plane group, or one ungrouped cell) before executing
them::

    {"op": "lease",   "id": ..., "group": ..., "worker": ..., "expires_ts": ...}
    {"op": "release", "id": ..., "group": ..., "worker": ...}

A lease carries an expiry; a worker that dies mid-group (``kill -9``)
simply stops renewing and any other worker reclaims the group once the
expiry passes -- the run-record cache's atomic commits make the retry
byte-identical.  Claims are arbitrated with an ``flock`` on a sibling
lock file, so two processes can never append conflicting leases for
one group.  v1 journals (no lease ops) replay unchanged: recovery
ignores ops it has already applied and drops leases that have expired.

Because several processes append to one journal, every store keeps a
byte offset and :meth:`JobStore.tail` replays lines appended by *other*
processes (and idempotently re-applies its own), so in-memory state
always converges to a pure in-order replay of the file.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path

try:  # pragma: no cover - Unix-only; the fabric degrades without it
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.core.errors import ConfigurationError
from repro.core.observe import EventLog
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import GRID_BUILDERS, Runner

#: Journal schema tag, embedded in every line for forward compatibility.
#: v2 adds the ``lease``/``release`` ops; v1 journals replay unchanged.
JOURNAL_SCHEMA = "rampage-job/2"

#: Schemas :meth:`JobStore.recover` accepts.
COMPATIBLE_SCHEMAS = frozenset({"rampage-job/1", JOURNAL_SCHEMA})

JOURNAL_NAME = "journal.jsonl"

#: Sibling lock file arbitrating cross-process journal appends/claims.
JOURNAL_LOCK_NAME = "journal.lock"

#: Default seconds a work-group lease stays exclusive without renewal.
DEFAULT_LEASE_TTL_S = 60.0

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

#: States a job can still make progress from.
ACTIVE_STATES = frozenset({QUEUED, RUNNING})

#: Default grid labels for a submission that names none.
DEFAULT_LABELS = ("baseline", "rampage")


@dataclass(frozen=True)
class JobSpec:
    """The sweep a job runs: grid labels plus workload knobs."""

    labels: tuple[str, ...]
    scale: float
    slice_refs: int
    issue_rates: tuple[int, ...]
    sizes: tuple[int, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.labels:
            raise ConfigurationError("a job needs at least one grid label")
        unknown = [label for label in self.labels if label not in GRID_BUILDERS]
        if unknown:
            raise ConfigurationError(
                f"unknown grid labels {unknown}; known: {sorted(GRID_BUILDERS)}"
            )

    @classmethod
    def from_request(
        cls, payload: dict, base: ExperimentConfig
    ) -> "JobSpec":
        """Build a spec from an HTTP/CLI payload, defaulting to ``base``.

        Raises :class:`ConfigurationError` on malformed values -- the
        server maps that to a 400, never a crash.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"job spec must be an object, got {type(payload).__name__}"
            )
        labels = payload.get("labels", DEFAULT_LABELS)
        if isinstance(labels, str):
            labels = labels.split(",")
        # Tolerate surrounding whitespace however the labels arrived
        # ("baseline, rampage" is a label list, not an unknown grid).
        labels = [
            token for token in (str(label).strip() for label in labels) if token
        ]
        try:
            return cls(
                labels=tuple(labels),
                scale=float(payload.get("scale", base.scale)),
                slice_refs=int(payload.get("slice_refs", base.slice_refs)),
                issue_rates=tuple(
                    int(rate)
                    for rate in payload.get("rates", base.issue_rates)
                ),
                sizes=tuple(
                    int(size) for size in payload.get("sizes", base.sizes)
                ),
                seed=int(payload.get("seed", base.seed)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed job spec: {exc}") from exc

    def experiment_config(self, base: ExperimentConfig) -> ExperimentConfig:
        """The runner configuration for this job over ``base``'s cache."""
        return replace(
            base,
            scale=self.scale,
            slice_refs=self.slice_refs,
            issue_rates=self.issue_rates,
            sizes=self.sizes,
            seed=self.seed,
        )

    def as_dict(self) -> dict:
        return {
            "labels": list(self.labels),
            "scale": self.scale,
            "slice_refs": self.slice_refs,
            "rates": list(self.issue_rates),
            "sizes": list(self.sizes),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        return cls(
            labels=tuple(payload["labels"]),
            scale=float(payload["scale"]),
            slice_refs=int(payload["slice_refs"]),
            issue_rates=tuple(int(rate) for rate in payload["rates"]),
            sizes=tuple(int(size) for size in payload["sizes"]),
            seed=int(payload["seed"]),
        )


@dataclass(frozen=True)
class PlannedCell:
    """One grid cell a job will need, with its run-record cache key."""

    key: str
    label: str
    params: object  # MachineParams; opaque here
    issue_rate_hz: int
    size_bytes: int
    kind: str

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "issue_rate_hz": self.issue_rate_hz,
            "size_bytes": self.size_bytes,
            "kind": self.kind,
        }


def plan_cells(spec: JobSpec, base: ExperimentConfig) -> list[PlannedCell]:
    """Enumerate the job's cells, de-duplicated by cache key.

    Uses a throwaway :class:`Runner` purely for its key derivation and
    grid enumeration -- no workload is synthesized and nothing touches
    the cache.  Deterministic, so recovery can re-derive the same plan
    from the journalled spec.
    """
    runner = Runner(spec.experiment_config(base), events=EventLog(None))
    cells: list[PlannedCell] = []
    seen: set[str] = set()
    for label in spec.labels:
        for params in runner.grid_params(label):
            key = runner._cache_key(params)
            if key in seen:
                continue
            seen.add(key)
            cells.append(
                PlannedCell(
                    key=key,
                    label=label,
                    params=params,
                    issue_rate_hz=params.issue_rate_hz,
                    size_bytes=params.transfer_unit_bytes,
                    kind=params.kind,
                )
            )
    return cells


def job_key(spec: JobSpec, cells: list[PlannedCell]) -> str:
    """Idempotent job id, derived from the cells' cache keys.

    Two submissions that would simulate the same cells under the same
    labels are the same job.  Label order is irrelevant; the workload
    knobs are already folded into each cell's cache key.
    """
    blob = ",".join(sorted(spec.labels)) + "|" + ",".join(
        sorted(cell.key for cell in cells)
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


@dataclass
class Job:
    """One journalled sweep job and its progress counters."""

    id: str
    spec: JobSpec
    cells: list[dict] = field(default_factory=list)
    status: str = QUEUED
    done: int = 0
    modes: dict[str, int] = field(default_factory=dict)
    done_keys: set[str] = field(default_factory=set)
    #: Active work-group leases: group id -> {worker, expires_ts}.
    leases: dict[str, dict] = field(default_factory=dict)
    error: str | None = None
    submitted_ts: float = 0.0
    updated_ts: float = 0.0

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def terminal(self) -> bool:
        return self.status not in ACTIVE_STATES

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "status": self.status,
            "spec": self.spec.as_dict(),
            "cells": list(self.cells),
            "total": self.total,
            "done": self.done,
            "modes": dict(self.modes),
            "leases": {group: dict(info) for group, info in self.leases.items()},
            "error": self.error,
            "submitted_ts": self.submitted_ts,
            "updated_ts": self.updated_ts,
        }


class JobStore:
    """Thread-safe job registry backed by the append-only journal."""

    def __init__(self, state_dir: str | Path, *, clock=time.time) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.state_dir / JOURNAL_NAME
        self.lock_path = self.state_dir / JOURNAL_LOCK_NAME
        self._clock = clock
        self._lock = threading.RLock()
        self._flock_handle = None
        self._flock_depth = 0
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        #: Journal bytes already replayed into memory; :meth:`tail`
        #: applies everything beyond it (other processes' appends).
        self._offset = 0
        #: Foreign entries applied by a mutator's catch-up, owed to the
        #: next :meth:`tail` call.
        self._pending_tail: list[dict] = []

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------

    @contextmanager
    def _journal_lock(self):
        """Cross-process mutual exclusion over journal appends/claims.

        An ``flock`` on a sibling lock file (reentrant within the
        store, which already holds its thread lock).  Without ``fcntl``
        (non-Unix) this degrades to the thread lock alone -- correct
        for the single-process daemon, unsupported for multi-process
        fabrics.
        """
        if fcntl is None:
            yield
            return
        if self._flock_depth == 0:
            self._flock_handle = open(self.lock_path, "a+b")
            fcntl.flock(self._flock_handle.fileno(), fcntl.LOCK_EX)
        self._flock_depth += 1
        try:
            yield
        finally:
            self._flock_depth -= 1
            if self._flock_depth == 0 and self._flock_handle is not None:
                fcntl.flock(self._flock_handle.fileno(), fcntl.LOCK_UN)
                self._flock_handle.close()
                self._flock_handle = None

    def _journal(self, entry: dict) -> dict:
        """Append one journal line and apply it; callers hold the lock.

        The line is flushed before the method returns, so a submission
        is durable before the server acknowledges it (the *commit
        before ack* the crash-recovery contract needs).  The in-memory
        effect goes through :meth:`_apply` -- the same code recovery
        and :meth:`tail` run -- so live state can never diverge from an
        in-order replay of the journal.
        """
        entry = {"schema": JOURNAL_SCHEMA, "ts": round(self._clock(), 6), **entry}
        blob = (json.dumps(entry) + "\n").encode("utf-8")
        with self._journal_lock():
            self._catch_up()
            with open(self.path, "ab") as handle:
                start = handle.tell()
                if start > self._offset:
                    # A crashed writer left a torn fragment; seal it so
                    # our line starts fresh (replay skips the bad line).
                    handle.write(b"\n")
                    start += 1
                handle.write(blob)
                handle.flush()
            # Step the offset over our own line: tail() reports only
            # entries this store has not already applied.
            self._offset = start + len(blob)
        self._apply(entry)
        return entry

    def _catch_up(self) -> None:
        """Fold other processes' appends in before acting on state.

        Entries applied here are remembered so the next :meth:`tail`
        still reports them -- a mutator catching up must not swallow
        events the daemon's broadcast loop is waiting for.
        """
        self._pending_tail.extend(self._replay_from_offset())

    def _apply(self, entry: dict) -> None:
        """Replay one journal line into the in-memory registry."""
        op = entry.get("op")
        if op == "submit":
            try:
                spec = JobSpec.from_dict(entry["spec"])
            except (KeyError, TypeError, ValueError, ConfigurationError):
                return  # a stale or foreign line must not poison recovery
            job = Job(
                id=entry["id"],
                spec=spec,
                cells=list(entry.get("cells", [])),
                submitted_ts=entry.get("ts", 0.0),
                updated_ts=entry.get("ts", 0.0),
            )
            if job.id not in self._jobs:
                self._order.append(job.id)
            self._jobs[job.id] = job
            return
        job = self._jobs.get(entry.get("id", ""))
        if job is None:
            return
        job.updated_ts = entry.get("ts", job.updated_ts)
        if op == "start":
            job.status = RUNNING
        elif op == "cell":
            key = entry.get("key")
            if key and key not in job.done_keys:
                job.done_keys.add(key)
                job.done += 1
                mode = entry.get("mode", "full")
                job.modes[mode] = job.modes.get(mode, 0) + 1
        elif op == "lease":
            group = entry.get("group")
            if group:
                job.leases[str(group)] = {
                    "worker": str(entry.get("worker", "")),
                    "expires_ts": float(entry.get("expires_ts", 0.0)),
                }
        elif op == "release":
            group = entry.get("group")
            if group is not None:
                held = job.leases.get(str(group))
                if held is not None and held["worker"] == str(
                    entry.get("worker", "")
                ):
                    job.leases.pop(str(group), None)
        elif op == "done":
            job.status = COMPLETED
            job.error = None
            job.leases.clear()
        elif op == "fail":
            job.status = FAILED
            job.error = entry.get("error")
            job.leases.clear()

    def _replay_from_offset(self) -> list[dict]:
        """Apply journal lines beyond ``self._offset``; callers hold the lock.

        Only complete (newline-terminated) lines advance the offset, so
        a line another process is mid-append never splits.  Returns the
        entries applied, in file order.
        """
        applied: list[dict] = []
        if not self.path.exists():
            return applied
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            blob = handle.read()
        end = blob.rfind(b"\n")
        if end < 0:
            return applied
        chunk = blob[: end + 1]
        self._offset += len(chunk)
        for line in chunk.decode("utf-8", "replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn or foreign line must not poison replay
            if isinstance(entry, dict):
                self._apply(entry)
                applied.append(entry)
        return applied

    def recover(self) -> list[Job]:
        """Replay the journal; returns jobs that need to resume.

        Jobs left ``queued`` or ``running`` by a crash come back as
        ``queued`` -- their completed cells are cache hits when the
        scheduler re-executes them, so nothing is simulated twice.
        Resubmitted-after-failure jobs replay to exactly one queued job
        (the later ``submit`` op supersedes the failed incarnation; the
        job id appears in the queue once).  Leases left by crashed
        workers are dropped once expired, making their groups
        claimable again.
        """
        with self._lock:
            with self._journal_lock():
                self._repair_torn_tail()
                self._replay_from_offset()
            now = self._clock()
            resumable = []
            for job_id in self._order:
                job = self._jobs[job_id]
                job.leases = {
                    group: info
                    for group, info in job.leases.items()
                    if info["expires_ts"] > now
                }
                if job.status in ACTIVE_STATES:
                    job.status = QUEUED
                    resumable.append(job)
            return resumable

    def _repair_torn_tail(self) -> None:
        """Newline-terminate a torn final line (``kill -9`` mid-append).

        Without the repair a later append would concatenate onto the
        torn fragment and corrupt *two* entries; with it the fragment
        becomes one complete unparseable line that replay skips.
        """
        if not self.path.exists():
            return
        with open(self.path, "rb") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            last = handle.read(1)
        if last != b"\n":
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()

    def tail(self) -> list[dict]:
        """Apply journal lines appended since the last replay.

        The cross-process visibility primitive: fabric workers and the
        daemon share one journal, and each process calls ``tail()`` to
        fold the others' appends into its in-memory registry.  Its own
        lines are re-applied harmlessly (every op is idempotent under
        in-order replay).  Returns the newly applied entries.
        """
        with self._lock:
            pending = self._pending_tail
            self._pending_tail = []
            return pending + self._replay_from_offset()

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, cells: list[PlannedCell]) -> tuple[Job, bool]:
        """Register (or return) the job for ``spec``; journal if new.

        Returns ``(job, created)``.  An existing queued, running or
        completed job is returned untouched -- idempotent submission.
        A previously *failed* job is re-journalled and re-queued.
        """
        key = job_key(spec, cells)
        with self._lock:
            existing = self._jobs.get(key)
            if existing is not None and existing.status != FAILED:
                return existing, False
            self._journal(
                {
                    "op": "submit",
                    "id": key,
                    "spec": spec.as_dict(),
                    "cells": [cell.as_dict() for cell in cells],
                }
            )
            return self._jobs[key], True

    def mark_running(self, job_id: str) -> Job:
        with self._lock:
            self._journal({"op": "start", "id": job_id})
            return self._jobs[job_id]

    def record_cell(self, job_id: str, key: str, mode: str, **extra) -> Job:
        """Journal one completed cell; de-duplicates by cell key.

        ``extra`` fields (label, wall_s, ...) ride along on the journal
        line so tailing processes can reconstruct progress events.
        """
        with self._lock:
            job = self._jobs[job_id]
            if key not in job.done_keys:
                self._journal(
                    {"op": "cell", "id": job_id, "key": key, "mode": mode,
                     **extra}
                )
            return job

    def mark_completed(self, job_id: str) -> Job:
        with self._lock:
            self._journal({"op": "done", "id": job_id})
            return self._jobs[job_id]

    def mark_failed(self, job_id: str, error: str) -> Job:
        with self._lock:
            self._journal({"op": "fail", "id": job_id, "error": error})
            return self._jobs[job_id]

    # ------------------------------------------------------------------
    # Work-group leases (the multi-worker fabric's claim protocol)
    # ------------------------------------------------------------------

    def claim_group(
        self,
        job_id: str,
        group: str,
        worker: str,
        *,
        ttl: float = DEFAULT_LEASE_TTL_S,
    ) -> bool:
        """Try to lease one work group for ``worker``; True on success.

        The decision happens under the cross-process ``flock`` *after*
        tailing the journal, so the check sees every lease any other
        process has already committed.  A group is claimable when it
        has no lease, its lease expired, or ``worker`` already holds it
        (renewal).
        """
        with self._lock:
            with self._journal_lock():
                self._catch_up()
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return False
                held = job.leases.get(group)
                now = self._clock()
                if (
                    held is not None
                    and held["worker"] != worker
                    and held["expires_ts"] > now
                ):
                    return False
                self._journal(
                    {
                        "op": "lease",
                        "id": job_id,
                        "group": group,
                        "worker": worker,
                        "expires_ts": round(now + ttl, 6),
                    }
                )
                return True

    def release_group(self, job_id: str, group: str, worker: str) -> None:
        """Release ``worker``'s lease on a group (no-op if not held)."""
        with self._lock:
            with self._journal_lock():
                self._catch_up()
                job = self._jobs.get(job_id)
                if job is None:
                    return
                held = job.leases.get(group)
                if held is None or held["worker"] != worker:
                    return
                self._journal(
                    {"op": "release", "id": job_id, "group": group,
                     "worker": worker}
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def active_count(self) -> int:
        """Jobs that still occupy the admission queue (queued/running)."""
        with self._lock:
            return sum(
                1 for job in self._jobs.values() if job.status in ACTIVE_STATES
            )
