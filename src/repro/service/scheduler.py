"""Sweep scheduler: dedup, coalesce, dispatch, broadcast.

One worker thread drains a bounded admission queue of jobs.  For each
job it:

1. **Dedups** the planned cells against the run-record cache (cells
   already on disk complete immediately as ``mode=cached``) and against
   in-flight work -- a cell being simulated by the current job is never
   dispatched twice, and jobs sharing cells serialize through the cache
   (the later job observes the earlier job's records as hits).
2. **Coalesces** the remainder into miss-plane groups by handing them
   to :class:`~repro.experiments.parallel.ParallelRunner`, whose
   two-phase planner ships one representative per plane group to the
   pool and replays the siblings as timing arithmetic.
3. **Broadcasts** progress: the runner's
   :class:`~repro.core.observe.EventLog` is subscribed and every
   ``cell_completed`` payload is journalled to the
   :class:`~repro.service.jobs.JobStore` and fanned out to SSE
   subscribers.

Backpressure is explicit: when ``queued + running`` jobs reach
``queue_limit``, :meth:`SweepScheduler.submit` raises
:class:`BackpressureError`, which the HTTP layer maps to ``429`` with a
``Retry-After`` header.  Submissions of *existing* jobs never count
against the limit -- idempotent resubmission must stay cheap.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

import repro
from repro.core.errors import ReproError
from repro.core.observe import EventLog
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import find_record
from repro.service.jobs import (
    DEFAULT_LEASE_TTL_S,
    FAILED,
    Job,
    JobSpec,
    JobStore,
    PlannedCell,
    job_key,
    plan_cells,
)


class BackpressureError(ReproError):
    """The admission queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SweepScheduler:
    """Owns the worker thread, the admission queue and the SSE fan-out.

    Parameters
    ----------
    store:
        The journalled job registry.
    config:
        Base experiment configuration; its ``cache_dir`` is the cache
        every job's records land in, and per-job knobs override the
        rest via :meth:`JobSpec.experiment_config`.
    workers:
        Pool width handed to each job's :class:`ParallelRunner`.
    queue_limit:
        Maximum queued-plus-running jobs before submissions bounce.
    """

    def __init__(
        self,
        store: JobStore,
        config: ExperimentConfig,
        *,
        workers: int | None = None,
        queue_limit: int = 8,
        retry_after: float = 1.0,
        fabric: int = 0,
        lease_ttl: float = DEFAULT_LEASE_TTL_S,
    ) -> None:
        self.store = store
        self.config = config
        self.workers = workers
        self.queue_limit = max(0, int(queue_limit))
        self.retry_after = retry_after
        #: >0 switches execution to N leased worker *processes* per job.
        self.fabric = max(0, int(fabric))
        self.lease_ttl = lease_ttl
        self._queue: deque[str] = deque()
        self._cond = threading.Condition()
        self._stop = False
        self._thread: threading.Thread | None = None
        self._inflight: set[str] = set()
        self._subscribers: dict[str, list[queue.Queue]] = {}
        self._subs_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> list[Job]:
        """Recover journalled jobs, re-queue them, start the worker."""
        resumed = self.store.recover()
        with self._cond:
            for job in resumed:
                self._queue.append(job.id)
            self._cond.notify()
        self._thread = threading.Thread(
            target=self._worker, name="sweep-scheduler", daemon=True
        )
        self._thread.start()
        return resumed

    def stop(self, timeout: float | None = None) -> None:
        """Graceful drain: finish the running job, keep the rest queued.

        Queued-but-unstarted jobs stay journalled as ``queued``; a
        restarted service resumes them.  The currently executing job
        runs to completion because the worker only observes the stop
        flag between jobs.
        """
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def admission_state(self) -> dict:
        with self._cond:
            queued = len(self._queue)
        return {
            "queued": queued,
            "active": self.store.active_count(),
            "limit": self.queue_limit,
        }

    def dedup_preview(self, cells: list[PlannedCell]) -> dict:
        """How a submission's cells split at admission time."""
        cache_dir = self.config.cache_dir
        # Snapshot under the condition lock: the worker thread swaps
        # ``_inflight`` wholesale around each job, and iterating the
        # live set from the HTTP thread races that swap.
        with self._cond:
            inflight_keys = set(self._inflight)
        cached = inflight = 0
        for cell in cells:
            if cell.key in inflight_keys:
                inflight += 1
            elif (
                cache_dir is not None
                and find_record(cache_dir, cell.key) is not None
            ):
                cached += 1
        return {
            "total": len(cells),
            "cached": cached,
            "inflight": inflight,
            "fresh": len(cells) - cached - inflight,
        }

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Admit one job; returns ``(job, created)``.

        Raises :class:`~repro.core.errors.ConfigurationError` for a bad
        spec and :class:`BackpressureError` when the admission queue is
        full.  Existing jobs are returned without touching the queue.
        """
        cells = plan_cells(spec, self.config)
        with self._cond:
            job, created = self._admit(spec, cells)
            if created:
                self._queue.append(job.id)
                self._cond.notify()
            return job, created

    def _admit(self, spec: JobSpec, cells: list[PlannedCell]) -> tuple[Job, bool]:
        """Store-level submit guarded by the admission bound."""
        existing = self.store.get(job_key(spec, cells))
        if existing is not None and existing.status != FAILED:
            return existing, False
        if self.store.active_count() >= self.queue_limit:
            raise BackpressureError(
                f"admission queue full ({self.queue_limit} jobs)",
                retry_after=self.retry_after,
            )
        return self.store.submit(spec, cells)

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        """Block until ``job_id`` reaches a terminal state.

        Returns the job (in whatever state it reached by the deadline),
        or ``None`` for an unknown id.  The worker notifies the shared
        condition after every job, so waiters wake promptly.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self.store.get(job_id)
                if job is None or job.terminal:
                    return job
                remaining = 0.5
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return job
                self._cond.wait(min(remaining, 0.5))

    # ------------------------------------------------------------------
    # SSE fan-out
    # ------------------------------------------------------------------

    def subscribe(self, job_id: str) -> queue.Queue:
        """A thread-safe queue receiving this job's progress payloads."""
        channel: queue.Queue = queue.Queue()
        with self._subs_lock:
            self._subscribers.setdefault(job_id, []).append(channel)
        return channel

    def unsubscribe(self, job_id: str, channel: queue.Queue) -> None:
        with self._subs_lock:
            channels = self._subscribers.get(job_id, [])
            if channel in channels:
                channels.remove(channel)
            if not channels:
                self._subscribers.pop(job_id, None)

    def _broadcast(self, job_id: str, payload: dict) -> None:
        with self._subs_lock:
            channels = list(self._subscribers.get(job_id, []))
        for channel in channels:
            channel.put(payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stop:
                    self._cond.wait()
                if self._stop:
                    return  # drain: queued jobs stay journalled
                job_id = self._queue.popleft()
            job = self.store.get(job_id)
            if job is not None and not job.terminal:
                self._execute(job)
            with self._cond:
                self._cond.notify_all()  # wake wait()ers

    def _cell_done(self, job: Job, key: str, mode: str, **extra: object) -> None:
        updated = self.store.record_cell(job.id, key, mode)
        self._broadcast(
            job.id,
            {
                "event": "cell_completed",
                "job": job.id,
                "key": key,
                "mode": mode,
                "done": updated.done,
                "total": updated.total,
                **extra,
            },
        )

    def _execute(self, job: Job) -> None:
        if self.fabric > 0:
            self._execute_fabric(job)
            return
        self.store.mark_running(job.id)
        self._broadcast(
            job.id, {"event": "job_running", "job": job.id, "total": job.total}
        )
        cells = plan_cells(job.spec, self.config)
        with self._cond:
            self._inflight = {cell.key for cell in cells}
        events = EventLog(self.config.event_log)

        def on_runner_event(payload: dict) -> None:
            if payload.get("event") == "cell_completed":
                self._cell_done(
                    job,
                    str(payload.get("key")),
                    str(payload.get("mode", "full")),
                    label=payload.get("label"),
                    wall_s=payload.get("wall_s"),
                )

        events.subscribe(on_runner_event)
        try:
            runner = ParallelRunner(
                job.spec.experiment_config(self.config),
                workers=self.workers,
                events=events,
            )
            # Cells already on disk complete immediately -- the dedup
            # against the cache the admission contract promises.
            for cell in cells:
                if runner._lookup(cell.key) is not None:
                    self._cell_done(job, cell.key, "cached")
            runner.prefetch(job.spec.labels)
            runner.write_cache_manifest()
            done = self.store.mark_completed(job.id)
            self._broadcast(
                job.id,
                {
                    "event": "job_completed",
                    "job": job.id,
                    "done": done.done,
                    "total": done.total,
                    "modes": dict(done.modes),
                },
            )
        except Exception as exc:  # journal the failure; never kill the worker
            failed = self.store.mark_failed(
                job.id, f"{type(exc).__name__}: {exc}"
            )
            self._broadcast(
                job.id,
                {"event": "job_failed", "job": job.id, "error": failed.error},
            )
        finally:
            events.unsubscribe(on_runner_event)
            with self._cond:
                self._inflight = set()

    def _execute_fabric(self, job: Job) -> None:
        """Run one job on ``self.fabric`` leased worker processes.

        The daemon stops simulating: it spawns workers targeting this
        job, then tails the shared journal, bridging the workers' cell
        ops to SSE.  Terminal transitions are journalled by the workers
        (whoever drains the last cell marks the job done); the daemon
        broadcasts the terminal event exactly once, after the loop
        observes it.
        """
        self._broadcast(
            job.id, {"event": "job_running", "job": job.id, "total": job.total}
        )
        cells = plan_cells(job.spec, self.config)
        with self._cond:
            self._inflight = {cell.key for cell in cells}
        src_root = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        # An explicit -c entry rather than `-m repro.service.fabric`:
        # the package __init__ already imports the fabric module, and
        # runpy warns about re-executing an imported module.
        command = [
            sys.executable,
            "-c",
            "from repro.service.fabric import main; raise SystemExit(main())",
            "--state-dir",
            str(self.store.state_dir),
            "--cache-dir",
            str(self.config.cache_dir),
            "--job",
            job.id,
            "--ttl",
            str(self.lease_ttl),
        ]
        procs = [
            subprocess.Popen(
                command + ["--worker-id", f"daemon-{index}"],
                env=env,
                stdout=subprocess.DEVNULL,
            )
            for index in range(self.fabric)
        ]
        done_seen = job.done
        try:
            while True:
                for entry in self.store.tail():
                    if entry.get("id") != job.id or entry.get("op") != "cell":
                        continue
                    done_seen += 1
                    self._broadcast(
                        job.id,
                        {
                            "event": "cell_completed",
                            "job": job.id,
                            "key": entry.get("key"),
                            "mode": entry.get("mode", "full"),
                            "done": done_seen,
                            "total": job.total,
                            "label": entry.get("label"),
                            "wall_s": entry.get("wall_s"),
                        },
                    )
                current = self.store.get(job.id)
                if current is not None and current.terminal:
                    break
                with self._cond:
                    stopping = self._stop
                if stopping:
                    # Drain: the job stays journalled active and the
                    # next start() re-queues it; no terminal broadcast.
                    return
                if all(proc.poll() is not None for proc in procs):
                    self.store.tail()
                    current = self.store.get(job.id)
                    if current is None or not current.terminal:
                        self.store.mark_failed(
                            job.id,
                            "fabric workers exited before the job completed",
                        )
                    break
                time.sleep(0.05)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            with self._cond:
                self._inflight = set()
        final = self.store.get(job.id)
        if final is None or not final.terminal:
            return
        if final.status == FAILED:
            self._broadcast(
                job.id,
                {"event": "job_failed", "job": job.id, "error": final.error},
            )
        else:
            self._broadcast(
                job.id,
                {
                    "event": "job_completed",
                    "job": job.id,
                    "done": final.done,
                    "total": final.total,
                    "modes": dict(final.modes),
                },
            )

    def record_path(self, key: str) -> Path | None:
        """The on-disk cache file serving ``key``, if caching is on.

        Federates across the sharded layout (``shards/<prefix>/``) and
        the legacy flat layout; ``None`` when caching is off or the
        record does not exist in either.
        """
        if self.config.cache_dir is None:
            return None
        return find_record(self.config.cache_dir, key)
