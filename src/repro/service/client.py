"""Typed HTTP client for the sweep service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the daemon's REST+SSE surface with the
retry discipline a remote caller needs:

* **Jittered exponential backoff** on connection errors and timeouts --
  full jitter (``random() * min(cap, base * 2**attempt)``), so a herd
  of clients retrying a restarting daemon spreads out instead of
  synchronizing.
* **429-aware**: a backpressure response's ``Retry-After`` becomes the
  floor of the next delay.  Submission is idempotent server-side (same
  cells, same job), so retrying a submit can never double-run a sweep.
* **SSE parsing**: :meth:`watch` yields ``(event, payload)`` pairs and
  swallows keep-alive comments; :meth:`wait` drives it to a terminal
  state and survives a daemon restart mid-stream by reconnecting.

Every method raises :class:`ServiceError` (carrying ``status`` when the
failure was an HTTP response) once retries are exhausted.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Iterator

from repro.core.errors import ReproError

#: HTTP methods safe to retry blindly.  POST /v1/jobs rides along
#: because job submission is idempotent by key.
_RETRYABLE_STATUS = frozenset({429})


class ServiceError(ReproError):
    """A request failed after retries; ``status`` is set for HTTP errors."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Client for one sweep-service daemon.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8337``.
    timeout:
        Per-request socket timeout (watch streams use ``stream_timeout``).
    retries:
        Attempts beyond the first before giving up.
    backoff / max_backoff:
        Exponential backoff base and cap, in seconds.
    rng / sleep:
        Injectable randomness and clock for deterministic tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        stream_timeout: float = 60.0,
        retries: int = 4,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
        rng=random.random,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.stream_timeout = stream_timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._rng = rng
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def backoff_delay(self, attempt: int, floor: float = 0.0) -> float:
        """Full-jitter delay for retry ``attempt`` (0-based).

        Never returns 0: the jitter RNG landing near zero must not
        turn a retry loop into a hot spin against a refusing server,
        so the delay is floored at 5% of the attempt's ceiling.  A
        caller-supplied ``floor`` (a server ``Retry-After`` hint) is
        capped at ``max_backoff`` so a hostile or buggy hint cannot
        park the client.
        """
        floor = min(max(0.0, float(floor)), self.max_backoff)
        ceiling = min(self.max_backoff, self.backoff * (2**attempt))
        delay = max(floor, self._rng() * ceiling)
        return max(delay, 0.05 * ceiling)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
    ):
        """One HTTP exchange with retries; returns the open response."""
        url = self.base_url + path
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=body, method=method, headers=headers
            )
            try:
                return urllib.request.urlopen(
                    request, timeout=timeout or self.timeout
                )
            except urllib.error.HTTPError as error:
                if error.code in _RETRYABLE_STATUS and attempt < self.retries:
                    retry_after = float(error.headers.get("Retry-After") or 0)
                    error.close()
                    self._sleep(self.backoff_delay(attempt, floor=retry_after))
                    last_error = error
                    continue
                detail = ""
                try:
                    detail = error.read().decode("utf-8", "replace").strip()
                except OSError:
                    pass
                raise ServiceError(
                    f"{method} {path} -> {error.code}: {detail or error.reason}",
                    status=error.code,
                ) from error
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                last_error = error
                if attempt < self.retries:
                    self._sleep(self.backoff_delay(attempt))
                    continue
                raise ServiceError(
                    f"{method} {path} failed after "
                    f"{self.retries + 1} attempts: {error}"
                ) from error
        raise ServiceError(
            f"{method} {path} exhausted retries: {last_error}",
            status=getattr(last_error, "code", None),
        )

    def _json(self, method: str, path: str, payload: dict | None = None):
        with self._request(method, path, payload) as response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def submit(self, spec: dict | None = None) -> dict:
        """Submit a sweep; returns the job (``created`` says if it's new)."""
        return self._json("POST", "/v1/jobs", spec or {})

    def jobs(self) -> list[dict]:
        return self._json("GET", "/v1/jobs")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def records(self, job_id: str) -> dict:
        """The per-cell record manifest for one job."""
        return self._json("GET", f"/v1/jobs/{job_id}/records")

    def fetch_record(self, key: str) -> bytes:
        """One cell's raw cache-file bytes, exactly as stored on disk."""
        with self._request("GET", f"/v1/records/{key}") as response:
            return response.read()

    def reports(self) -> dict:
        """The report index: known report names and export formats."""
        return self._json("GET", "/v1/reports")

    def fetch_report(
        self,
        name: str,
        *,
        format: str = "json",
        min_complete: float | None = None,
        spec: dict | None = None,
    ) -> bytes:
        """One rendered report, as the server's raw bytes for ``format``.

        ``spec`` carries the workload knobs a job spec would (``scale``,
        ``slice_refs``, ``seed``, ``rates``, ``sizes``); lists are sent
        comma-joined.  A 409 (report below ``min_complete``) surfaces
        as a :class:`ServiceError` with ``status == 409``.
        """
        params = {"format": format}
        if min_complete is not None:
            params["min_complete"] = str(min_complete)
        for knob, value in (spec or {}).items():
            if isinstance(value, (list, tuple)):
                params[knob] = ",".join(str(item) for item in value)
            else:
                params[knob] = str(value)
        query = urllib.parse.urlencode(params)
        with self._request("GET", f"/v1/reports/{name}?{query}") as response:
            return response.read()

    def bench(self) -> dict:
        """The daemon's throughput-trend + cache summary (``/v1/bench``)."""
        return self._json("GET", "/v1/bench")

    def watch(self, job_id: str) -> Iterator[tuple[str, dict]]:
        """Stream one SSE connection's ``(event, payload)`` pairs.

        Ends when the server closes the stream (job terminal or daemon
        drain).  Use :meth:`wait` for restart-safe waiting.
        """
        response = self._request(
            "GET", f"/v1/jobs/{job_id}/events", timeout=self.stream_timeout
        )
        event_name = None
        data_lines: list[str] = []
        with response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:  # dispatch boundary
                    if event_name is not None and data_lines:
                        try:
                            payload = json.loads("\n".join(data_lines))
                        except json.JSONDecodeError:
                            payload = {}
                        yield event_name, payload
                    event_name = None
                    data_lines = []
                    continue
                if line.startswith(":"):
                    continue  # keep-alive comment
                field, _, value = line.partition(":")
                value = value.lstrip(" ")
                if field == "event":
                    event_name = value
                elif field == "data":
                    data_lines.append(value)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        on_event=None,
    ) -> dict:
        """Watch until the job is terminal; reconnects across restarts.

        ``on_event(name, payload)`` observes every streamed event.
        Returns the final job dict; raises :class:`ServiceError` on
        timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                for name, payload in self.watch(job_id):
                    if on_event is not None:
                        on_event(name, payload)
                    if name in ("job_completed", "job_failed"):
                        return self.job(job_id)
            except ServiceError:
                pass  # daemon restarting; fall through to re-poll
            job = self.job(job_id)
            if job["status"] in ("completed", "failed"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            self._sleep(self.backoff_delay(1))
