"""Table 1: Direct Rambus vs disk bandwidth efficiency (analytic)."""

from __future__ import annotations

from repro.analysis.efficiency import (
    TABLE1_SIZES,
    table1_rows,
    transfer_cost_instructions,
)
from repro.analysis.report import render_table
from repro.experiments.runner import ExperimentOutput, Runner

NAME = "table1"
TITLE = (
    "Table 1: efficiency (% bandwidth utilised) of 2-byte-wide Direct "
    "Rambus vs disk (10 ms latency, 40 MB/s)"
)


def run(runner: Runner | None = None) -> ExperimentOutput:
    """Compute the efficiency table and the section 3.5 worked example.

    Purely analytic -- no simulation, so ``runner`` is accepted only
    for interface uniformity.
    """
    rows = table1_rows()
    table = render_table(
        TITLE,
        headers=("bytes", "rambus %", "disk %"),
        rows=[
            (row["bytes"], f"{row['rambus_pct']:.2f}", f"{row['disk_pct']:.4f}")
            for row in rows
        ],
    )
    disk_cost = transfer_cost_instructions(4096, 10**9, device="disk")
    rambus_cost = transfer_cost_instructions(4096, 10**9, device="rambus")
    example = (
        "Section 3.5 example at a 1 GHz issue rate: a 4 KB disk transfer "
        f"costs {disk_cost:,.0f} instructions (paper: ~10 million); a 4 KB "
        f"Direct Rambus transfer costs {rambus_cost:,.0f} "
        "(paper: ~2,600)."
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=f"{table}\n\n{example}",
        data={
            "rows": rows,
            "sizes": list(TABLE1_SIZES),
            "disk_cost_instructions_4k_1ghz": disk_cost,
            "rambus_cost_instructions_4k_1ghz": rambus_cost,
        },
    )
