"""Table 2: the workload catalogue, validated against the generators.

The paper's Table 2 is input data (trace lengths and instruction-fetch
counts); this experiment renders the catalogue and *validates* that the
synthetic generators honour it -- each program's generated stream is
sampled and its instruction-fetch fraction compared with the table.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import render_table
from repro.experiments.runner import ExperimentOutput, Runner
from repro.trace.benchmarks import TABLE2_PROGRAMS, total_references_millions
from repro.trace.record import IFETCH
from repro.trace.synthetic import build_program

NAME = "table2"
TITLE = "Table 2: address traces (millions of references; paper counts)"

_SAMPLE_REFS = 40_000


def run(runner: Runner | None = None) -> ExperimentOutput:
    """Render the catalogue with measured instruction-fetch fractions."""
    seed = runner.config.seed if runner is not None else 0
    rows = []
    data_rows = []
    for spec in TABLE2_PROGRAMS:
        program = build_program(
            spec, scale=_SAMPLE_REFS / (spec.total_millions * 1e6), seed=seed
        )
        ifetch = 0
        total = 0
        for chunk in program.chunks():
            ifetch += int(np.count_nonzero(chunk.kinds == IFETCH))
            total += len(chunk)
        measured = ifetch / total if total else 0.0
        rows.append(
            (
                spec.name,
                spec.description,
                f"{spec.ifetch_millions:.1f}",
                f"{spec.total_millions:.1f}",
                f"{spec.ifetch_fraction:.3f}",
                f"{measured:.3f}",
            )
        )
        data_rows.append(
            {
                "name": spec.name,
                "ifetch_millions": spec.ifetch_millions,
                "total_millions": spec.total_millions,
                "ifetch_fraction_paper": spec.ifetch_fraction,
                "ifetch_fraction_measured": measured,
            }
        )
    table = render_table(
        TITLE,
        headers=("program", "description", "instr(M)", "total(M)", "frac", "measured"),
        rows=rows,
        note=(
            f"catalogue total: {total_references_millions():.1f} M references "
            "(paper: ~1.1 billion)"
        ),
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=table,
        data={"programs": data_rows, "total_millions": total_references_millions()},
    )
