"""Table 3: baseline direct-mapped L2 vs RAMpage run times.

"Elapsed simulated time (s) for 1.1 billion-reference combined traces.
Each row contains cache-based hierarchy at the top, and RAMpage
hierarchy below."  The paper's headline numbers from this table: at
200 MHz the best RAMpage time is 6 % faster than the best baseline; at
4 GHz it is 26 % faster.
"""

from __future__ import annotations

from repro.analysis.report import format_rate, render_table
from repro.analysis.runtime import best_cell, speedup
from repro.experiments.runner import ExperimentOutput, Runner

NAME = "table3"
TITLE = (
    "Table 3: elapsed simulated time (s); per issue rate the first line "
    "is the direct-mapped-L2 baseline, the second is RAMpage"
)


def run(runner: Runner | None = None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    baseline = runner.grid("baseline")
    rampage = runner.grid("rampage")
    sizes = runner.config.sizes
    rows = []
    summary = []
    for rate in runner.config.issue_rates:
        base_row = [f"{baseline.cell(rate, size).seconds:.4f}" for size in sizes]
        ramp_row = [f"{rampage.cell(rate, size).seconds:.4f}" for size in sizes]
        rows.append([format_rate(rate), "baseline", *base_row])
        rows.append(["", "RAMpage", *ramp_row])
        best_base = best_cell(baseline, rate)
        best_ramp = best_cell(rampage, rate)
        summary.append(
            {
                "issue_rate_hz": rate,
                "best_baseline_s": best_base.seconds,
                "best_baseline_size": best_base.size_bytes,
                "best_rampage_s": best_ramp.seconds,
                "best_rampage_size": best_ramp.size_bytes,
                "rampage_speedup": speedup(best_base, best_ramp),
            }
        )
    table = render_table(
        TITLE,
        headers=("issue rate", "hierarchy", *[str(s) for s in sizes]),
        rows=rows,
    )
    notes = ["", "Best-time comparison (paper: +6% at 200MHz, +26% at 4GHz):"]
    for entry in summary:
        notes.append(
            f"  {format_rate(entry['issue_rate_hz'])}: RAMpage "
            f"{entry['rampage_speedup'] * 100:+.1f}% vs baseline "
            f"(best sizes {entry['best_rampage_size']}B vs "
            f"{entry['best_baseline_size']}B)"
        )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=table + "\n" + "\n".join(notes),
        data={
            "sizes": list(sizes),
            "issue_rates": list(runner.config.issue_rates),
            "baseline_seconds": {
                format_rate(rate): [baseline.cell(rate, s).seconds for s in sizes]
                for rate in runner.config.issue_rates
            },
            "rampage_seconds": {
                format_rate(rate): [rampage.cell(rate, s).seconds for s in sizes]
                for rate in runner.config.issue_rates
            },
            "summary": summary,
        },
    )
