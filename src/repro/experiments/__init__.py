"""Experiment definitions: one module per paper table/figure.

Every experiment consumes a shared :class:`repro.experiments.runner.Runner`
(which caches simulation runs on disk, so the figures reuse the table
sweeps) and produces an :class:`repro.experiments.runner.ExperimentOutput`
with both structured data and a rendered text report.

Scaling: the paper simulates 1.1 G references; these experiments default
to a reduced workload (see :class:`repro.experiments.config.ExperimentConfig`
and EXPERIMENTS.md).  Set ``REPRO_SCALE`` / ``REPRO_RATES`` /
``REPRO_SIZES`` to widen a run.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import ExperimentOutput, Runner

__all__ = ["ExperimentConfig", "Runner", "ParallelRunner", "ExperimentOutput"]
