"""Cached experiment runner.

Tables 3-5 sweep the same axes and Figures 2-5 are different views of
those sweeps, so the runner memoises every simulation as a
:class:`~repro.analysis.runtime.RunRecord`, keyed by the *complete*
machine description plus workload parameters.  Records persist as one
JSON file per cell under the configured cache directory; re-rendering a
figure from table data costs nothing.

Grid labels (the hierarchies the paper compares):

=================  ====================================================
label              machine
=================  ====================================================
``baseline``       direct-mapped L2, no context-switch modelling
``rampage``        RAMpage, no context switches (Table 3 rows)
``rampage_som``    RAMpage with context switches on misses (Table 4)
``twoway``         2-way L2 with scheduled switch traces (Table 5)
=================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.analysis.runtime import RunGrid, RunRecord
from repro.core.errors import ConfigurationError
from repro.core.params import MachineParams
from repro.experiments.config import ExperimentConfig
from repro.systems.factory import (
    baseline_machine,
    rampage_machine,
    twoway_machine,
)
from repro.systems.simulator import simulate
from repro.trace.synthetic import build_workload

#: Bumped whenever trace generation or timing semantics change, so stale
#: cached records are never mixed with fresh ones.
WORKLOAD_VERSION = "wv4"

GRID_BUILDERS: dict[str, Callable[[int, int], MachineParams]] = {
    "baseline": lambda rate, size: baseline_machine(rate, size),
    "rampage": lambda rate, size: rampage_machine(rate, size),
    "rampage_som": lambda rate, size: rampage_machine(
        rate, size, switch_on_miss=True
    ),
    "twoway": lambda rate, size: twoway_machine(rate, size),
}


@dataclass(frozen=True)
class ExperimentOutput:
    """What each experiment module returns."""

    name: str
    title: str
    text: str
    data: dict

    def write_to(self, directory: str | Path) -> Path:
        """Persist the rendered report; returns the file path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.txt"
        path.write_text(self.text + "\n", encoding="utf-8")
        return path


class Runner:
    """Runs and caches the simulations behind every experiment."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config if config is not None else ExperimentConfig.from_env()
        self._memory: dict[str, RunRecord] = {}
        self._grids: dict[str, RunGrid] = {}

    # ------------------------------------------------------------------
    # Single cells
    # ------------------------------------------------------------------

    def _cache_key(self, params: MachineParams) -> str:
        config = self.config
        blob = "|".join(
            (
                WORKLOAD_VERSION,
                repr(params),
                f"scale={config.scale}",
                f"slice={config.slice_refs}",
                f"seed={config.seed}",
            )
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def _cache_path(self, key: str) -> Path | None:
        if self.config.cache_dir is None:
            return None
        return Path(self.config.cache_dir) / f"{key}.json"

    def _lookup(self, key: str) -> RunRecord | None:
        """Check the in-memory and on-disk caches for ``key``."""
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        path = self._cache_path(key)
        if path is not None and path.exists():
            record = RunRecord.from_dict(json.loads(path.read_text("utf-8")))
            self._memory[key] = record
            return record
        return None

    def _store(self, key: str, record: RunRecord) -> None:
        """Commit a record to both cache layers."""
        self._memory[key] = record
        path = self._cache_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(record.as_dict()), encoding="utf-8")

    def record(self, label: str, params: MachineParams) -> RunRecord:
        """Simulate one machine over the standard workload (cached)."""
        key = self._cache_key(params)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        programs = build_workload(self.config.scale, seed=self.config.seed)
        result = simulate(params, programs, slice_refs=self.config.slice_refs)
        record = RunRecord.from_result(label, params.transfer_unit_bytes, result)
        self._store(key, record)
        return record

    # ------------------------------------------------------------------
    # Grids
    # ------------------------------------------------------------------

    def grid_params(self, label: str) -> list[MachineParams]:
        """The machine of every cell in ``label``'s sweep, in grid order."""
        builder = GRID_BUILDERS.get(label)
        if builder is None:
            raise ConfigurationError(
                f"unknown grid {label!r}; known: {sorted(GRID_BUILDERS)}"
            )
        return [
            builder(rate, size)
            for rate in self.config.issue_rates
            for size in self.config.sizes
        ]

    def grid(self, label: str) -> RunGrid:
        """Return (building on demand) the sweep grid for ``label``."""
        if label in self._grids:
            return self._grids[label]
        grid = RunGrid(label)
        for params in self.grid_params(label):
            grid.add(self.record(label, params))
        self._grids[label] = grid
        return grid
