"""Cached experiment runner.

Tables 3-5 sweep the same axes and Figures 2-5 are different views of
those sweeps, so the runner memoises every simulation as a
:class:`~repro.analysis.runtime.RunRecord`, keyed by the *complete*
machine description plus workload parameters.  Records persist as one
JSON file per cell under the configured cache directory; re-rendering a
figure from table data costs nothing.

The disk cache is crash-safe and integrity-checked, because parallel
sweeps (:mod:`repro.experiments.parallel`) let multiple processes share
one cache directory:

* **Atomic commits** -- records are written to a temp file in the cache
  directory, fsynced, then ``os.replace``d into place, so a reader can
  never observe a torn ``<key>.json``.
* **Envelope format** -- each file carries a schema tag, the workload
  version and a SHA-256 checksum of the record payload
  (:data:`CACHE_SCHEMA`, :func:`encode_cache_entry`).
* **Quarantine, never crash** -- a file that fails decoding or
  validation is a cache *miss*: it is renamed to ``<key>.json.corrupt``
  for post-mortem, a structured event is logged, and the cell is
  recomputed.  ``rampage-sim cache verify`` reports quarantined and
  corrupt files; ``rampage-sim cache purge`` clears them.

Grid labels (the hierarchies the paper compares):

=================  ====================================================
label              machine
=================  ====================================================
``baseline``       direct-mapped L2, no context-switch modelling
``rampage``        RAMpage, no context switches (Table 3 rows)
``rampage_som``    RAMpage with context switches on misses (Table 4)
``rampage_vl1``    RAMpage with virtually-addressed L1s (section 2.3)
``twoway``         2-way L2 with scheduled switch traces (Table 5)
=================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.runtime import RunGrid, RunRecord
from repro.core.errors import CacheIntegrityError, ConfigurationError
from repro.core.observe import (
    CacheStats,
    EventLog,
    atomic_write_text,
    write_manifest,
)
from repro.core.params import MachineParams
from repro.core.timer import ScopedTimer, refs_per_second
from repro.experiments.config import ExperimentConfig
from repro.systems.factory import (
    baseline_machine,
    rampage_machine,
    twoway_machine,
    virtual_l1_machine,
)
from repro.systems.simulator import simulate
from repro.trace.filter import (
    PlaneRecorder,
    PlaneReplayError,
    commit_plane,
    discard_plane,
    get_plane,
    plane_key,
    registry_stats,
    replay_decoupled,
    replay_group,
    select_replay_mode,
)
from repro.trace.materialize import WORKLOAD_VERSION, get_workload
from repro.trace.synthetic import build_workload

#: Cache-file envelope schema, bumped when the envelope layout changes.
CACHE_SCHEMA = "rampage-cache/1"

#: Suffix appended to a cache file that failed integrity validation.
QUARANTINE_SUFFIX = ".corrupt"

#: Subdirectory of the cache directory holding the sharded record files.
SHARD_DIRNAME = "shards"

#: How many leading hex digits of the cache key select a shard (2 ->
#: up to 256 shards, so a million-record cache keeps directory scans
#: and rsyncs bounded per shard).
SHARD_PREFIX_LEN = 2

GRID_BUILDERS: dict[str, Callable[[int, int], MachineParams]] = {
    "baseline": lambda rate, size: baseline_machine(rate, size),
    "rampage": lambda rate, size: rampage_machine(rate, size),
    "rampage_som": lambda rate, size: rampage_machine(
        rate, size, switch_on_miss=True
    ),
    "rampage_vl1": lambda rate, size: virtual_l1_machine(rate, size),
    "twoway": lambda rate, size: twoway_machine(rate, size),
}


# ----------------------------------------------------------------------
# Cache-file envelope
# ----------------------------------------------------------------------


def record_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a record dict."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def encode_cache_entry(record: RunRecord) -> str:
    """Serialise a record into the integrity-checked envelope format."""
    payload = record.as_dict()
    return json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "workload_version": WORKLOAD_VERSION,
            "checksum": record_checksum(payload),
            "record": payload,
        }
    )


def decode_cache_entry(text: str) -> RunRecord:
    """Validate and decode one cache file's contents.

    Raises :class:`CacheIntegrityError` on invalid JSON, a missing or
    mismatched schema/workload version, or a checksum that disagrees
    with the payload -- every way a torn write, a stale simulator or a
    tampering editor can corrupt a record.
    """
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheIntegrityError(f"invalid JSON: {exc}") from exc
    if not isinstance(envelope, dict):
        raise CacheIntegrityError(
            f"expected an envelope object, got {type(envelope).__name__}"
        )
    schema = envelope.get("schema")
    if schema != CACHE_SCHEMA:
        raise CacheIntegrityError(
            f"schema mismatch: file has {schema!r}, expected {CACHE_SCHEMA!r}"
        )
    version = envelope.get("workload_version")
    if version != WORKLOAD_VERSION:
        raise CacheIntegrityError(
            f"workload version mismatch: file has {version!r}, "
            f"expected {WORKLOAD_VERSION!r}"
        )
    payload = envelope.get("record")
    if not isinstance(payload, dict):
        raise CacheIntegrityError("envelope has no record payload")
    checksum = envelope.get("checksum")
    expected = record_checksum(payload)
    if checksum != expected:
        raise CacheIntegrityError(
            f"checksum mismatch: file has {checksum!r}, payload hashes to "
            f"{expected!r}"
        )
    try:
        return RunRecord.from_dict(payload)
    except (KeyError, TypeError) as exc:
        raise CacheIntegrityError(f"record payload incomplete: {exc}") from exc


def shard_prefix(key: str) -> str:
    """The shard a cache key lands in (its leading hex digits)."""
    return key[:SHARD_PREFIX_LEN]


def record_path(cache_dir: str | Path, key: str) -> Path:
    """The canonical (sharded) on-disk location for ``key``'s record.

    All new records commit here; the flat pre-shard layout
    (``<cache>/<key>.json``) remains readable via :func:`find_record`.
    """
    return Path(cache_dir) / SHARD_DIRNAME / shard_prefix(key) / f"{key}.json"


def legacy_record_path(cache_dir: str | Path, key: str) -> Path:
    """Where a pre-shard cache committed ``key``'s record."""
    return Path(cache_dir) / f"{key}.json"


def find_record(cache_dir: str | Path, key: str) -> Path | None:
    """Locate ``key``'s record, federating across cache layouts.

    Checks the sharded layout first (where all writes go), then the
    legacy flat layout, so a cache written by an earlier version keeps
    serving hits.  Returns ``None`` when the key is in neither place.
    """
    for path in (
        record_path(cache_dir, key),
        legacy_record_path(cache_dir, key),
    ):
        if path.exists():
            return path
    return None


def iter_cache_files(cache_dir: str | Path) -> Iterator[Path]:
    """Every committed record file in ``cache_dir``, sorted by name.

    Covers both layouts: the sharded ``shards/<prefix>/<key>.json``
    tree and the legacy flat ``<key>.json`` files.
    """
    cache_dir = Path(cache_dir)
    paths = list(cache_dir.glob("*.json"))
    paths += cache_dir.glob(f"{SHARD_DIRNAME}/*/*.json")
    yield from sorted(paths, key=lambda path: path.name)


def iter_quarantined_files(cache_dir: str | Path) -> Iterator[Path]:
    """Every quarantined record file in ``cache_dir``, sorted by name."""
    cache_dir = Path(cache_dir)
    paths = list(cache_dir.glob(f"*.json{QUARANTINE_SUFFIX}"))
    paths += cache_dir.glob(f"{SHARD_DIRNAME}/*/*.json{QUARANTINE_SUFFIX}")
    yield from sorted(paths, key=lambda path: path.name)


@dataclass(frozen=True)
class ExperimentOutput:
    """What each experiment module returns."""

    name: str
    title: str
    text: str
    data: dict

    def write_to(self, directory: str | Path) -> Path:
        """Persist the rendered report; returns the file path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.txt"
        path.write_text(self.text + "\n", encoding="utf-8")
        return path


class Runner:
    """Runs and caches the simulations behind every experiment."""

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        events: EventLog | None = None,
        materialize: bool = True,
        two_phase: bool = True,
    ) -> None:
        self.config = config if config is not None else ExperimentConfig.from_env()
        self.events = events if events is not None else EventLog(self.config.event_log)
        self.cache_stats = CacheStats()
        self.materialize = materialize
        self.two_phase = two_phase
        self._memory: dict[str, RunRecord] = {}
        self._grids: dict[str, RunGrid] = {}
        self._programs: list | None = None

    def _workload(self) -> list:
        """The workload every cell of this runner simulates.

        With materialization on (the default) the reference stream is
        synthesized once per ``(scale, seed)`` per process -- all grid
        cells, grids and runners share one
        :class:`~repro.trace.materialize.MaterializedWorkload`, backed
        by an on-disk mmap artifact when caching is enabled.  With it
        off, every call re-runs live synthesis (the pre-plane
        behaviour, kept for benchmarking the difference); both paths
        produce byte-identical reference streams and records.
        """
        if not self.materialize:
            return build_workload(self.config.scale, seed=self.config.seed)
        if self._programs is None:
            self._programs = get_workload(
                self.config.scale,
                self.config.seed,
                cache_dir=self.config.cache_dir,
                events=self.events,
                slice_refs=self.config.slice_refs,
            ).programs
        return self._programs

    # ------------------------------------------------------------------
    # Single cells
    # ------------------------------------------------------------------

    def _cache_key(self, params: MachineParams) -> str:
        config = self.config
        blob = "|".join(
            (
                WORKLOAD_VERSION,
                repr(params),
                f"scale={config.scale}",
                f"slice={config.slice_refs}",
                f"seed={config.seed}",
            )
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def _cache_path(self, key: str) -> Path | None:
        """Where a *new* record for ``key`` commits (sharded layout)."""
        if self.config.cache_dir is None:
            return None
        return record_path(self.config.cache_dir, key)

    def _find_cached(self, key: str) -> Path | None:
        """Where an *existing* record lives, across both cache layouts."""
        if self.config.cache_dir is None:
            return None
        return find_record(self.config.cache_dir, key)

    def _quarantine(self, key: str, path: Path, error: CacheIntegrityError) -> None:
        """Move a failed cache file aside and log the event."""
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            os.replace(path, target)
            destination = str(target)
        except OSError:
            # Someone else already moved or deleted it; nothing to keep.
            destination = str(path)
        self.cache_stats.quarantined += 1
        self.events.emit(
            "cache_quarantined",
            key=key,
            path=destination,
            reason=str(error),
        )

    def _lookup(self, key: str) -> RunRecord | None:
        """Check the in-memory and on-disk caches for ``key``.

        A disk file that fails integrity validation is treated as a
        miss: it is quarantined to ``<key>.json.corrupt`` and the
        caller recomputes the cell.  Decode errors never propagate.
        """
        cached = self._memory.get(key)
        if cached is not None:
            self.cache_stats.hits_memory += 1
            return cached
        path = self._find_cached(key)
        if path is None:
            return None
        try:
            text = path.read_text("utf-8")
        except OSError:
            return None
        try:
            record = decode_cache_entry(text)
        except CacheIntegrityError as error:
            self._quarantine(key, path, error)
            return None
        self.cache_stats.hits_disk += 1
        self.events.emit("cache_hit", key=key, layer="disk", label=record.label)
        self._memory[key] = record
        return record

    def _store(self, key: str, record: RunRecord) -> None:
        """Commit a record to both cache layers (disk commit is atomic)."""
        self._memory[key] = record
        path = self._cache_path(key)
        if path is not None:
            atomic_write_text(path, encode_cache_entry(record))
            self.cache_stats.stores += 1

    def record(self, label: str, params: MachineParams) -> RunRecord:
        """Simulate one machine over the standard workload (cached).

        The cache key deliberately excludes ``label`` (two grids that
        share a machine share the cell), so a hit computed under a
        different grid is relabelled on read -- the returned record
        always carries the label the caller asked for.
        """
        key = self._cache_key(params)
        cached = self._lookup(key)
        if cached is not None:
            if cached.label != label:
                cached = replace(cached, label=label)
            return cached
        self.cache_stats.misses += 1
        self.events.emit(
            "cell_started",
            key=key,
            label=label,
            kind=params.kind,
            issue_rate_hz=params.issue_rate_hz,
            size_bytes=params.transfer_unit_bytes,
        )
        mode = "full"
        with ScopedTimer() as timer:
            result = None
            cell_mode = select_replay_mode(
                params, two_phase=self.two_phase, materialize=self.materialize
            )
            if cell_mode == "plane":
                result, mode = self._run_two_phase(params)
            if result is None:
                programs = self._workload()
                result = simulate(params, programs, slice_refs=self.config.slice_refs)
        record = RunRecord.from_result(label, params.transfer_unit_bytes, result)
        self._store(key, record)
        self.events.emit(
            "cell_completed",
            key=key,
            label=label,
            mode=mode,
            wall_s=round(timer.elapsed, 6),
            refs_per_s=round(refs_per_second(record.workload_refs, timer.elapsed), 1),
        )
        return record

    def _run_two_phase(self, params: MachineParams):
        """Run one plane-eligible cell through the two-phase engine.

        Returns ``(result, mode)``: a timing-decoupled replay when the
        cell's geometry already has a miss plane (``"replayed"``), else
        a full simulation that records one for its siblings
        (``"recorded"``).  A plane that trips a replay invariant is
        quarantined and the cell re-records -- never a crash.
        """
        config = self.config
        pkey = plane_key(params, config.scale, config.seed, config.slice_refs)
        plane = get_plane(pkey, cache_dir=config.cache_dir, events=self.events)
        if plane is not None:
            try:
                return replay_decoupled(params, plane), "replayed"
            except PlaneReplayError as error:
                discard_plane(
                    plane,
                    cache_dir=config.cache_dir,
                    events=self.events,
                    reason=str(error),
                )
        recorder = PlaneRecorder(pkey)
        programs = self._workload()
        result = simulate(
            params,
            programs,
            slice_refs=config.slice_refs,
            record_plane=recorder,
        )
        commit_plane(
            recorder.finalize(), cache_dir=config.cache_dir, events=self.events
        )
        return result, "recorded"

    # ------------------------------------------------------------------
    # Whole-group re-pricing
    # ------------------------------------------------------------------

    def _pending_grid_cells(
        self, labels: list[str] | tuple[str, ...]
    ) -> list[tuple[str, MachineParams]]:
        """Grid cells of ``labels`` absent from both cache layers.

        De-duplicated by cache key, so a machine shared between two
        labels' grids is only computed once.
        """
        pending: list[tuple[str, MachineParams]] = []
        seen: set[str] = set()
        for label in labels:
            for params in self.grid_params(label):
                key = self._cache_key(params)
                if key in seen or self._lookup(key) is not None:
                    continue
                seen.add(key)
                pending.append((label, params))
        return pending

    def _replay_cells(
        self,
        cells: list[tuple[str, MachineParams]],
        on_record: Callable[[RunRecord], None] | None = None,
    ) -> None:
        """Compute ``cells``, re-pricing whole plane groups in one pass.

        Cells whose mode is ``"plane"`` are grouped by miss-plane key;
        each group's first cell runs through :meth:`record` (recording
        the plane when it is not already committed) and every remaining
        sibling is priced by one vectorized :func:`replay_group` call
        -- the batched :class:`~repro.trace.replay_kernel.ReplayKernel`
        for preempting planes, a shared idle-channel price table
        otherwise -- instead of a per-cell replay; the plane itself is
        served from the LRU-by-bytes in-process registry, so repeated
        groups skip the artifact re-load and re-validation.  Cells
        whose mode is ``"full"`` run through :meth:`record` unchanged.
        ``on_record`` fires once per finished cell, in completion
        order.
        """
        groups: dict[str | None, list[tuple[str, MachineParams, str]]] = {}
        for label, params in cells:
            pkey: str | None = None
            mode = select_replay_mode(
                params, two_phase=self.two_phase, materialize=self.materialize
            )
            if mode == "plane":
                config = self.config
                pkey = plane_key(
                    params, config.scale, config.seed, config.slice_refs
                )
            groups.setdefault(pkey, []).append(
                (label, params, self._cache_key(params))
            )
        for pkey, members in groups.items():
            if pkey is None:
                for label, params, _key in members:
                    record = self.record(label, params)
                    if on_record is not None:
                        on_record(record)
                continue
            self._replay_plane_group(pkey, members, on_record)

    def _replay_plane_group(
        self,
        pkey: str,
        members: list[tuple[str, MachineParams, str]],
        on_record: Callable[[RunRecord], None] | None,
    ) -> None:
        """Price one plane group: record at most one cell, replay the rest."""
        cache_dir = self.config.cache_dir
        plane = get_plane(pkey, cache_dir=cache_dir, events=self.events)
        remaining = members
        if plane is None:
            label, params, _key = members[0]
            record = self.record(label, params)
            if on_record is not None:
                on_record(record)
            remaining = members[1:]
            plane = get_plane(pkey, cache_dir=cache_dir, events=self.events)
        if not remaining:
            return
        if plane is not None:
            try:
                with ScopedTimer() as timer:
                    results = replay_group(
                        [params for _label, params, _key in remaining], plane
                    )
            except PlaneReplayError as error:
                discard_plane(
                    plane,
                    cache_dir=cache_dir,
                    events=self.events,
                    reason=str(error),
                )
            else:
                wall = timer.elapsed / len(remaining)
                for (label, params, key), result in zip(remaining, results):
                    self.cache_stats.misses += 1
                    record = RunRecord.from_result(
                        label, params.transfer_unit_bytes, result
                    )
                    self._store(key, record)
                    self.events.emit(
                        "cell_completed",
                        key=key,
                        label=label,
                        mode="replayed",
                        wall_s=round(wall, 6),
                        refs_per_s=round(
                            refs_per_second(record.workload_refs, wall), 1
                        ),
                    )
                    if on_record is not None:
                        on_record(record)
                return
        # Plane unavailable (recording path skipped it) or invalid
        # (quarantined above): fall back to per-cell computation.
        for label, params, _key in remaining:
            record = self.record(label, params)
            if on_record is not None:
                on_record(record)

    def prefetch(self, labels: list[str] | tuple[str, ...]) -> int:
        """Fill the cache for ``labels``; returns how many cells ran.

        The serial engine's bulk path: pending cells are computed with
        whole-group vectorized re-pricing, so a sweep over *n* sibling
        timings of one geometry costs one recorded simulation plus one
        matrix op.  :class:`~repro.experiments.parallel.ParallelRunner`
        overrides this with a process pool in front of the same tail.
        """
        pending = self._pending_grid_cells(list(labels))
        if pending:
            self._replay_cells(pending)
        return len(pending)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def write_cache_manifest(self) -> Path | None:
        """Summarise the cache directory into its manifest (atomic).

        Returns the manifest path, or ``None`` when caching is off.
        """
        cache_dir = self.config.cache_dir
        if cache_dir is None:
            return None
        entries = sum(1 for _ in iter_cache_files(cache_dir))
        quarantined = sum(1 for _ in iter_quarantined_files(cache_dir))
        return write_manifest(
            cache_dir,
            {
                "workload_version": WORKLOAD_VERSION,
                "grids": sorted(self._grids),
                "cache": self.cache_stats.as_dict(),
                "plane_registry": registry_stats(),
                "entries": entries,
                "quarantined_files": quarantined,
            },
        )

    # ------------------------------------------------------------------
    # Grids
    # ------------------------------------------------------------------

    def grid_params(self, label: str) -> list[MachineParams]:
        """The machine of every cell in ``label``'s sweep, in grid order."""
        builder = GRID_BUILDERS.get(label)
        if builder is None:
            raise ConfigurationError(
                f"unknown grid {label!r}; known: {sorted(GRID_BUILDERS)}"
            )
        return [
            builder(rate, size)
            for rate in self.config.issue_rates
            for size in self.config.sizes
        ]

    def grid(self, label: str) -> RunGrid:
        """Return (building on demand) the sweep grid for ``label``."""
        if label in self._grids:
            return self._grids[label]
        self.prefetch([label])
        grid = RunGrid(label)
        for params in self.grid_params(label):
            grid.add(self.record(label, params))
        self._grids[label] = grid
        self.write_cache_manifest()
        return grid
