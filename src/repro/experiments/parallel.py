"""Parallel sweep engine: fill the run-record cache with worker processes.

The paper's tables sweep a grid of (issue rate, block/page size) cells
and every cell is an independent simulation, so the sweep is
embarrassingly parallel -- but the serial :class:`Runner` walks it one
cell at a time.  :class:`ParallelRunner` keeps the exact caching
contract (same keys, same JSON bytes on disk) and adds a prefetch stage
that dispatches the *pending* cells -- cache misses only -- to a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism is preserved because every simulation is seeded: a worker
re-derives the workload from ``(scale, seed)`` and the machine from its
:class:`~repro.core.params.MachineParams`, so a record computed in a
subprocess is bit-identical to one computed in-process (a test asserts
byte equality of the cached JSON).

The sweep is two-phase aware (:mod:`repro.trace.filter`): pending cells
that share a structural geometry are grouped by miss-plane key, one
representative per group is dispatched to the pool with recording on
(the worker commits the plane artifact alongside its record), and the
remaining cells of the group never reach the pool at all -- the parent
replays them as pure timing arithmetic after the pool drains.

Degradation is graceful by design: ``workers=1`` never builds a pool,
and any pool-level failure (fork limits, pickling regressions, a
sandbox without process spawning) falls back to the in-process serial
path rather than failing the sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.analysis.runtime import RunRecord
from repro.core.errors import CacheIntegrityError
from repro.core.params import MachineParams
from repro.core.timer import ScopedTimer, refs_per_second
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner
from repro.systems.simulator import simulate
from repro.trace.filter import (
    PlaneRecorder,
    commit_plane,
    get_plane,
    plane_key,
    select_replay_mode,
)
from repro.trace.materialize import attach_workload, get_workload
from repro.trace.synthetic import build_workload

#: Progress callback: (cells done, cells total, record just completed).
ProgressFn = Callable[[int, int, RunRecord], None]


def default_workers() -> int:
    """The default pool width: one worker per core."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class CellSpec:
    """One pending grid cell, as shipped to a worker process.

    Carries everything a worker needs to reproduce the cell from
    scratch; nothing else crosses the process boundary.  When the
    parent has materialized the workload (``trace_dir``), the worker
    attaches to the shared on-disk artifact by mmap instead of
    re-running trace synthesis -- only the *path* crosses the process
    boundary, never the arrays.
    """

    label: str
    params: MachineParams
    scale: float
    slice_refs: int
    seed: int
    trace_dir: str | None = None
    #: Miss-plane key to record while simulating (group representative).
    plane_key: str | None = None
    #: Cache directory receiving the recorded plane artifact.
    cache_dir: str | None = None


def _cell_workload(spec: CellSpec) -> list:
    """Resolve a cell's workload, preferring the shared trace artifact.

    Attaching is memoized per process, so a pool worker that simulates
    many cells pays one mmap attach, zero syntheses.  An invalid or
    vanished artifact degrades to live synthesis -- the streams are
    byte-identical, so the record is unaffected; the parent's own
    attach path is responsible for quarantining.
    """
    if spec.trace_dir is not None:
        try:
            return attach_workload(spec.trace_dir, slice_refs=spec.slice_refs)
        except CacheIntegrityError:
            pass
    return build_workload(spec.scale, seed=spec.seed)


def _simulate_cell(spec: CellSpec) -> dict:
    """Worker entry point: one full simulation, as a JSON-ready dict.

    Returns ``RunRecord.as_dict()`` rather than the record itself so the
    parent commits it through the same ``from_dict``/``as_dict``
    round-trip the disk cache uses -- byte-identical JSON either way.
    A spec carrying a ``plane_key`` is its plane group's representative:
    the run records the group's miss plane and commits the artifact so
    the parent (and sibling cells) can replay instead of simulate.
    """
    programs = _cell_workload(spec)
    recorder = None
    if spec.plane_key is not None:
        recorder = PlaneRecorder(spec.plane_key)
    result = simulate(
        spec.params,
        programs,
        slice_refs=spec.slice_refs,
        record_plane=recorder,
    )
    if recorder is not None:
        commit_plane(recorder.finalize(), cache_dir=spec.cache_dir)
    record = RunRecord.from_result(
        spec.label, spec.params.transfer_unit_bytes, result
    )
    return record.as_dict()


def _simulate_cell_timed(spec: CellSpec) -> tuple[dict, float]:
    """As :func:`_simulate_cell`, plus the worker-side wall time.

    The parent cannot time parallel cells itself (completions overlap),
    so the per-cell duration crosses the process boundary alongside the
    record dict and feeds the observability events.
    """
    with ScopedTimer() as timer:
        payload = _simulate_cell(spec)
    return payload, timer.elapsed


class ParallelRunner(Runner):
    """Drop-in :class:`Runner` that prefetches grids with a process pool.

    Parameters
    ----------
    config:
        As for :class:`Runner`.
    workers:
        Pool width; ``None`` means one per core.  ``workers=1`` (or a
        single pending cell) runs in-process with no pool at all.
        Anything below 1 is a configuration error and raises
        :class:`ValueError` immediately, before any work is dispatched.
    progress:
        Optional callback invoked after each completed cell with
        ``(done, total, record)``; completion order, not grid order.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        workers: int | None = None,
        progress: ProgressFn | None = None,
        materialize: bool = True,
        two_phase: bool = True,
        events=None,
    ) -> None:
        super().__init__(
            config, events=events, materialize=materialize, two_phase=two_phase
        )
        if workers is None:
            self.workers = default_workers()
        else:
            workers = int(workers)
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            self.workers = workers
        self.progress = progress

    # ------------------------------------------------------------------
    # Pending-cell enumeration
    # ------------------------------------------------------------------

    def _trace_artifact(self) -> str | None:
        """Materialize the sweep's workload; returns its artifact path.

        Called before cells are dispatched so the artifact exists on
        disk by the time any worker starts -- workers then attach by
        mmap instead of each re-running synthesis.  ``None`` when
        materialization is off or there is no cache directory to hold
        the artifact (workers fall back to per-process synthesis).
        """
        if not self.materialize or self.config.cache_dir is None:
            return None
        plane = get_workload(
            self.config.scale,
            self.config.seed,
            cache_dir=self.config.cache_dir,
            events=self.events,
            slice_refs=self.config.slice_refs,
        )
        if self._programs is None:
            self._programs = plane.programs
        return str(plane.path) if plane.path is not None else None

    def _cell_spec(self, label: str, params: MachineParams) -> CellSpec:
        config = self.config
        return CellSpec(
            label=label,
            params=params,
            scale=config.scale,
            slice_refs=config.slice_refs,
            seed=config.seed,
            trace_dir=self._trace_artifact(),
        )

    def pending_cells(self, labels: Sequence[str]) -> list[CellSpec]:
        """Grid cells of ``labels`` not yet in either cache layer.

        De-duplicates by cache key, so a machine shared between two
        labels' grids is only simulated once.
        """
        pending: list[CellSpec] = []
        seen: set[str] = set()
        for label in labels:
            for params in self.grid_params(label):
                key = self._cache_key(params)
                if key in seen or self._lookup(key) is not None:
                    continue
                seen.add(key)
                pending.append(self._cell_spec(label, params))
        return pending

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------

    def _plan_two_phase(
        self, pending: list[CellSpec]
    ) -> tuple[list[CellSpec], list[CellSpec]]:
        """Split pending cells into pool work and parent-side replays.

        Cells sharing a miss-plane key need only one full simulation:
        the group's first cell ships to the pool as its *representative*
        (recording the plane), and the rest are deferred -- the parent
        re-prices whole groups via :meth:`Runner._replay_cells` once the
        plane artifacts exist.  Groups whose plane is already on disk
        defer every cell.  Mode selection is
        :func:`~repro.trace.filter.select_replay_mode` with
        ``require_cache=True``: the plane must cross the process
        boundary as an on-disk artifact, so without a cache directory
        (and for ineligible machines) cells ship to the pool unchanged.
        """
        cache_dir = self.config.cache_dir
        pool_specs: list[CellSpec] = []
        deferred: list[CellSpec] = []
        represented: set[str] = set()
        config = self.config
        for spec in pending:
            mode = select_replay_mode(
                spec.params,
                two_phase=self.two_phase,
                materialize=self.materialize,
                cache_dir=cache_dir,
                require_cache=True,
            )
            if mode != "plane":
                pool_specs.append(spec)
                continue
            pkey = plane_key(spec.params, config.scale, config.seed, config.slice_refs)
            if pkey in represented:
                deferred.append(spec)
            elif get_plane(pkey, cache_dir=cache_dir, events=self.events) is not None:
                represented.add(pkey)
                deferred.append(spec)
            else:
                represented.add(pkey)
                pool_specs.append(
                    replace(spec, plane_key=pkey, cache_dir=str(cache_dir))
                )
        return pool_specs, deferred

    def prefetch(self, labels: Sequence[str]) -> int:
        """Fill the cache for ``labels``; returns how many cells ran.

        Uses the pool only when it can pay off (more than one pool-bound
        cell and ``workers > 1``); any pool failure degrades to the
        serial in-process path.  Cells the pool already committed (and
        already reported through the progress callback) are skipped in
        the fallback, so neither the work nor the callback repeats and
        ``done`` counts stay monotonic over one shared ``total``.
        Two-phase planning keeps plane-sharing cells out of the pool
        entirely; the serial tail re-prices them group-by-group from
        the representatives' recorded planes, one vectorized
        :func:`~repro.trace.filter.replay_group` call per geometry
        (batched through the plane's
        :class:`~repro.trace.replay_kernel.ReplayKernel` when the
        group is preempting).
        """
        pending = self.pending_cells(labels)
        if not pending:
            return 0
        total = len(pending)
        done = 0
        pool_specs, deferred = self._plan_two_phase(pending)
        self.events.emit(
            "sweep_started",
            labels=list(labels),
            pending=total,
            pool_cells=len(pool_specs),
            deferred_replays=len(deferred),
            workers=self.workers,
        )
        with ScopedTimer() as timer:
            serial = pending
            if self.workers > 1 and len(pool_specs) > 1:
                try:
                    self._prefetch_pool(pool_specs, total)
                    serial = deferred
                    done = total - len(deferred)
                except Exception:
                    # Degrade: drop the cells the pool finished before
                    # dying; their progress callbacks already fired.
                    serial = [
                        spec
                        for spec in pending
                        if self._lookup(self._cache_key(spec.params)) is None
                    ]
                    done = total - len(serial)

            def advance(record: RunRecord) -> None:
                nonlocal done
                done += 1
                if self.progress is not None:
                    self.progress(done, total, record)

            self._replay_cells(
                [(spec.label, spec.params) for spec in serial],
                on_record=advance,
            )
        self.events.emit(
            "sweep_completed",
            labels=list(labels),
            cells=total,
            wall_s=round(timer.elapsed, 6),
        )
        self.write_cache_manifest()
        return total

    def _prefetch_pool(self, pending: list[CellSpec], total: int) -> None:
        done = 0
        with ProcessPoolExecutor(max_workers=min(self.workers, len(pending))) as pool:
            futures = {
                pool.submit(_simulate_cell_timed, spec): spec for spec in pending
            }
            for future in as_completed(futures):
                spec = futures[future]
                payload, wall_s = future.result()
                record = RunRecord.from_dict(payload)
                # A cell the pool computed was by definition a miss;
                # the serial path counts these inside record().
                self.cache_stats.misses += 1
                self._store(self._cache_key(spec.params), record)
                self.events.emit(
                    "cell_completed",
                    key=self._cache_key(spec.params),
                    label=record.label,
                    mode="recorded" if spec.plane_key is not None else "full",
                    wall_s=round(wall_s, 6),
                    refs_per_s=round(
                        refs_per_second(record.workload_refs, wall_s), 1
                    ),
                )
                done += 1
                if self.progress is not None:
                    self.progress(done, total, record)
