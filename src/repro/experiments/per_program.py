"""Per-program behaviour (paper section 6.3).

"Other work in progress includes more detailed evaluation of
differences in individual application behaviour, to explore the value
of a variable SRAM page size."  This experiment runs the RAMpage
machine once and attributes TLB misses and page faults to each Table 2
program, normalised by the references the program contributed --
showing which applications drive the software overhead.
"""

from __future__ import annotations

from repro.analysis.report import format_rate, render_table
from repro.experiments.runner import ExperimentOutput, Runner
from repro.systems.factory import build_system, rampage_machine
from repro.trace.benchmarks import TABLE2_PROGRAMS
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import build_workload
from repro.systems.simulator import Simulator

NAME = "per_program"
TITLE = "Per-program TLB misses and page faults on RAMpage (section 6.3)"


def run(
    runner: Runner | None = None,
    page_bytes: int = 1024,
    issue_rate_hz: int = 1_000_000_000,
) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    config = runner.config
    system = build_system(rampage_machine(issue_rate_hz, page_bytes))
    programs = build_workload(config.scale, seed=config.seed)
    workload = InterleavedWorkload(programs, slice_refs=config.slice_refs)
    Simulator(system, workload).run()
    stats = system.stats

    refs_by_pid = {stream.pid: stream.consumed for stream in workload.streams}
    rows = []
    data_rows = []
    for pid, spec in enumerate(TABLE2_PROGRAMS):
        refs = refs_by_pid.get(pid, 0)
        tlb_misses = stats.tlb_misses_by_pid.get(pid, 0)
        faults = stats.faults_by_pid.get(pid, 0)
        tlb_rate = tlb_misses / refs if refs else 0.0
        fault_rate = faults / refs if refs else 0.0
        rows.append(
            (
                spec.name,
                refs,
                tlb_misses,
                f"{tlb_rate * 100:.2f}%",
                faults,
                f"{fault_rate * 1000:.2f}",
            )
        )
        data_rows.append(
            {
                "name": spec.name,
                "pid": pid,
                "refs": refs,
                "tlb_misses": tlb_misses,
                "tlb_miss_rate": tlb_rate,
                "faults": faults,
                "faults_per_kref": fault_rate * 1000,
            }
        )
    table = render_table(
        f"{TITLE} -- page {page_bytes} B, {format_rate(issue_rate_hz)}",
        headers=("program", "refs", "TLB misses", "TLB rate", "faults", "faults/kref"),
        rows=rows,
        note="Streaming and pointer-chasing programs dominate the fault "
        "budget; loop-dominated fp kernels barely miss the TLB.",
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=table,
        data={"programs": data_rows, "page_bytes": page_bytes},
    )
