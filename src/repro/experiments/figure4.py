"""Figure 4: TLB miss and page fault handling overheads.

"Overhead is the ratio of additional TLB miss and page fault handling
references to the total number of references in the benchmark trace
files.  The baseline hierarchy data is the same across all block
sizes."  The paper observes overheads "as high as 60% ... for small
RAMpage SRAM page sizes, reflecting the relatively small 64-entry TLB".
"""

from __future__ import annotations

from repro.analysis.overheads import overhead_rows
from repro.analysis.report import format_rate, render_bar_chart, render_table
from repro.experiments.runner import ExperimentOutput, Runner

NAME = "figure4"
TITLE = "Figure 4: TLB miss + page fault handling overhead vs page/block size"


def run(runner: Runner | None = None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    rate = runner.config.slow_rate
    grids = [runner.grid("baseline"), runner.grid("rampage")]
    rows = overhead_rows(grids, rate)
    table = render_table(
        f"{TITLE} ({format_rate(rate)})",
        headers=("size", "baseline", "rampage"),
        rows=[
            [
                row["size_bytes"],
                f"{row.get('baseline', float('nan')):.3f}",
                f"{row.get('rampage', float('nan')):.3f}",
            ]
            for row in rows
        ],
        note=(
            "Paper: RAMpage overhead reaches ~60% of trace references at "
            "128-byte pages and falls steeply with page size; the baseline "
            "is flat across block sizes."
        ),
    )
    chart = render_bar_chart(
        "overhead ratio by size",
        {
            grid.label: {
                row["size_bytes"]: row[grid.label]
                for row in rows
                if grid.label in row
            }
            for grid in grids
        },
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=f"{table}\n\n{chart}",
        data={"issue_rate_hz": rate, "rows": rows},
    )
