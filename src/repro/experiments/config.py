"""Experiment configuration and environment overrides.

The paper's full workload (1.1 G references, 500 k-reference time
slices, five issue rates, six sizes) is far beyond what a pure-Python
simulator should chew through by default, so experiments run a reduced
configuration whose *shape* (see DESIGN.md section 7) is preserved:

* ``scale`` multiplies each Table 2 program's reference count,
* ``slice_refs`` is the scheduling quantum.  It is deliberately *not*
  scaled in proportion (that would shrink slices to a few thousand
  references and TLB refill after every switch would swamp the
  measurement); EXPERIMENTS.md discusses the residual distortion.

Environment overrides (picked up by :meth:`ExperimentConfig.from_env`):

=================  =============================================
variable           meaning
=================  =============================================
REPRO_SCALE        workload scale factor (float)
REPRO_SLICE_REFS   scheduling quantum in references (int)
REPRO_RATES        comma-separated issue rates in Hz
REPRO_SIZES        comma-separated block/page sizes in bytes
REPRO_SEED         workload + replacement seed (int)
REPRO_CACHE_DIR    run-record cache directory ('' disables)
REPRO_EVENT_LOG    structured JSONL event-log file ('' disables)
=================  =============================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core.errors import ConfigurationError

DEFAULT_RATES = (200_000_000, 1_000_000_000, 4_000_000_000)
DEFAULT_SIZES = (128, 256, 512, 1024, 2048, 4096)
DEFAULT_CACHE_DIR = Path(".repro_cache")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment."""

    scale: float = 0.003
    slice_refs: int = 20_000
    issue_rates: tuple[int, ...] = DEFAULT_RATES
    sizes: tuple[int, ...] = DEFAULT_SIZES
    seed: int = 0
    cache_dir: Path | None = DEFAULT_CACHE_DIR
    event_log: Path | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if self.slice_refs <= 0:
            raise ConfigurationError(
                f"slice_refs must be positive, got {self.slice_refs}"
            )
        if not self.issue_rates or not self.sizes:
            raise ConfigurationError("issue_rates and sizes must be non-empty")

    @property
    def slow_rate(self) -> int:
        """The Figure 2 issue rate (paper: 200 MHz)."""
        return min(self.issue_rates)

    @property
    def fast_rate(self) -> int:
        """The Figure 3 issue rate (paper: 4 GHz)."""
        return max(self.issue_rates)

    def quick(self) -> "ExperimentConfig":
        """A much smaller variant for tests and smoke runs."""
        return replace(
            self,
            scale=min(self.scale, 0.0002),
            slice_refs=min(self.slice_refs, 4_000),
            issue_rates=(self.slow_rate, self.fast_rate),
            sizes=(128, 1024, 4096),
            cache_dir=None,
        )

    @classmethod
    def from_env(cls, env: dict[str, str] | None = None) -> "ExperimentConfig":
        """Build from defaults plus ``REPRO_*`` environment overrides."""
        env = dict(os.environ) if env is None else env
        kwargs: dict[str, object] = {}
        if "REPRO_SCALE" in env:
            kwargs["scale"] = float(env["REPRO_SCALE"])
        if "REPRO_SLICE_REFS" in env:
            kwargs["slice_refs"] = int(env["REPRO_SLICE_REFS"])
        if "REPRO_RATES" in env:
            kwargs["issue_rates"] = tuple(
                int(float(token)) for token in env["REPRO_RATES"].split(",") if token
            )
        if "REPRO_SIZES" in env:
            kwargs["sizes"] = tuple(
                int(token) for token in env["REPRO_SIZES"].split(",") if token
            )
        if "REPRO_SEED" in env:
            kwargs["seed"] = int(env["REPRO_SEED"])
        if "REPRO_CACHE_DIR" in env:
            raw = env["REPRO_CACHE_DIR"]
            kwargs["cache_dir"] = Path(raw) if raw else None
        if "REPRO_EVENT_LOG" in env:
            raw = env["REPRO_EVENT_LOG"]
            kwargs["event_log"] = Path(raw) if raw else None
        return cls(**kwargs)  # type: ignore[arg-type]
