"""Table 5: 2-way set-associative L2 with scheduled context switches.

"Run times (s) for a 2-way associative L2 cache with context switches.
A context switch trace is inserted between switches from one benchmark
to another; context switches are not taken on misses."  The paper's
point of interest is "the closeness of the RAMpage and 2-way
associative times" (compared in Figure 5).
"""

from __future__ import annotations

from repro.analysis.report import format_rate, render_table
from repro.analysis.runtime import best_cell
from repro.experiments.runner import ExperimentOutput, Runner

NAME = "table5"
TITLE = "Table 5: 2-way associative L2 with scheduled context switches (s)"


def run(runner: Runner | None = None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    twoway = runner.grid("twoway")
    sizes = runner.config.sizes
    rows = []
    summary = []
    for rate in runner.config.issue_rates:
        rows.append(
            [
                format_rate(rate),
                *[f"{twoway.cell(rate, size).seconds:.4f}" for size in sizes],
            ]
        )
        best = best_cell(twoway, rate)
        summary.append(
            {
                "issue_rate_hz": rate,
                "best_s": best.seconds,
                "best_size": best.size_bytes,
            }
        )
    table = render_table(
        TITLE,
        headers=("issue rate", *[str(s) for s in sizes]),
        rows=rows,
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=table,
        data={
            "sizes": list(sizes),
            "twoway_seconds": {
                format_rate(rate): [twoway.cell(rate, s).seconds for s in sizes]
                for rate in runner.config.issue_rates
            },
            "summary": summary,
        },
    )
