"""Multi-seed replication: statistical confidence for simulation claims.

The paper reports single trace-driven runs; with synthetic workloads we
can do better -- regenerate the workload under several seeds and report
mean, standard deviation and a t-based 95% confidence interval for any
scalar metric.  :func:`compare` replicates two machines and tests
whether one is faster with non-overlapping confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from scipy import stats as scipy_stats

from repro.core.errors import ConfigurationError
from repro.core.params import MachineParams
from repro.experiments.config import ExperimentConfig
from repro.systems.base import SimulationResult
from repro.systems.simulator import simulate
from repro.trace.synthetic import build_workload

MetricFn = Callable[[SimulationResult], float]


def seconds_metric(result: SimulationResult) -> float:
    """The default metric: simulated run time in seconds."""
    return result.seconds


@dataclass(frozen=True)
class ReplicationResult:
    """Summary statistics of one metric across seeds."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci95_low: float
    ci95_high: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ReplicationResult":
        if len(values) < 2:
            raise ConfigurationError(
                f"replication needs at least 2 seeds, got {len(values)}"
            )
        values = tuple(float(v) for v in values)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = var**0.5
        half_width = float(
            scipy_stats.t.ppf(0.975, df=n - 1) * std / n**0.5
        )
        return cls(
            values=values,
            mean=mean,
            std=std,
            ci95_low=mean - half_width,
            ci95_high=mean + half_width,
        )

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (0 when the mean is 0)."""
        return self.std / self.mean if self.mean else 0.0

    def overlaps(self, other: "ReplicationResult") -> bool:
        """True when the two 95% confidence intervals overlap."""
        return self.ci95_low <= other.ci95_high and other.ci95_low <= self.ci95_high


def replicate(
    params: MachineParams,
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metric: MetricFn = seconds_metric,
) -> ReplicationResult:
    """Run one machine under several workload seeds."""
    values = []
    for seed in seeds:
        programs = build_workload(config.scale, seed=seed)
        result = simulate(params, programs, slice_refs=config.slice_refs)
        values.append(metric(result))
    return ReplicationResult.from_values(values)


def compare(
    a: MachineParams,
    b: MachineParams,
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metric: MetricFn = seconds_metric,
) -> dict[str, object]:
    """Replicate two machines and summarise the comparison.

    Returns the two :class:`ReplicationResult` values, the mean speedup
    of ``b`` over ``a`` (``a.mean / b.mean - 1``), and whether the
    confidence intervals separate (``significant``).
    """
    result_a = replicate(a, config, seeds, metric)
    result_b = replicate(b, config, seeds, metric)
    return {
        "a": result_a,
        "b": result_b,
        "speedup_b_over_a": result_a.mean / result_b.mean - 1.0,
        "significant": not result_a.overlaps(result_b),
    }
