"""Multi-seed replication: statistical confidence for simulation claims.

The paper reports single trace-driven runs; with synthetic workloads we
can do better -- regenerate the workload under several seeds and report
mean, standard deviation and a t-based 95% confidence interval for any
scalar metric.  :func:`compare` replicates two machines and tests
whether one is faster with non-overlapping confidence intervals.

Seeds are independent simulations, so ``workers > 1`` farms them out to
a process pool (metrics are still applied in the parent, so arbitrary
callables -- lambdas included -- stay usable).  Results come back in
seed order regardless of completion order, and any pool failure falls
back to the serial loop.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Sequence

from scipy import stats as scipy_stats

from repro.core.errors import ConfigurationError
from repro.core.observe import EventLog
from repro.core.params import MachineParams
from repro.core.timer import ScopedTimer
from repro.experiments.config import ExperimentConfig
from repro.systems.base import SimulationResult
from repro.systems.simulator import simulate
from repro.trace.synthetic import build_workload

MetricFn = Callable[[SimulationResult], float]


def seconds_metric(result: SimulationResult) -> float:
    """The default metric: simulated run time in seconds."""
    return result.seconds


@dataclass(frozen=True)
class ReplicationResult:
    """Summary statistics of one metric across seeds."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci95_low: float
    ci95_high: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ReplicationResult":
        if len(values) < 2:
            raise ConfigurationError(
                f"replication needs at least 2 seeds, got {len(values)}"
            )
        values = tuple(float(v) for v in values)
        n = len(values)
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = var**0.5
        half_width = float(
            scipy_stats.t.ppf(0.975, df=n - 1) * std / n**0.5
        )
        return cls(
            values=values,
            mean=mean,
            std=std,
            ci95_low=mean - half_width,
            ci95_high=mean + half_width,
        )

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (0 when the mean is 0)."""
        return self.std / self.mean if self.mean else 0.0

    def overlaps(self, other: "ReplicationResult") -> bool:
        """True when the two 95% confidence intervals overlap."""
        return self.ci95_low <= other.ci95_high and other.ci95_low <= self.ci95_high


def _simulate_seed(
    params: MachineParams, scale: float, slice_refs: int, seed: int
) -> SimulationResult:
    """One seed's simulation (top-level so worker processes can run it)."""
    programs = build_workload(scale, seed=seed)
    return simulate(params, programs, slice_refs=slice_refs)


def _run_seeds(
    params: MachineParams,
    config: ExperimentConfig,
    seeds: Sequence[int],
    workers: int,
) -> list[SimulationResult]:
    """Simulate every seed, in seed order, with up to ``workers`` processes."""
    if workers > 1 and len(seeds) > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(seeds))
            ) as pool:
                return list(
                    pool.map(
                        _simulate_seed,
                        repeat(params),
                        repeat(config.scale),
                        repeat(config.slice_refs),
                        seeds,
                    )
                )
        except Exception:
            pass  # pool unavailable: fall through to the serial loop
    return [
        _simulate_seed(params, config.scale, config.slice_refs, seed)
        for seed in seeds
    ]


def replicate(
    params: MachineParams,
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metric: MetricFn = seconds_metric,
    workers: int = 1,
    events: EventLog | None = None,
) -> ReplicationResult:
    """Run one machine under several workload seeds.

    Duplicate seeds are a configuration error: they would silently
    shrink the effective sample and understate the variance, so the
    mistake is rejected up front rather than folded into the stats.
    """
    seeds = tuple(seeds)
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"replication seeds must be unique, got {seeds}")
    if events is not None:
        events.emit(
            "replication_started",
            kind=params.kind,
            seeds=list(seeds),
            workers=workers,
        )
    with ScopedTimer() as timer:
        results = _run_seeds(params, config, seeds, workers)
        summary = ReplicationResult.from_values([metric(r) for r in results])
    if events is not None:
        events.emit(
            "replication_completed",
            kind=params.kind,
            seeds=list(seeds),
            mean=summary.mean,
            std=summary.std,
            wall_s=round(timer.elapsed, 6),
        )
    return summary


def compare(
    a: MachineParams,
    b: MachineParams,
    config: ExperimentConfig,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metric: MetricFn = seconds_metric,
    workers: int = 1,
    events: EventLog | None = None,
) -> dict[str, object]:
    """Replicate two machines and summarise the comparison.

    Returns the two :class:`ReplicationResult` values, the mean speedup
    of ``b`` over ``a`` (``a.mean / b.mean - 1``), and whether the
    confidence intervals separate (``significant``).
    """
    result_a = replicate(a, config, seeds, metric, workers, events)
    result_b = replicate(b, config, seeds, metric, workers, events)
    return {
        "a": result_a,
        "b": result_b,
        "speedup_b_over_a": result_a.mean / result_b.mean - 1.0,
        "significant": not result_a.overlaps(result_b),
    }
