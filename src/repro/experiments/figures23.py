"""Figures 2 and 3: fraction of run time per hierarchy level.

Figure 2 plots the per-level time breakdown against block/page size at
a 200 MHz issue rate, for (a) the direct-mapped-L2 machine and (b)
RAMpage; Figure 3 repeats it at 4 GHz.  "The differences between the
two figures illustrate the effect of scaling CPU speed up without
improving DRAM speed: the RAMpage system is more tolerant of the
increased DRAM latency."
"""

from __future__ import annotations

from repro.analysis.fractions import LEVEL_ORDER, level_fraction_rows
from repro.analysis.report import format_rate, render_table
from repro.experiments.runner import ExperimentOutput, Runner


def _panel(runner: Runner, label: str, rate: int, sram_label: str) -> tuple[str, list[dict]]:
    grid = runner.grid(label)
    rows = level_fraction_rows(grid, rate)
    headers = ("size", "l1i", "l1d", sram_label, "dram", "other")
    table = render_table(
        f"({label}) fraction of simulated run time per level, {format_rate(rate)}",
        headers=headers,
        rows=[
            [row["size_bytes"], *[f"{row[level]:.3f}" for level in LEVEL_ORDER]]
            for row in rows
        ],
    )
    return table, rows


def _run_figure(name: str, rate_attr: str, runner: Runner | None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    rate = getattr(runner.config, rate_attr)
    title = (
        f"Figure {'2' if rate_attr == 'slow_rate' else '3'}: fraction of run "
        f"time in each hierarchy level at {format_rate(rate)}"
    )
    base_table, base_rows = _panel(runner, "baseline", rate, "l2")
    ramp_table, ramp_rows = _panel(runner, "rampage", rate, "sram")
    note = (
        "Note: the 'l2' column is the SRAM main memory for the RAMpage "
        "panel; 'l1d' is purely inclusion maintenance (data hits are fully "
        "pipelined)."
    )
    return ExperimentOutput(
        name=name,
        title=title,
        text=f"{title}\n\n{base_table}\n\n{ramp_table}\n\n{note}",
        data={
            "issue_rate_hz": rate,
            "baseline": base_rows,
            "rampage": ramp_rows,
        },
    )


def run_figure2(runner: Runner | None = None) -> ExperimentOutput:
    """Figure 2: level fractions at the slowest swept issue rate."""
    return _run_figure("figure2", "slow_rate", runner)


def run_figure3(runner: Runner | None = None) -> ExperimentOutput:
    """Figure 3: level fractions at the fastest swept issue rate."""
    return _run_figure("figure3", "fast_rate", runner)
