"""Table 4: RAMpage with context switches on misses.

"Run times (s) for RAMpage with context switches on misses.  The
'vs. no switch' numbers are speedup over RAMpage without context
switches."  The paper reports a modest improvement, "up to 16% in the
4GHz case over the best RAMpage time without context switches on
misses", and that larger page sizes become more viable as CPU speed
increases.
"""

from __future__ import annotations

from repro.analysis.report import format_rate, render_table
from repro.analysis.runtime import best_cell, speedup
from repro.experiments.runner import ExperimentOutput, Runner

NAME = "table4"
TITLE = (
    "Table 4: RAMpage with context switches on misses; 'vs no switch' is "
    "speedup of the per-rate best over the best no-switch RAMpage time"
)


def run(runner: Runner | None = None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    som = runner.grid("rampage_som")
    plain = runner.grid("rampage")
    sizes = runner.config.sizes
    rows = []
    summary = []
    for rate in runner.config.issue_rates:
        row = [f"{som.cell(rate, size).seconds:.4f}" for size in sizes]
        best_som = best_cell(som, rate)
        best_plain = best_cell(plain, rate)
        gain = speedup(best_plain, best_som)
        rows.append([format_rate(rate), *row, f"{gain * 100:+.1f}%"])
        summary.append(
            {
                "issue_rate_hz": rate,
                "best_som_s": best_som.seconds,
                "best_som_size": best_som.size_bytes,
                "best_plain_s": best_plain.seconds,
                "best_plain_size": best_plain.size_bytes,
                "speedup_vs_no_switch": gain,
            }
        )
    table = render_table(
        TITLE,
        headers=("issue rate", *[str(s) for s in sizes], "vs no switch"),
        rows=rows,
        note=(
            "Paper: up to +16% at 4GHz; larger pages become more viable as "
            "the CPU speeds up."
        ),
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=table,
        data={
            "sizes": list(sizes),
            "som_seconds": {
                format_rate(rate): [som.cell(rate, s).seconds for s in sizes]
                for rate in runner.config.issue_rates
            },
            "summary": summary,
        },
    )
