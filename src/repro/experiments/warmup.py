"""Warm-up occupancy: section 4.2's fill-time claim.

"For 128-byte SRAM pages, it takes about 50-million references before
every page in the RAMpage SRAM main memory is occupied; this figure
drops off with page size to about 25-million references before all
pages in the 4 Kbyte pagesize simulation have been occupied at least
once."

This experiment drives the RAMpage machine and records, per page size,
how many workload references it takes to reach 50% / 90% / 100%
occupancy of the user frames.  At reduced workload scale the absolute
counts shrink with the trace, so the *ratio* between the 128-byte and
4 KB fill times (paper: about 2x) is the reproduced quantity.
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.experiments.runner import ExperimentOutput, Runner
from repro.systems.factory import build_system, rampage_machine
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import build_workload

NAME = "warmup"
TITLE = (
    "Warm-up: workload references until the RAMpage SRAM main memory is "
    "occupied (section 4.2)"
)

MILESTONES = (0.5, 0.9, 1.0)


def occupancy_curve(
    page_bytes: int,
    scale: float,
    slice_refs: int,
    seed: int,
    issue_rate_hz: int = 1_000_000_000,
) -> dict[str, object]:
    """Refs-to-occupancy milestones for one page size."""
    system = build_system(rampage_machine(issue_rate_hz, page_bytes))
    workload = InterleavedWorkload(
        build_workload(scale, seed=seed), slice_refs=slice_refs
    )
    capacity = system.sram.user_frames
    milestones_left = list(MILESTONES)
    reached: dict[float, int] = {}
    consumed = 0
    while milestones_left:
        chunk = workload.next_chunk()
        if chunk is None:
            break
        consumed += system.run_chunk(chunk)
        occupancy = system.sram.resident_pages() / capacity
        while milestones_left and occupancy >= milestones_left[0]:
            reached[milestones_left.pop(0)] = consumed
    return {
        "page_bytes": page_bytes,
        "frames": capacity,
        "milestones": reached,
        "workload_refs": consumed,
        "final_occupancy": system.sram.resident_pages() / capacity,
    }


def run(runner: Runner | None = None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    config = runner.config
    curves = [
        occupancy_curve(page, config.scale, config.slice_refs, config.seed)
        for page in (128, 1024, 4096)
    ]
    rows = []
    for curve in curves:
        milestones = curve["milestones"]
        rows.append(
            (
                curve["page_bytes"],
                curve["frames"],
                milestones.get(0.5, "-"),
                milestones.get(0.9, "-"),
                milestones.get(1.0, "-"),
                f"{curve['final_occupancy']:.2f}",
            )
        )
    note_lines = []
    full_128 = curves[0]["milestones"].get(1.0)
    full_4k = curves[-1]["milestones"].get(1.0)
    if full_128 and full_4k:
        note_lines.append(
            f"fill-time ratio 128B/4096B = {full_128 / full_4k:.2f} "
            "(paper: ~50M/25M = 2.0 at full scale)"
        )
    table = render_table(
        TITLE,
        headers=("page", "frames", "refs@50%", "refs@90%", "refs@100%", "final"),
        rows=rows,
        note="; ".join(note_lines),
    )
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=table,
        data={"curves": curves},
    )
