"""Figure 5: RAMpage (switch on miss) vs 2-way associative L2.

"RAMpage (context switches on misses) speed vs. 2-way associative L2
cache for a range of CPU speeds.  The relative measure is n, where n
means 1.n times slower than the best time for each CPU speed."  The
paper notes "the closeness of the RAMpage and 2-way associative times"
and that "larger block sizes become favourable for the 2-way
associative hierarchy as the CPU-DRAM speed gap grows".
"""

from __future__ import annotations

from repro.analysis.relative import relative_speed_rows
from repro.analysis.report import format_rate, render_table
from repro.experiments.runner import ExperimentOutput, Runner

NAME = "figure5"
TITLE = (
    "Figure 5: relative slowdown (n = 1.n x slower than the per-rate best) "
    "of RAMpage+switch-on-miss vs 2-way L2"
)


def run(runner: Runner | None = None) -> ExperimentOutput:
    runner = runner if runner is not None else Runner()
    grids = [runner.grid("rampage_som"), runner.grid("twoway")]
    sections = []
    data: dict[str, object] = {"rates": []}
    for rate in runner.config.issue_rates:
        rows = relative_speed_rows(grids, rate)
        table = render_table(
            f"relative slowdown at {format_rate(rate)}",
            headers=("size", "rampage_som", "twoway"),
            rows=[
                [
                    row["size_bytes"],
                    f"{row.get('rampage_som', float('nan')):.3f}",
                    f"{row.get('twoway', float('nan')):.3f}",
                ]
                for row in rows
            ],
        )
        sections.append(table)
        data["rates"].append({"issue_rate_hz": rate, "rows": rows})
    return ExperimentOutput(
        name=NAME,
        title=TITLE,
        text=TITLE + "\n\n" + "\n\n".join(sections),
        data=data,
    )
