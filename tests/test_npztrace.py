"""Tests for the binary .npz trace format."""

import numpy as np
import pytest

from repro.core.errors import TraceFormatError
from repro.trace import dinero, npztrace
from repro.trace.benchmarks import table2_catalog
from repro.trace.record import READ, Reference, TraceChunk
from repro.trace.synthetic import SyntheticProgram


def sample_chunks():
    spec = table2_catalog()["sed"]
    return list(SyntheticProgram(spec, total_refs=5_000, pid=2, seed=1).chunks())


def flatten(chunks):
    return [
        (chunk.pid, int(k), int(a))
        for chunk in chunks
        for k, a in zip(chunk.kinds, chunk.addrs)
    ]


def test_round_trip(tmp_path):
    path = tmp_path / "trace.npz"
    chunks = sample_chunks()
    written = npztrace.write_npz(path, chunks)
    assert written == 5_000
    out = list(npztrace.read_npz(path))
    assert flatten(out) == flatten(chunks)


def test_rechunking_at_pid_changes(tmp_path):
    path = tmp_path / "trace.npz"
    chunks = [
        TraceChunk.from_references([Reference(READ, 4, pid=0)] * 10),
        TraceChunk.from_references([Reference(READ, 8, pid=1)] * 5),
        TraceChunk.from_references([Reference(READ, 12, pid=0)] * 3),
    ]
    npztrace.write_npz(path, chunks)
    out = list(npztrace.read_npz(path))
    assert [(c.pid, len(c)) for c in out] == [(0, 10), (1, 5), (0, 3)]


def test_chunk_refs_cap(tmp_path):
    path = tmp_path / "trace.npz"
    npztrace.write_npz(path, sample_chunks())
    out = list(npztrace.read_npz(path, chunk_refs=512))
    assert all(len(c) <= 512 for c in out)
    assert sum(len(c) for c in out) == 5_000


def test_round_trip_at_non_default_chunk_refs(tmp_path):
    """A program generated at a non-default (non-power-of-two, non
    GEN_BLOCK-divisor) chunk granularity round-trips exactly, and reads
    back at that same granularity re-chunk without loss."""
    path = tmp_path / "trace.npz"
    spec = table2_catalog()["sed"]
    chunks = list(
        SyntheticProgram(spec, total_refs=5_000, pid=1, seed=3, chunk_refs=777).chunks()
    )
    assert npztrace.write_npz(path, chunks) == 5_000
    out = list(npztrace.read_npz(path, chunk_refs=777))
    assert all(len(c) <= 777 for c in out)
    assert flatten(out) == flatten(chunks)


def test_empty_stream(tmp_path):
    path = tmp_path / "trace.npz"
    assert npztrace.write_npz(path, []) == 0
    assert list(npztrace.read_npz(path)) == []


def test_smaller_than_din(tmp_path):
    chunks = sample_chunks()
    din_path = tmp_path / "t.din"
    npz_path = tmp_path / "t.npz"
    dinero.write_din(din_path, chunks)
    npztrace.write_npz(npz_path, chunks)
    assert npz_path.stat().st_size < din_path.stat().st_size / 2


def test_rejects_non_trace_npz(tmp_path):
    path = tmp_path / "bogus.npz"
    np.savez(path, something=np.arange(3))
    with pytest.raises(TraceFormatError):
        list(npztrace.read_npz(path))


def test_rejects_bad_kinds(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(
        path,
        version=np.int32(1),
        kinds=np.array([9], dtype=np.uint8),
        addrs=np.array([0], dtype=np.uint64),
        pids=np.array([0], dtype=np.int32),
    )
    with pytest.raises(TraceFormatError):
        list(npztrace.read_npz(path))


def test_rejects_wrong_version(tmp_path):
    path = tmp_path / "old.npz"
    np.savez(
        path,
        version=np.int32(99),
        kinds=np.empty(0, dtype=np.uint8),
        addrs=np.empty(0, dtype=np.uint64),
        pids=np.empty(0, dtype=np.int32),
    )
    with pytest.raises(TraceFormatError):
        list(npztrace.read_npz(path))
