"""Tests for experiment configuration and env overrides."""

from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.config import DEFAULT_SIZES, ExperimentConfig


def test_defaults_are_sane():
    config = ExperimentConfig()
    assert config.sizes == DEFAULT_SIZES
    assert config.slow_rate == 200_000_000
    assert config.fast_rate == 4_000_000_000


def test_quick_shrinks_everything():
    quick = ExperimentConfig().quick()
    assert quick.scale <= 0.0002
    assert quick.cache_dir is None
    assert len(quick.issue_rates) == 2


def test_from_env_overrides():
    env = {
        "REPRO_SCALE": "0.01",
        "REPRO_SLICE_REFS": "1234",
        "REPRO_RATES": "200000000,1e9",
        "REPRO_SIZES": "128,4096",
        "REPRO_SEED": "42",
        "REPRO_CACHE_DIR": "/tmp/somewhere",
    }
    config = ExperimentConfig.from_env(env)
    assert config.scale == 0.01
    assert config.slice_refs == 1234
    assert config.issue_rates == (200_000_000, 1_000_000_000)
    assert config.sizes == (128, 4096)
    assert config.seed == 42
    assert config.cache_dir == Path("/tmp/somewhere")


def test_from_env_empty_cache_dir_disables():
    config = ExperimentConfig.from_env({"REPRO_CACHE_DIR": ""})
    assert config.cache_dir is None


def test_from_env_event_log():
    config = ExperimentConfig.from_env({"REPRO_EVENT_LOG": "/tmp/events.jsonl"})
    assert config.event_log == Path("/tmp/events.jsonl")
    assert ExperimentConfig.from_env({"REPRO_EVENT_LOG": ""}).event_log is None
    assert ExperimentConfig.from_env({}).event_log is None


def test_from_env_ignores_unrelated(monkeypatch):
    config = ExperimentConfig.from_env({})
    assert config == ExperimentConfig()


def test_rejects_bad_scale():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(scale=0)


def test_rejects_empty_axes():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(issue_rates=())
    with pytest.raises(ConfigurationError):
        ExperimentConfig(sizes=())
