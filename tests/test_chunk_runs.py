"""Tests for TraceChunk's cached views and run pre-translation.

The vectorized hot loops trust :class:`ChunkRuns` to partition a chunk
into maximal same-L1-block, same-class runs; these tests pin that
structure against a scalar re-derivation and exercise the cache-sharing
semantics of :meth:`TraceChunk.tail` and :meth:`TraceChunk.head`.
"""

import numpy as np
from helpers import random_chunks

from repro.trace.record import IFETCH, WRITE, TraceChunk, empty_chunk

PAGE_BITS = 12
L1_BLOCK_BITS = 5
VPN_SPACE_BITS = 20
GEOMETRY = (PAGE_BITS, L1_BLOCK_BITS, VPN_SPACE_BITS)


def scalar_runs(chunk):
    """Reference derivation, one reference at a time."""
    runs = []
    page_mask = (1 << PAGE_BITS) - 1
    for i, (kind, addr) in enumerate(
        zip(chunk.kinds.tolist(), chunk.addrs.tolist())
    ):
        vblock = addr >> L1_BLOCK_BITS
        is_ifetch = kind == IFETCH
        if runs and runs[-1]["vblock"] == vblock and runs[-1]["is_ifetch"] == is_ifetch:
            runs[-1]["length"] += 1
            runs[-1]["writes"] += int(kind == WRITE)
        else:
            offset = addr & page_mask
            runs.append(
                {
                    "start": i,
                    "length": 1,
                    "vblock": vblock,
                    "is_ifetch": is_ifetch,
                    "writes": int(kind == WRITE),
                    "first_kind": kind,
                    "gvpn": (chunk.pid << VPN_SPACE_BITS) | (addr >> PAGE_BITS),
                    "offset": offset,
                    "bip": offset >> L1_BLOCK_BITS,
                }
            )
    return runs


def assert_runs_match(runs, expected, n):
    assert runs.n == n
    assert runs.starts == [r["start"] for r in expected]
    assert runs.lengths == [r["length"] for r in expected]
    assert runs.gvpns == [r["gvpn"] for r in expected]
    assert runs.offsets == [r["offset"] for r in expected]
    assert runs.bips == [r["bip"] for r in expected]
    assert runs.is_ifetch == [r["is_ifetch"] for r in expected]
    assert runs.writes == [r["writes"] for r in expected]
    assert runs.first_kinds == [r["first_kind"] for r in expected]


def test_runs_match_scalar_derivation():
    for chunk in random_chunks(7):
        runs = chunk.runs_for(*GEOMETRY)
        assert_runs_match(runs, scalar_runs(chunk), len(chunk))


def test_runs_split_on_class_change_within_a_block():
    # Same L1 block throughout, but ifetch/data alternation must split.
    chunk = TraceChunk(
        pid=0,
        kinds=np.array([IFETCH, IFETCH, 0, WRITE, IFETCH], dtype=np.uint8),
        addrs=np.array([0x100, 0x104, 0x108, 0x10C, 0x110], dtype=np.uint64),
    )
    runs = chunk.runs_for(*GEOMETRY)
    assert runs.starts == [0, 2, 4]
    assert runs.lengths == [2, 2, 1]
    assert runs.is_ifetch == [True, False, True]
    assert runs.writes == [0, 1, 0]


def test_runs_cached_and_keyed_by_geometry():
    chunk = random_chunks(3, n_chunks=1)[0]
    first = chunk.runs_for(*GEOMETRY)
    assert chunk.runs_for(*GEOMETRY) is first
    other = chunk.runs_for(PAGE_BITS, L1_BLOCK_BITS + 1, VPN_SPACE_BITS)
    assert other is not first
    assert other.key != first.key
    # The map keeps both: returning to the first geometry is a hit.
    assert chunk.runs_for(*GEOMETRY) is first
    assert chunk.runs_for(PAGE_BITS, L1_BLOCK_BITS + 1, VPN_SPACE_BITS) is other


def test_alternating_geometries_compute_once_each(monkeypatch):
    """Two geometries alternating over one chunk (the page-size-sweep
    pattern over a shared materialized chunk) must not thrash: one
    ``_compute_runs`` call per geometry, every later probe a hit."""
    import repro.trace.record as record_mod

    chunk = random_chunks(13, n_chunks=1)[0]
    calls = []
    real = record_mod._compute_runs

    def counting(chunk_, *geometry):
        calls.append(geometry)
        return real(chunk_, *geometry)

    monkeypatch.setattr(record_mod, "_compute_runs", counting)
    small = (7, L1_BLOCK_BITS, VPN_SPACE_BITS)
    large = (12, L1_BLOCK_BITS, VPN_SPACE_BITS)
    for _ in range(4):
        chunk.runs_for(*small)
        chunk.runs_for(*large)
    assert calls == [small, large]


def test_runs_map_is_bounded():
    chunk = random_chunks(17, n_chunks=1)[0]
    limit = TraceChunk.RUNS_CACHE_MAX
    for extra in range(limit + 3):
        chunk.runs_for(PAGE_BITS, L1_BLOCK_BITS, VPN_SPACE_BITS + extra)
    assert len(chunk._runs) == limit
    # FIFO: the oldest geometries were evicted, the newest survive.
    assert (PAGE_BITS, L1_BLOCK_BITS, VPN_SPACE_BITS + limit + 2) in chunk._runs
    assert (PAGE_BITS, L1_BLOCK_BITS, VPN_SPACE_BITS) not in chunk._runs


def test_empty_chunk_has_empty_runs():
    runs = empty_chunk().runs_for(*GEOMETRY)
    assert runs.n == 0
    assert runs.starts == []


def forbid_compute(monkeypatch):
    """Make any full run recomputation fail the test."""
    import repro.trace.record as record_mod

    def boom(*args):
        raise AssertionError("_compute_runs called; expected derivation")

    monkeypatch.setattr(record_mod, "_compute_runs", boom)


def test_tail_slices_runs_at_run_boundary(monkeypatch):
    chunk = random_chunks(11, n_chunks=1)[0]
    runs = chunk.runs_for(*GEOMETRY)
    cut = runs.starts[len(runs.starts) // 2]
    fresh = TraceChunk(
        pid=chunk.pid, kinds=chunk.kinds[cut:], addrs=chunk.addrs[cut:]
    ).runs_for(*GEOMETRY)
    tail = chunk.tail(cut)
    assert tail._runs_src is not None  # linked, not recomputed
    forbid_compute(monkeypatch)
    sliced = tail.runs_for(*GEOMETRY)
    assert sliced.starts == fresh.starts
    assert sliced.lengths == fresh.lengths
    assert sliced.gvpns == fresh.gvpns
    assert sliced.writes == fresh.writes
    assert sliced.n == fresh.n


def test_tail_mid_run_recomputes():
    # A cut inside a run cannot be patched up; the tail must recompute.
    chunk = TraceChunk(
        pid=0,
        kinds=np.array([0, 0, 0, 0], dtype=np.uint8),
        addrs=np.array([0x100, 0x104, 0x108, 0x10C], dtype=np.uint64),
    )
    chunk.runs_for(*GEOMETRY)
    tail = chunk.tail(2)
    assert tail._runs is None
    runs = tail.runs_for(*GEOMETRY)
    assert runs.starts == [0]
    assert runs.lengths == [2]


def test_chained_splits_derive_through_original_parent(monkeypatch):
    """tail-of-tail and head-of-tail keep one link to the chunk that
    actually holds the runs, so repeated preemption splits stay O(1)
    at split time and derive only the requested geometry on use."""
    chunk = random_chunks(15, n_chunks=1)[0]
    runs = chunk.runs_for(*GEOMETRY)
    other = (PAGE_BITS + 1, L1_BLOCK_BITS, VPN_SPACE_BITS)
    chunk.runs_for(*other)
    cut_a = runs.starts[len(runs.starts) // 3]
    cut_b = runs.starts[2 * len(runs.starts) // 3] - cut_a
    tail = chunk.tail(cut_a)
    deeper = tail.tail(cut_b)
    assert deeper._runs_src is not None
    assert deeper._runs_src[0] is chunk  # not the intermediate tail
    forbid_compute(monkeypatch)
    derived = deeper.runs_for(*GEOMETRY)
    assert derived.n == len(chunk) - cut_a - cut_b
    # Only the geometry actually asked for was materialised.
    assert list(deeper._runs) == [GEOMETRY]


def test_tail_and_head_share_list_caches():
    chunk = random_chunks(5, n_chunks=1)[0]
    kinds = chunk.kinds_list
    addrs = chunk.addrs_list
    tail = chunk.tail(100)
    head = chunk.head(100)
    assert tail._kinds_list == kinds[100:]
    assert tail._addrs_list == addrs[100:]
    assert head._kinds_list == kinds[:100]
    assert head._addrs_list == addrs[:100]
    # numpy halves are views of the same buffers, not copies
    assert tail.addrs.base is not None
    assert head.addrs.base is not None


def test_head_inherits_truncated_runs(monkeypatch):
    """Heads link run structures forward; a cut mid-run fixes up the
    truncated run's length and write count against scalar derivation."""
    chunks = [random_chunks(9, n_chunks=1)[0] for _ in (1, 2, 97, 100, 255)]
    for chunk in chunks:
        chunk.runs_for(*GEOMETRY)
    forbid_compute(monkeypatch)
    for cut, chunk in zip((1, 2, 97, 100, 255), chunks):
        head = chunk.head(cut)
        assert head._runs_src is not None  # linked, not dropped
        assert_runs_match(head.runs_for(*GEOMETRY), scalar_runs(head), cut)


def test_head_prefix_at_run_boundary_and_full_length():
    chunk = random_chunks(21, n_chunks=1)[0]
    runs = chunk.runs_for(*GEOMETRY)
    boundary = runs.starts[len(runs.starts) // 2]
    head = chunk.head(boundary)
    assert_runs_match(head.runs_for(*GEOMETRY), scalar_runs(head), boundary)
    whole = chunk.head(len(chunk))
    assert whole.runs_for(*GEOMETRY) is runs  # full-length prefix is free


def test_list_caches_match_arrays():
    chunk = random_chunks(1, n_chunks=1)[0]
    assert chunk.kinds_list == chunk.kinds.tolist()
    assert chunk.addrs_list == chunk.addrs.tolist()
    assert chunk.kinds_list is chunk.kinds_list  # cached, not rebuilt
