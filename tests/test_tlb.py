"""Tests for the TLB."""

from hypothesis import given, settings, strategies as st

from repro.core.params import TlbParams
from repro.core.rng import XorShiftRNG
from repro.mem.tlb import TLB


def make_tlb(entries=8, associativity=0, seed=1):
    return TLB(TlbParams(entries=entries, associativity=associativity), XorShiftRNG(seed))


class TestBasics:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(5) is None
        tlb.insert(5, 77)
        assert tlb.lookup(5) == 77
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_insert_updates_existing(self):
        tlb = make_tlb()
        tlb.insert(5, 1)
        assert tlb.insert(5, 2) is None
        assert tlb.lookup(5) == 2
        assert len(tlb) == 1

    def test_capacity_eviction(self):
        tlb = make_tlb(entries=4)
        for vpn in range(4):
            assert tlb.insert(vpn, vpn) is None
        evicted = tlb.insert(99, 99)
        assert evicted in range(4)
        assert len(tlb) == 4
        assert tlb.peek(evicted) is None

    def test_peek_does_not_count(self):
        tlb = make_tlb()
        tlb.peek(3)
        assert tlb.hits == 0 and tlb.misses == 0


class TestFlush:
    def test_flush_vpn(self):
        tlb = make_tlb()
        tlb.insert(5, 1)
        assert tlb.flush_vpn(5)
        assert tlb.peek(5) is None
        assert not tlb.flush_vpn(5)
        assert tlb.flushes == 1

    def test_flush_all(self):
        tlb = make_tlb()
        for vpn in range(6):
            tlb.insert(vpn, vpn)
        assert tlb.flush_all() == 6
        assert len(tlb) == 0

    def test_reinsert_after_flush(self):
        tlb = make_tlb(entries=4)
        for vpn in range(4):
            tlb.insert(vpn, vpn)
        tlb.flush_vpn(2)
        assert tlb.insert(9, 9) is None  # freed slot reused, no eviction


class TestSetAssociative:
    def _colliders(self, tlb, count):
        """First `count` vpns hashing to the same set as vpn 0."""
        target = tlb._set_of(0)
        found = [0]
        vpn = 1
        while len(found) < count:
            if tlb._set_of(vpn) == target:
                found.append(vpn)
            vpn += 1
        return found

    def test_two_way_set_conflict(self):
        tlb = make_tlb(entries=8, associativity=2)  # 4 sets
        a, b, c = self._colliders(tlb, 3)
        tlb.insert(a, a)
        tlb.insert(b, b)
        evicted = tlb.insert(c, c)
        assert evicted in (a, b)
        assert tlb.peek(c) == c

    def test_different_sets_do_not_conflict(self):
        tlb = make_tlb(entries=8, associativity=2)  # 4 sets
        # Pick one vpn per set: all four coexist without eviction.
        per_set = {}
        vpn = 0
        while len(per_set) < 4:
            per_set.setdefault(tlb._set_of(vpn), vpn)
            vpn += 1
        for v in per_set.values():
            assert tlb.insert(v, v) is None
        assert all(tlb.peek(v) == v for v in per_set.values())

    def test_hashed_index_spreads_shared_region_bases(self):
        """Regression: 18 processes' identical stack vpns must not all
        land in one set (the low-bit-indexing artifact)."""
        tlb = make_tlb(entries=1024, associativity=2)  # 512 sets
        stack_vpn = 0x7000_0000 >> 12
        sets = {tlb._set_of((pid << 20) | stack_vpn) for pid in range(18)}
        assert len(sets) >= 12

    def test_future_work_tlb_shape(self):
        tlb = make_tlb(entries=1024, associativity=2)
        assert tlb.num_sets == 512


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=100), st.booleans()),
        max_size=200,
    ),
    entries=st.sampled_from([4, 16, 64]),
    assoc=st.sampled_from([0, 2]),
)
def test_property_invariants_hold(ops, entries, assoc):
    """Random insert/flush sequences never corrupt internal state."""
    tlb = make_tlb(entries=entries, associativity=assoc, seed=9)
    for vpn, is_flush in ops:
        if is_flush:
            tlb.flush_vpn(vpn)
        else:
            if tlb.lookup(vpn) is None:
                tlb.insert(vpn, vpn * 3)
        tlb.check_invariants()
    assert len(tlb) <= entries
