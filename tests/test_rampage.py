"""Behavioural tests for the RAMpage machine."""


from repro.core.params import (
    KIB,
    HandlerCosts,
    MachineParams,
    RampageParams,
)
from repro.mem.inverted_page_table import FREE
from repro.systems.rampage import DRAM_TABLE_ENTRY_BYTES, RampageSystem
from repro.trace.record import IFETCH, READ, WRITE

NO_HANDLERS = HandlerCosts(
    tlb_instr=0,
    tlb_data=0,
    tlb_probe_instr=0,
    tlb_probe_data=0,
    fault_instr=0,
    fault_data=0,
    switch_instr=0,
    switch_data=0,
)


def machine(
    page=128,
    rate=1_000_000_000,
    handlers=NO_HANDLERS,
    base_kib=None,
    switch_on_miss=False,
    standby=0,
    **kw,
):
    rampage = RampageParams(
        page_bytes=page,
        standby_pages=standby,
        **({"base_bytes": base_kib * KIB, "pinned_code_data_bytes": 2 * KIB,
            "ipt_entry_bytes": 16} if base_kib else {}),
    )
    return RampageSystem(
        MachineParams(
            kind="rampage",
            issue_rate_hz=rate,
            rampage=rampage,
            handlers=handlers,
            switch_on_miss=switch_on_miss,
            scheduled_switches=switch_on_miss,
            **kw,
        )
    )


class TestExactTiming:
    def test_cold_ifetch_cost(self):
        """Fault: DRAM table entry read + page fetch, then L1 fill."""
        system = machine(page=128)
        system.access(IFETCH, 0x1000)
        table_ps = 50_000 + (DRAM_TABLE_ENTRY_BYTES // 2) * 1250
        page_ps = 50_000 + 64 * 1250
        expected = table_ps + page_ps + 12 * 1000 + 1 * 1000
        assert system.clock.now_ps == expected

    def test_warm_access_within_page(self):
        system = machine(page=128)
        system.access(READ, 0x1000)
        before = system.clock.now_ps
        system.access(READ, 0x1004)  # same L1 block: free
        assert system.clock.now_ps == before
        system.access(READ, 0x1000 + 32)  # same page, new L1 block
        assert system.clock.now_ps == before + 12_000  # SRAM transfer only

    def test_no_tag_check_below_l1(self):
        """A resident page never touches DRAM again."""
        system = machine(page=128)
        system.access(READ, 0x1000)
        dram_before = system.stats.dram_accesses
        for offset in range(0, 128, 32):
            system.access(READ, 0x1000 + offset)
        assert system.stats.dram_accesses == dram_before

    def test_rampage_writeback_is_9_cycles(self):
        """L1 writebacks cost 9 cycles: no L2 tag to update."""
        system = machine(page=4096)
        assert system._wb_cycles == 9
        # Frames are allocated in fault order, so virtual pages 0 and 4
        # land in SRAM frames 4 pages (16 KB) apart -- the same set of
        # the 16 KB direct-mapped L1.
        system.access(WRITE, 0)  # dirty L1 block in page 0
        for page in range(1, 5):
            system.access(READ, page * 4096)
        assert system.stats.l1_writebacks == 1
        # The dirty bit propagated to the SRAM page, charged at 9 cycles.
        frame, _ = system.sram.translate(system.global_vpn(0, 0))
        assert system.sram.is_dirty(frame)


class TestFaulting:
    def test_tlb_hit_implies_resident(self):
        system = machine(page=128, base_kib=16)
        for i in range(400):
            system.access(READ, i * 128)
            gvpn = system.global_vpn(i * 128, 0)
            frame = system.tlb.peek(gvpn)
            if frame is not None:
                assert system.sram.ipt.vpn_of(frame) == gvpn

    def test_eviction_flushes_tlb_entry(self):
        system = machine(page=128, base_kib=16)
        capacity = system.sram.free_frames()
        for i in range(capacity + 50):
            system.access(READ, i * 128)
        # Every TLB entry still maps a resident page.
        for set_map in system.tlb._maps:
            for gvpn, frame in set_map.items():
                assert system.sram.ipt.vpn_of(frame) == gvpn

    def test_dirty_page_writeback(self):
        system = machine(page=128, base_kib=16)
        capacity = system.sram.free_frames()
        system.access(WRITE, 0)  # page 0 dirty via L1 write-allocate?
        # Write-allocate marks the L1 block dirty, not the page; force
        # the L1 block out so the page itself becomes dirty.
        system.access(READ, 16 * KIB)  # evicts dirty L1 block
        for i in range(2, capacity + 4):
            system.access(READ, i * 128 * 257)  # scatter to distinct pages
        assert system.stats.page_writebacks >= 1

    def test_fault_handler_counts(self):
        system = machine(page=128, handlers=HandlerCosts())
        system.access(READ, 0)
        assert system.stats.page_faults == 1
        assert system.stats.fault_handler_refs > 0
        assert system.stats.tlb_handler_refs > 0

    def test_tlb_miss_to_resident_page_avoids_dram(self):
        """Section 2.3: TLB misses for resident pages never reach DRAM."""
        system = machine(page=128, handlers=HandlerCosts())
        system.access(READ, 0)  # fault brings the page in
        # Evict the TLB entry by filling the TLB with other pages.
        system.tlb.flush_vpn(system.global_vpn(0, 0))
        transfers_before = system.channel.transfers
        system.access(READ, 4)  # TLB miss, page resident
        assert system.channel.transfers == transfers_before
        assert system.stats.page_faults == 1  # no new fault


class TestSwitchOnMiss:
    def test_fault_requests_preemption(self):
        system = machine(page=128, switch_on_miss=True)
        completed = system.access(READ, 0)
        assert completed is False
        assert system.stats.switches_on_miss == 1
        # The fault was still serviced: the page is mapped.
        assert system.sram.translate(system.global_vpn(0, 0))[0] != FREE

    def test_replay_completes_and_may_stall(self):
        system = machine(page=128, switch_on_miss=True)
        assert system.access(READ, 0) is False
        before = system.clock.now_ps
        assert system.access(READ, 0) is True
        # The background transfer had not completed: the replay stalls.
        assert system.stats.dram_stall_ps > 0
        assert system.clock.now_ps > before

    def test_transfer_overlap_recorded(self):
        system = machine(page=128, switch_on_miss=True)
        system.access(READ, 0)
        assert system.stats.dram_overlap_ps > 0

    def test_no_preemption_without_flag(self):
        system = machine(page=128, switch_on_miss=False)
        assert system.access(READ, 0) is True


class TestStandbyIntegration:
    def test_soft_faults_avoid_dram(self):
        system = machine(page=128, base_kib=16, standby=8)
        capacity = system.sram.free_frames()
        pages = capacity + 4
        for i in range(pages):
            system.access(READ, i * 128)
        # Touch the most recently evicted pages again: soft faults.
        transfers_before = system.channel.transfers
        soft_before = system.sram.soft_faults
        evicted_addr = None
        for i in range(pages):
            gvpn = system.global_vpn(i * 128, 0)
            if system.sram.standby.contains(gvpn):
                evicted_addr = i * 128
                break
        assert evicted_addr is not None
        system.access(READ, evicted_addr)
        assert system.sram.soft_faults == soft_before + 1
        assert system.channel.transfers == transfers_before
