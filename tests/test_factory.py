"""Tests for machine presets."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import KIB, MIB
from repro.systems.conventional import ConventionalSystem
from repro.systems.factory import (
    ISSUE_RATES_HZ,
    TRANSFER_SIZES,
    aggressive_l1,
    baseline_machine,
    build_system,
    large_tlb,
    rampage_machine,
    twoway_machine,
    with_future_work_upgrades,
)
from repro.systems.rampage import RampageSystem


def test_issue_rates_span_paper_range():
    assert min(ISSUE_RATES_HZ) == 200_000_000
    assert max(ISSUE_RATES_HZ) == 4_000_000_000


def test_transfer_sizes_match_paper():
    assert TRANSFER_SIZES == (128, 256, 512, 1024, 2048, 4096)


def test_baseline_is_direct_mapped_4mb():
    params = baseline_machine(block_bytes=256)
    assert params.l2.total_bytes == 4 * MIB
    assert params.l2.is_direct_mapped
    assert not params.scheduled_switches


def test_twoway_has_switch_traces_by_default():
    params = twoway_machine()
    assert params.l2.ways == 2
    assert params.scheduled_switches


def test_rampage_machine_defaults():
    params = rampage_machine(page_bytes=512)
    assert params.rampage.page_bytes == 512
    assert not params.switch_on_miss
    assert not params.scheduled_switches


def test_rampage_switch_on_miss_implies_scheduled():
    params = rampage_machine(switch_on_miss=True)
    assert params.scheduled_switches


def test_rampage_explicit_scheduled_override():
    params = rampage_machine(switch_on_miss=False, scheduled_switches=True)
    assert params.scheduled_switches and not params.switch_on_miss


def test_build_system_dispatch():
    assert isinstance(build_system(baseline_machine()), ConventionalSystem)
    assert isinstance(build_system(rampage_machine()), RampageSystem)


def test_build_system_rejects_unknown():
    params = baseline_machine()
    object.__setattr__(params, "kind", "bogus")
    with pytest.raises(ConfigurationError):
        build_system(params)


def test_future_work_upgrades():
    params = with_future_work_upgrades(rampage_machine())
    assert params.l1.icache.total_bytes == 64 * KIB
    assert params.l1.icache.ways == 8
    assert params.tlb.entries == 1024
    assert params.tlb.ways == 2


def test_aggressive_l1_and_large_tlb_shapes():
    l1 = aggressive_l1()
    assert l1.dcache.total_bytes == 64 * KIB
    tlb = large_tlb()
    assert tlb.num_sets == 512
