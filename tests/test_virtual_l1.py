"""Tests for the virtually-indexed-L1 RAMpage variant."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import KIB, HandlerCosts, MachineParams, RampageParams
from repro.mem.inverted_page_table import FREE
from repro.systems.factory import baseline_machine, rampage_machine
from repro.systems.simulator import Simulator
from repro.systems.virtual_l1 import OS_PID, VirtualL1RampageSystem
from repro.trace.interleave import InterleavedWorkload
from repro.trace.record import IFETCH, READ, WRITE
from repro.trace.synthetic import build_workload

NO_HANDLERS = HandlerCosts(
    tlb_instr=0, tlb_data=0, tlb_probe_instr=0, tlb_probe_data=0,
    fault_instr=0, fault_data=0, switch_instr=0, switch_data=0,
)


def machine(page=256, base_kib=None, **kw):
    rampage = RampageParams(
        page_bytes=page,
        **({"base_bytes": base_kib * KIB, "pinned_code_data_bytes": 2 * KIB,
            "ipt_entry_bytes": 16} if base_kib else {}),
    )
    return VirtualL1RampageSystem(
        MachineParams(
            kind="rampage",
            issue_rate_hz=10**9,
            rampage=rampage,
            handlers=NO_HANDLERS,
            **kw,
        )
    )


class TestVirtualHits:
    def test_l1_hit_needs_no_translation(self):
        system = machine()
        system.access(READ, 0x1000)  # miss: translation + fault
        misses_before = system.tlb.misses + system.tlb.hits
        system.access(READ, 0x1004)  # same L1 block: pure virtual hit
        assert system.tlb.misses + system.tlb.hits == misses_before

    def test_homonyms_never_false_hit(self):
        """Two processes' identical vaddrs are distinct blocks: the
        second access misses rather than wrongly hitting the first
        process's line (and, being direct-mapped to the same set, it
        evicts it -- correct homonym behaviour, no aliasing)."""
        system = machine()
        system.access(READ, 0x1000, pid=0)
        system.access(READ, 0x1000, pid=1)
        assert system.stats.l1d_misses == 2  # no false sharing/hit
        system.access(READ, 0x1000, pid=0)  # conflicted out: miss again
        assert system.stats.l1d_misses == 3
        assert system.stats.l1d_hits == 0

    def test_os_handler_blocks_disjoint_from_users(self):
        system = machine()
        # Handler refs use the OS pid tag; user pid 0's vaddr 0 must not
        # alias OS physical address 0.
        system._l1_access(IFETCH, 0)  # OS block at paddr 0
        system.access(READ, 0, pid=0)  # user block at vaddr 0
        assert system.stats.l1d_misses == 1
        assert system.stats.l1i_misses == 1


class TestConsistency:
    def test_rejects_conventional(self):
        with pytest.raises(ConfigurationError):
            VirtualL1RampageSystem(baseline_machine())

    def test_no_line_outlives_its_page(self):
        """Heavy faulting: every resident user L1 line's page must still
        be mapped (the virtual-range flush invariant)."""
        system = machine(page=128, base_kib=16)
        rng = np.random.default_rng(5)
        for i in range(4000):
            addr = int(rng.integers(0, 96 * KIB)) & ~3
            system.access(int(rng.integers(0, 3)), addr, pid=int(rng.integers(0, 3)))
        shift = system._blocks_per_page_bits
        for cache in (system.l1i, system.l1d):
            for vblock in cache.resident_blocks():
                if (vblock >> system._vblock_shift) == OS_PID:
                    continue
                gvpn = vblock >> shift
                assert system.sram.ipt.lookup(gvpn)[0] != FREE

    def test_dirty_line_writeback_marks_page(self):
        system = machine(page=4096)
        system.access(WRITE, 0)
        # Conflict the dirty line out (frames 4 pages apart share sets).
        for page in range(1, 5):
            system.access(READ, page * 4096)
        frame, _ = system.sram.translate(system.global_vpn(0, 0))
        assert system.sram.is_dirty(frame)

    def test_workload_run_matches_physical_fault_count(self):
        """Virtual indexing changes translation traffic, not residency:
        the page-fault sequence is identical to the physical-L1 machine."""
        params = rampage_machine(10**9, 512)
        from repro.systems.factory import build_system

        results = {}
        for label, system in (
            ("phys", build_system(params)),
            ("virt", VirtualL1RampageSystem(params)),
        ):
            workload = InterleavedWorkload(
                build_workload(scale=0.0002), slice_refs=5_000
            )
            results[label] = Simulator(system, workload).run()
        drift = abs(
            results["virt"].stats.page_faults - results["phys"].stats.page_faults
        )
        # Near-identical residency; tiny drift is possible because fewer
        # TLB inserts leave fewer referenced-bit hints for the clock.
        assert drift <= max(5, results["phys"].stats.page_faults * 0.02)
        assert results["virt"].stats.tlb_misses <= results["phys"].stats.tlb_misses

    def test_preemption_replays_cleanly(self):
        from dataclasses import replace

        params = replace(
            rampage_machine(10**9, 128, switch_on_miss=True),
        )
        system = VirtualL1RampageSystem(params)
        assert system.access(READ, 0) is False
        assert system.access(READ, 0) is True
