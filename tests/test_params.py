"""Tests for parameter validation and the paper's section 4 numbers."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import (
    KIB,
    MIB,
    BusParams,
    CacheParams,
    DiskParams,
    HandlerCosts,
    L1Params,
    MachineParams,
    RambusParams,
    RampageParams,
    TlbParams,
    is_power_of_two,
)


class TestCacheParams:
    def test_paper_l2_geometry(self):
        l2 = CacheParams(4 * MIB, 128, associativity=1)
        assert l2.num_blocks == 32_768
        assert l2.num_sets == 32_768
        assert l2.is_direct_mapped

    def test_two_way_geometry(self):
        l2 = CacheParams(4 * MIB, 128, associativity=2)
        assert l2.ways == 2
        assert l2.num_sets == 16_384

    def test_fully_associative(self):
        cache = CacheParams(4 * KIB, 128, associativity=0)
        assert cache.ways == cache.num_blocks == 32
        assert cache.num_sets == 1

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ConfigurationError):
            CacheParams(3 * KIB, 32)

    def test_rejects_block_larger_than_cache(self):
        with pytest.raises(ConfigurationError):
            CacheParams(128, 256)

    def test_rejects_negative_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheParams(4 * KIB, 32, associativity=-1)

    def test_rejects_non_dividing_ways(self):
        with pytest.raises(ConfigurationError):
            CacheParams(4 * KIB, 32, associativity=3)


class TestL1Params:
    def test_paper_defaults(self):
        l1 = L1Params()
        assert l1.icache.total_bytes == 16 * KIB
        assert l1.dcache.total_bytes == 16 * KIB
        assert l1.block_bytes == 32
        assert l1.hit_cycles == 1
        assert l1.miss_penalty_cycles == 12
        assert l1.writeback_cycles == 12
        assert l1.rampage_writeback_cycles == 9

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            L1Params(
                icache=CacheParams(16 * KIB, 32),
                dcache=CacheParams(16 * KIB, 64),
            )


class TestTlbParams:
    def test_paper_default_is_64_fully_associative(self):
        tlb = TlbParams()
        assert tlb.entries == 64
        assert tlb.ways == 64
        assert tlb.num_sets == 1

    def test_future_work_tlb(self):
        tlb = TlbParams(entries=1024, associativity=2)
        assert tlb.num_sets == 512

    def test_rejects_bad_way_split(self):
        with pytest.raises(ConfigurationError):
            TlbParams(entries=64, associativity=3)


class TestRambusParams:
    def test_paper_timing(self):
        dram = RambusParams()
        assert dram.access_ps == 50_000  # 50 ns
        assert dram.ps_per_beat == 1250  # 1.25 ns
        assert dram.bytes_per_beat == 2

    def test_peak_bandwidth_is_1_6_gbytes(self):
        # 2 bytes / 1.25 ns = 1.6e9 B/s, the paper's "1.5Gbyte/s" rounded.
        assert RambusParams().peak_bytes_per_second == pytest.approx(1.6e9)

    def test_pipeline_efficiency_bounds(self):
        with pytest.raises(ConfigurationError):
            RambusParams(pipeline_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            RambusParams(pipeline_efficiency=1.5)


class TestRampageParams:
    def test_tag_bonus_matches_paper_at_128(self):
        # Paper: SRAM main memory is 128 KB larger at 128-byte pages
        # (4.125 MB total), the space the L2 tags would have used.
        params = RampageParams(page_bytes=128)
        assert params.total_bytes == 4 * MIB + 128 * KIB

    def test_tag_bonus_scales_down_with_page_size(self):
        small = RampageParams(page_bytes=128)
        large = RampageParams(page_bytes=4 * KIB)
        assert large.total_bytes - 4 * MIB == (small.total_bytes - 4 * MIB) // 32

    def test_os_footprint_matches_paper_4k(self):
        # Paper: 6 pages (24 KB) of OS residency at 4 KB pages; our
        # linear model (code/data + one 20-byte entry per frame) lands
        # at 7 pages there while matching the 128-byte end exactly.
        params = RampageParams(page_bytes=4 * KIB)
        assert 6 <= params.pinned_frames <= 7

    def test_os_footprint_matches_paper_128(self):
        # Paper: 5336 pages (~667 KB) at 128-byte pages.  The exact count
        # depends on the entry size; ours lands within 1% of the paper's.
        params = RampageParams(page_bytes=128)
        assert 5250 <= params.pinned_frames <= 5400
        assert abs(params.pinned_bytes - 667 * KIB) / (667 * KIB) < 0.01

    def test_pinning_cannot_consume_memory(self):
        with pytest.raises(ConfigurationError):
            RampageParams(page_bytes=128, base_bytes=64 * KIB, ipt_entry_bytes=256)


class TestMachineParams:
    def test_conventional_rejects_switch_on_miss(self):
        with pytest.raises(ConfigurationError):
            MachineParams(kind="conventional", switch_on_miss=True)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MachineParams(kind="weird")  # type: ignore[arg-type]

    def test_l2_block_below_l1_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(
                kind="conventional", l2=CacheParams(4 * MIB, 16, associativity=1)
            )

    def test_sram_page_above_dram_page_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineParams(
                kind="rampage",
                rampage=RampageParams(page_bytes=8 * KIB),
                dram_page_bytes=4 * KIB,
            )

    def test_transfer_unit_selects_by_kind(self):
        conv = MachineParams(kind="conventional", l2=CacheParams(4 * MIB, 256))
        ramp = MachineParams(kind="rampage", rampage=RampageParams(page_bytes=512))
        assert conv.transfer_unit_bytes == 256
        assert ramp.transfer_unit_bytes == 512

    def test_translation_page_selects_by_kind(self):
        conv = MachineParams(kind="conventional")
        ramp = MachineParams(kind="rampage", rampage=RampageParams(page_bytes=256))
        assert conv.translation_page_bytes == 4 * KIB
        assert ramp.translation_page_bytes == 256

    def test_with_issue_rate_copies(self):
        base = MachineParams(kind="conventional")
        fast = base.with_issue_rate(4_000_000_000)
        assert fast.issue_rate_hz == 4_000_000_000
        assert base.issue_rate_hz == 200_000_000

    def test_with_transfer_unit_conventional(self):
        base = MachineParams(kind="conventional")
        resized = base.with_transfer_unit(1024)
        assert resized.l2.block_bytes == 1024

    def test_with_transfer_unit_rampage(self):
        base = MachineParams(kind="rampage")
        resized = base.with_transfer_unit(2048)
        assert resized.rampage.page_bytes == 2048


class TestMisc:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)
        assert not is_power_of_two(12)

    def test_handler_costs_switch_refs_is_about_400(self):
        # Paper: "approximately 400 references per context switch".
        assert HandlerCosts().switch_refs == 400

    def test_handler_costs_reject_negative(self):
        with pytest.raises(ConfigurationError):
            HandlerCosts(tlb_instr=-1)

    def test_bus_defaults(self):
        bus = BusParams()
        assert bus.width_bytes == 16
        assert bus.cpu_clock_divisor == 3

    def test_disk_defaults(self):
        disk = DiskParams()
        assert disk.latency_s == pytest.approx(10e-3)
        assert disk.bandwidth_bytes_per_s == pytest.approx(40e6)
