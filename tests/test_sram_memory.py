"""Tests for the RAMpage SRAM main memory."""


from repro.core.params import KIB, RampageParams
from repro.mem.inverted_page_table import FREE
from repro.mem.sram_memory import SramMainMemory


def small_memory(page_bytes=1 * KIB, standby=0, base_kib=64):
    """A tiny SRAM so faults and replacement happen quickly."""
    params = RampageParams(
        page_bytes=page_bytes,
        base_bytes=base_kib * KIB,
        pinned_code_data_bytes=2 * KIB,
        ipt_entry_bytes=16,
        standby_pages=standby,
    )
    return SramMainMemory(params)


class TestResidency:
    def test_initially_empty(self):
        sram = small_memory()
        assert sram.resident_pages() == 0
        assert sram.translate(42)[0] == FREE

    def test_fault_installs_page(self):
        sram = small_memory()
        outcome = sram.fault(42)
        assert outcome.frame >= sram.pinned_frames
        assert not outcome.soft
        assert not outcome.reused
        frame, _ = sram.translate(42)
        assert frame == outcome.frame

    def test_free_frames_consumed_first(self):
        sram = small_memory()
        free_before = sram.free_frames()
        outcomes = [sram.fault(vpn) for vpn in range(free_before)]
        assert all(o.unmapped_vpn is None for o in outcomes)
        assert sram.free_frames() == 0

    def test_eviction_after_memory_full(self):
        sram = small_memory()
        capacity = sram.free_frames()
        for vpn in range(capacity):
            sram.fault(vpn)
        outcome = sram.fault(capacity)
        assert outcome.unmapped_vpn is not None
        assert outcome.reused
        assert sram.translate(outcome.unmapped_vpn)[0] == FREE

    def test_dirty_victim_requests_writeback(self):
        sram = small_memory()
        capacity = sram.free_frames()
        outcomes = {vpn: sram.fault(vpn) for vpn in range(capacity)}
        for outcome in outcomes.values():
            sram.mark_dirty(outcome.frame)
        new_outcome = sram.fault(capacity)
        assert new_outcome.writeback_vpn == new_outcome.unmapped_vpn
        assert new_outcome.writeback_frame == new_outcome.frame

    def test_clean_victim_no_writeback(self):
        sram = small_memory()
        capacity = sram.free_frames()
        for vpn in range(capacity):
            sram.fault(vpn)
        outcome = sram.fault(capacity)
        assert outcome.writeback_vpn is None
        assert outcome.reused  # frame still held the old page

    def test_touch_protects_from_clock(self):
        sram = small_memory()
        capacity = sram.free_frames()
        outcomes = {vpn: sram.fault(vpn) for vpn in range(capacity)}
        # One fault sweeps the clock, clearing every install-time
        # referenced bit; after that a touch gives real protection.
        sram.fault(capacity)
        protected = 1
        sram.touch(outcomes[protected].frame)
        outcome = sram.fault(capacity + 1)
        assert outcome.unmapped_vpn != protected

    def test_fault_counter(self):
        sram = small_memory()
        sram.fault(1)
        sram.fault(2)
        assert sram.faults == 2


class TestStandby:
    def test_soft_fault_reclaims_without_dram(self):
        sram = small_memory(standby=4)
        capacity = sram.free_frames()
        for vpn in range(capacity):
            sram.fault(vpn)
        first_evict = sram.fault(capacity)
        parked = first_evict.unmapped_vpn
        assert parked is not None
        outcome = sram.fault(parked)  # fault the parked page back
        assert outcome.soft
        assert sram.translate(parked)[0] == outcome.frame

    def test_standby_reserves_frames_up_front(self):
        plain = small_memory(standby=0)
        parked = small_memory(standby=4)
        assert parked.free_frames() == plain.free_frames() - 4

    def test_standby_discard_frees_oldest(self):
        sram = small_memory(standby=2)
        capacity = sram.free_frames()
        for vpn in range(capacity):
            sram.fault(vpn)
        evicted = []
        for vpn in range(capacity, capacity + 5):
            outcome = sram.fault(vpn)
            assert not outcome.soft
            evicted.append(outcome.unmapped_vpn)
        # The standby list keeps the last two parked pages reclaimable;
        # older evictions have been truly discarded.
        assert sram.standby.contains(evicted[-1])
        assert sram.standby.contains(evicted[-2])
        assert not sram.standby.contains(evicted[0])

    def test_invariants_with_standby_churn(self):
        sram = small_memory(standby=3)
        for vpn in range(300):
            sram.fault(vpn % 97)
            if vpn % 13 == 0:
                sram.check_invariants()
        sram.check_invariants()


class TestInvariants:
    def test_invariants_after_heavy_churn(self):
        sram = small_memory()
        for vpn in range(500):
            frame, _ = sram.translate(vpn % 131)
            if frame == FREE:
                sram.fault(vpn % 131)
        sram.check_invariants()

    def test_paper_sized_memory_geometry(self):
        params = RampageParams(page_bytes=4 * KIB)
        sram = SramMainMemory(params)
        assert sram.num_frames == params.total_bytes // (4 * KIB)
        # Paper: 6 pages of OS residency at 4 KB (our linear model: 7).
        assert 6 <= sram.pinned_frames <= 7
