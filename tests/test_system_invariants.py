"""Cross-component invariants held under random workloads.

These are the structural properties the timing model relies on:

* **Inclusion** (conventional): every L1-resident block's enclosing L2
  block is resident (modulo nothing -- dirty L1 blocks still have an L2
  home).
* **Residency** (RAMpage): every L1-resident block belongs to a pinned
  frame or a mapped SRAM page, and every TLB entry maps a resident page.
* Time monotonicity and conservation: total time equals the sum of the
  per-level buckets.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.params import (
    KIB,
    CacheParams,
    HandlerCosts,
    MachineParams,
    RampageParams,
)
from repro.systems.factory import build_system
from repro.trace.record import TraceChunk


def random_chunk(seed, length=600, pid=0):
    rng = np.random.default_rng(seed)
    kinds = rng.choice([0, 1, 2], size=length, p=[0.2, 0.1, 0.7]).astype(np.uint8)
    addrs = (rng.integers(0, 256 * KIB, size=length, dtype=np.int64) // 4 * 4).astype(
        np.uint64
    )
    return TraceChunk(pid=pid, kinds=kinds, addrs=addrs)


def check_inclusion(system):
    l2_bits = system._l2_block_bits
    l1_bits = system._l1_block_bits
    shift = l2_bits - l1_bits
    for cache in (system.l1i, system.l1d):
        for block in cache.resident_blocks():
            assert system.l2.lookup(block >> shift), (
                f"L1 block {block:#x} has no L2 home"
            )


def check_rampage_residency(system):
    shift = system._page_bits - system._l1_block_bits
    pinned = system.sram.pinned_frames
    for cache in (system.l1i, system.l1d):
        for block in cache.resident_blocks():
            frame = block >> shift
            if frame < pinned:
                continue  # OS frame, always valid
            # Frame must be mapped, parked on standby, or pending reuse;
            # a mapped frame is the common case.
            assert frame < system.sram.num_frames
    for set_map in system.tlb._maps:
        for gvpn, frame in set_map.items():
            assert system.sram.ipt.vpn_of(frame) == gvpn


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_conventional_inclusion_invariant(seed):
    params = MachineParams(
        kind="conventional",
        issue_rate_hz=10**9,
        l2=CacheParams(256 * KIB, 512, associativity=1),
        handlers=HandlerCosts(),
    )
    system = build_system(params)
    for i in range(3):
        system.run_chunk(random_chunk(seed + i, pid=i))
    check_inclusion(system)
    lt = system.stats.level_times
    assert system.clock.now_ps == lt.total


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_rampage_residency_invariant(seed):
    params = MachineParams(
        kind="rampage",
        issue_rate_hz=10**9,
        rampage=RampageParams(
            page_bytes=256,
            base_bytes=64 * KIB,
            pinned_code_data_bytes=2 * KIB,
            ipt_entry_bytes=16,
        ),
        handlers=HandlerCosts(),
    )
    system = build_system(params)
    for i in range(3):
        system.run_chunk(random_chunk(seed + i, pid=i))
    check_rampage_residency(system)
    system.sram.check_invariants()
    system.tlb.check_invariants()
    lt = system.stats.level_times
    assert system.clock.now_ps == lt.total


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_time_is_monotone_across_accesses(seed):
    params = MachineParams(
        kind="rampage",
        issue_rate_hz=10**9,
        rampage=RampageParams(
            page_bytes=128,
            base_bytes=32 * KIB,
            pinned_code_data_bytes=2 * KIB,
            ipt_entry_bytes=16,
        ),
    )
    system = build_system(params)
    chunk = random_chunk(seed, length=300)
    last = 0
    for kind, addr in zip(chunk.kinds.tolist(), chunk.addrs.tolist()):
        system.access(kind, addr, chunk.pid)
        assert system.clock.now_ps >= last
        last = system.clock.now_ps
