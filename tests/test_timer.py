"""Tests for the wall-clock timer helpers."""

import time

from repro.core.timer import ScopedTimer, refs_per_second


def test_timer_measures_elapsed_and_freezes_on_exit():
    with ScopedTimer() as timer:
        time.sleep(0.01)
        assert timer.elapsed > 0.0  # live reading while open
    final = timer.elapsed
    assert final >= 0.01
    time.sleep(0.005)
    assert timer.elapsed == final  # frozen after exit


def test_timer_unused_reads_zero():
    assert ScopedTimer().elapsed == 0.0


def test_timer_reenters_fresh():
    timer = ScopedTimer()
    with timer:
        time.sleep(0.01)
    first = timer.elapsed
    with timer:
        pass
    assert timer.elapsed < first


def test_timer_survives_exceptions():
    timer = ScopedTimer()
    try:
        with timer:
            raise ValueError("boom")
    except ValueError:
        pass
    assert timer.elapsed > 0.0


def test_refs_per_second():
    assert refs_per_second(1000, 2.0) == 500.0
    assert refs_per_second(1000, 0.0) == 0.0
    assert refs_per_second(0, 1.0) == 0.0
