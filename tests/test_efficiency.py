"""Tests for Table 1 analytics."""

import pytest

from repro.analysis.efficiency import (
    disk_efficiency,
    rambus_efficiency,
    table1_rows,
    transfer_cost_instructions,
)
from repro.core.errors import ConfigurationError


class TestRambusEfficiency:
    def test_two_bytes(self):
        # One 1.25 ns beat against 50 ns of latency: 1250/51250.
        assert rambus_efficiency(2) == pytest.approx(1250 / 51250)

    def test_4k(self):
        assert rambus_efficiency(4096) == pytest.approx(2_560_000 / 2_610_000)

    def test_monotone_in_size(self):
        values = [rambus_efficiency(1 << k) for k in range(1, 21)]
        assert values == sorted(values)

    def test_approaches_one(self):
        assert rambus_efficiency(64 * 1024 * 1024) > 0.999

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            rambus_efficiency(0)


class TestDiskEfficiency:
    def test_4k(self):
        # 4096/40e6 s of data against 10 ms of latency: ~1%.
        assert disk_efficiency(4096) == pytest.approx(0.010136, rel=1e-3)

    def test_rambus_beats_disk_at_every_size(self):
        for row in table1_rows():
            assert row["rambus_pct"] > row["disk_pct"]


class TestWorkedExample:
    def test_paper_section_3_5_numbers(self):
        """1 GHz, 4 KB: ~10 M instructions for disk, ~2,600 for Rambus."""
        disk = transfer_cost_instructions(4096, 10**9, device="disk")
        rambus = transfer_cost_instructions(4096, 10**9, device="rambus")
        assert disk == pytest.approx(10.1e6, rel=0.01)
        assert rambus == pytest.approx(2610, rel=0.01)

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            transfer_cost_instructions(4096, 10**9, device="tape")


def test_table1_rows_structure():
    rows = table1_rows(sizes=(2, 4096))
    assert [row["bytes"] for row in rows] == [2, 4096]
    assert all(0 < row["rambus_pct"] <= 100 for row in rows)
    assert all(0 < row["disk_pct"] <= 100 for row in rows)
