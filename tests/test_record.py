"""Tests for reference records and chunks."""

import numpy as np
import pytest

from repro.core.errors import TraceFormatError
from repro.trace.record import (
    IFETCH,
    READ,
    WRITE,
    Reference,
    TraceChunk,
    empty_chunk,
)


class TestReference:
    def test_kind_constants_follow_dinero(self):
        assert READ == 0 and WRITE == 1 and IFETCH == 2

    def test_validate_accepts_good_reference(self):
        ref = Reference(IFETCH, 0x1000, pid=3)
        assert ref.validate() is ref

    def test_validate_rejects_bad_kind(self):
        with pytest.raises(TraceFormatError):
            Reference(7, 0x1000).validate()

    def test_validate_rejects_out_of_range_address(self):
        with pytest.raises(TraceFormatError):
            Reference(READ, 2**32).validate(vaddr_bits=32)

    def test_validate_rejects_negative_pid(self):
        with pytest.raises(TraceFormatError):
            Reference(READ, 0, pid=-1).validate()


class TestTraceChunk:
    def test_round_trip_through_references(self):
        refs = [Reference(READ, 4), Reference(WRITE, 8), Reference(IFETCH, 12)]
        chunk = TraceChunk.from_references(refs)
        assert list(chunk.references()) == refs
        assert len(chunk) == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceChunk(
                pid=0,
                kinds=np.zeros(3, dtype=np.uint8),
                addrs=np.zeros(2, dtype=np.uint64),
            )

    def test_mixed_pids_rejected(self):
        refs = [Reference(READ, 4, pid=0), Reference(READ, 8, pid=1)]
        with pytest.raises(TraceFormatError):
            TraceChunk.from_references(refs)

    def test_pid_taken_from_first_reference(self):
        refs = [Reference(READ, 4, pid=5), Reference(READ, 8, pid=5)]
        chunk = TraceChunk.from_references(refs)
        assert chunk.pid == 5

    def test_empty_chunk(self):
        chunk = empty_chunk(pid=2)
        assert len(chunk) == 0
        assert chunk.pid == 2
        assert list(chunk.references()) == []
