"""Tests for the integer-picosecond clock."""

import pytest

from repro.core.clock import (
    PS_PER_SECOND,
    SimClock,
    cycle_time_ps,
    ps_to_seconds,
    seconds_to_ps,
)
from repro.core.errors import ConfigurationError


@pytest.mark.parametrize(
    "rate,expected_ps",
    [
        (200_000_000, 5000),
        (500_000_000, 2000),
        (1_000_000_000, 1000),
        (2_000_000_000, 500),
        (4_000_000_000, 250),
    ],
)
def test_paper_issue_rates_are_integral(rate, expected_ps):
    assert cycle_time_ps(rate) == expected_ps


def test_non_integral_rate_rejected():
    with pytest.raises(ConfigurationError):
        cycle_time_ps(3_000_000_007)


def test_nonpositive_rate_rejected():
    with pytest.raises(ConfigurationError):
        cycle_time_ps(0)
    with pytest.raises(ConfigurationError):
        cycle_time_ps(-5)


def test_tick_cycles_accumulates():
    clock = SimClock(1_000_000_000)
    assert clock.tick_cycles(10) == 10_000
    assert clock.cycles == 10
    assert clock.now_ps == 10_000


def test_tick_ps_mixes_with_cycles():
    clock = SimClock(200_000_000)  # 5000 ps cycles
    clock.tick_cycles(2)
    clock.tick_ps(1234)
    assert clock.now_ps == 2 * 5000 + 1234


def test_advance_to_future_stalls():
    clock = SimClock(1_000_000_000)
    clock.tick_cycles(1)  # now 1000 ps
    stalled = clock.advance_to(5000)
    assert stalled == 4000
    assert clock.now_ps == 5000


def test_advance_to_past_is_noop():
    clock = SimClock(1_000_000_000)
    clock.tick_cycles(10)
    before = clock.now_ps
    assert clock.advance_to(before - 500) == 0
    assert clock.now_ps == before


def test_seconds_round_trip():
    assert ps_to_seconds(PS_PER_SECOND) == 1.0
    assert seconds_to_ps(2.5) == 2_500_000_000_000
    assert ps_to_seconds(seconds_to_ps(0.125)) == 0.125
