"""Tests for RunRecord / RunGrid / derived figures."""

import pytest

from repro.analysis.fractions import dram_fraction_series, level_fraction_rows
from repro.analysis.overheads import overhead_rows, overhead_series
from repro.analysis.relative import relative_speed_rows
from repro.analysis.runtime import RunGrid, RunRecord, best_cell, speedup
from repro.core.errors import ConfigurationError


def record(label="g", rate=10**9, size=128, seconds=1.0, tlb_refs=0, refs=1000):
    return RunRecord(
        label=label,
        kind="conventional",
        issue_rate_hz=rate,
        size_bytes=size,
        switch_on_miss=False,
        seconds=seconds,
        time_ps=int(seconds * 1e12),
        stats={
            "ifetches": refs,
            "reads": 0,
            "writes": 0,
            "tlb_handler_refs": tlb_refs,
            "fault_handler_refs": 0,
            "level_times": {
                "l1i": int(seconds * 0.5e12),
                "l1d": 0,
                "l2": int(seconds * 0.2e12),
                "dram": int(seconds * 0.3e12),
                "other": 0,
            },
        },
    )


class TestRunRecord:
    def test_round_trip_dict(self):
        rec = record()
        assert RunRecord.from_dict(rec.as_dict()) == rec

    def test_level_fractions(self):
        fractions = record().level_fractions
        assert fractions["l1i"] == pytest.approx(0.5)
        assert fractions["dram"] == pytest.approx(0.3)

    def test_overhead_ratio(self):
        rec = record(tlb_refs=250, refs=1000)
        assert rec.overhead_ratio == 0.25

    def test_zero_refs_overhead(self):
        rec = record(refs=0)
        assert rec.overhead_ratio == 0.0


class TestRunGrid:
    def test_add_and_fetch(self):
        grid = RunGrid("g")
        grid.add(record(size=128))
        grid.add(record(size=256, seconds=2.0))
        assert grid.cell(10**9, 128).seconds == 1.0
        assert grid.sizes() == [128, 256]
        assert grid.issue_rates() == [10**9]

    def test_duplicate_cell_rejected(self):
        grid = RunGrid("g")
        grid.add(record())
        with pytest.raises(ConfigurationError):
            grid.add(record())

    def test_missing_cell_raises(self):
        grid = RunGrid("g")
        with pytest.raises(ConfigurationError):
            grid.cell(10**9, 128)

    def test_row_ordering(self):
        grid = RunGrid("g")
        for size in (512, 128, 256):
            grid.add(record(size=size))
        assert [r.size_bytes for r in grid.row(10**9)] == [128, 256, 512]

    def test_best_cell(self):
        grid = RunGrid("g")
        grid.add(record(size=128, seconds=2.0))
        grid.add(record(size=256, seconds=1.0))
        assert best_cell(grid, 10**9).size_bytes == 256

    def test_speedup(self):
        slower = record(size=128, seconds=1.26)
        faster = record(size=256, seconds=1.0)
        assert speedup(slower, faster) == pytest.approx(0.26)


class TestDerivedFigures:
    def make_grids(self):
        a = RunGrid("baseline")
        b = RunGrid("rampage")
        a.add(record(label="baseline", size=128, seconds=1.0, tlb_refs=100))
        a.add(record(label="baseline", size=256, seconds=1.5, tlb_refs=100))
        b.add(record(label="rampage", size=128, seconds=2.0, tlb_refs=600))
        b.add(record(label="rampage", size=256, seconds=1.2, tlb_refs=200))
        return a, b

    def test_level_fraction_rows(self):
        grid, _ = self.make_grids()
        rows = level_fraction_rows(grid, 10**9)
        assert [row["size_bytes"] for row in rows] == [128, 256]
        for row in rows:
            total = row["l1i"] + row["l1d"] + row["l2"] + row["dram"] + row["other"]
            assert total == pytest.approx(1.0)

    def test_dram_fraction_series(self):
        grid, _ = self.make_grids()
        series = dram_fraction_series(grid, 10**9)
        assert series[128] == pytest.approx(0.3)

    def test_overhead_rows(self):
        grids = list(self.make_grids())
        rows = overhead_rows(grids, 10**9)
        assert rows[0]["baseline"] == pytest.approx(0.1)
        assert rows[0]["rampage"] == pytest.approx(0.6)

    def test_overhead_series(self):
        _, grid = self.make_grids()
        series = overhead_series(grid, 10**9)
        assert series[256] == pytest.approx(0.2)

    def test_relative_speed_rows(self):
        grids = list(self.make_grids())
        rows = relative_speed_rows(grids, 10**9)
        # Best time overall is 1.0 s (baseline at 128).
        assert rows[0]["baseline"] == pytest.approx(0.0)
        assert rows[0]["rampage"] == pytest.approx(1.0)
        assert rows[1]["rampage"] == pytest.approx(0.2)

    def test_relative_speed_series(self):
        from repro.analysis.relative import relative_speed_series

        grids = list(self.make_grids())
        series = relative_speed_series(grids, [10**9])
        assert series["baseline"][10**9][128] == pytest.approx(0.0)
        assert series["rampage"][10**9][256] == pytest.approx(0.2)
