"""Tests for the victim buffer."""

import pytest

from repro.core.errors import SimulationError
from repro.mem.victim import VictimBuffer


def test_disabled_buffer_lookups_return_none():
    buffer = VictimBuffer(0)
    assert not buffer.enabled
    assert buffer.lookup_remove(5) is None
    assert buffer.hits == 0 and buffer.misses == 0


def test_insert_and_hit():
    buffer = VictimBuffer(4)
    assert buffer.insert(5, dirty=True) is None
    assert buffer.lookup_remove(5) is True
    assert buffer.hits == 1
    assert not buffer.contains(5)  # hit removes the entry


def test_miss_counts():
    buffer = VictimBuffer(4)
    assert buffer.lookup_remove(9) is None
    assert buffer.misses == 1


def test_fifo_displacement_returns_oldest():
    buffer = VictimBuffer(2)
    buffer.insert(1, dirty=False)
    buffer.insert(2, dirty=True)
    displaced = buffer.insert(3, dirty=False)
    assert displaced == (1, False)
    assert buffer.evictions == 1
    assert len(buffer) == 2


def test_insert_into_disabled_raises():
    buffer = VictimBuffer(0)
    with pytest.raises(SimulationError):
        buffer.insert(1, dirty=False)


def test_double_insert_raises():
    buffer = VictimBuffer(2)
    buffer.insert(1, dirty=False)
    with pytest.raises(SimulationError):
        buffer.insert(1, dirty=True)


def test_dirty_bit_preserved_through_displacement():
    buffer = VictimBuffer(1)
    buffer.insert(1, dirty=True)
    displaced = buffer.insert(2, dirty=False)
    assert displaced == (1, True)
