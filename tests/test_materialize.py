"""Tests for the materialized workload plane.

The contract: replaying a materialized workload is *byte-identical* to
live synthesis -- same reference content, same chunk boundaries, same
simulated records and cache bytes -- while synthesis itself runs exactly
once per ``(scale, seed)`` per process, artifacts survive on disk with
the run-record cache's integrity discipline, and corrupt artifacts are
quarantined and regenerated rather than crashing or poisoning results.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.errors import CacheIntegrityError
from repro.core.observe import EventLog
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Runner, iter_cache_files
from repro.systems.simulator import Simulator
from repro.trace import materialize
from repro.trace.benchmarks import table2_catalog
from repro.trace.interleave import InterleavedWorkload
from repro.trace.materialize import (
    ADDRS_NAME,
    KINDS_NAME,
    MANIFEST_NAME,
    MaterializedProgram,
    get_workload,
    load_artifact,
    workload_key,
)
from repro.trace.synthetic import SyntheticProgram, build_workload

SCALE = 0.0001
SEED = 0


@pytest.fixture(autouse=True)
def fresh_registry():
    materialize.clear_registry()
    yield
    materialize.clear_registry()


def materialized_twin(
    program: SyntheticProgram, chunk_refs=None, slice_refs=None
) -> MaterializedProgram:
    """Materialize one live program in memory (no disk, no registry)."""
    kinds = np.concatenate([c.kinds for c in program.chunks()])
    addrs = np.concatenate([c.addrs for c in program.chunks()])
    return MaterializedProgram(
        spec=program.spec,
        pid=program.pid,
        seed=program.seed,
        kinds=kinds,
        addrs=addrs,
        chunk_refs=chunk_refs if chunk_refs is not None else program.chunk_refs,
        slice_refs=slice_refs,
    )


# ----------------------------------------------------------------------
# Replay equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("chunk_refs", [65_536, 8_192, 5_000, 256])
def test_replay_matches_live_synthesis_chunk_for_chunk(chunk_refs):
    """Same content AND the same chunk boundaries, including chunk_refs
    values that do not divide the generator's synthesis block."""
    spec = table2_catalog()["sed"]
    live = SyntheticProgram(spec, total_refs=20_000, pid=3, seed=7, chunk_refs=chunk_refs)
    replay = materialized_twin(live)
    live_chunks = list(live.chunks())
    replay_chunks = list(replay.chunks())
    assert [len(c) for c in replay_chunks] == [len(c) for c in live_chunks]
    for a, b in zip(live_chunks, replay_chunks):
        assert b.pid == a.pid
        assert np.array_equal(a.kinds, b.kinds)
        assert np.array_equal(a.addrs, b.addrs)


def test_replay_is_restartable_and_shares_chunk_objects():
    spec = table2_catalog()["sed"]
    live = SyntheticProgram(spec, total_refs=5_000, pid=0, seed=1)
    replay = materialized_twin(live)
    first = list(replay.chunks())
    second = list(replay.chunks())
    assert [id(c) for c in first] == [id(c) for c in second]
    # Derived caches accumulate on the shared objects across passes.
    first[0].runs_for(12, 5, 20)
    assert second[0]._runs is not None


def test_workload_replay_matches_build_workload():
    live = build_workload(SCALE, seed=SEED)
    plane = get_workload(SCALE, SEED, cache_dir=None)
    assert [p.pid for p in plane.programs] == [p.pid for p in live]
    assert [p.spec.name for p in plane.programs] == [p.spec.name for p in live]
    for a, b in zip(live, plane.programs):
        assert np.array_equal(
            np.concatenate([c.kinds for c in a.chunks()]),
            np.concatenate([c.kinds for c in b.chunks()]),
        )
        assert np.array_equal(
            np.concatenate([c.addrs for c in a.chunks()]),
            np.concatenate([c.addrs for c in b.chunks()]),
        )


@pytest.mark.parametrize("slice_refs", [500, 777, 4_000, 100_000])
def test_slice_aligned_replay_has_identical_content(slice_refs):
    """Slice-aligned chunking reorders boundaries, never content."""
    spec = table2_catalog()["sed"]
    live = SyntheticProgram(spec, total_refs=20_000, pid=3, seed=7)
    replay = materialized_twin(live, slice_refs=slice_refs)
    for field in ("kinds", "addrs"):
        assert np.array_equal(
            np.concatenate([getattr(c, field) for c in live.chunks()]),
            np.concatenate([getattr(c, field) for c in replay.chunks()]),
        )
    cap = live.chunk_refs
    assert all(len(c) <= min(cap, slice_refs) for c in replay.chunks())


def test_slice_aligned_chunks_are_never_split_by_the_interleaver():
    """The point of alignment: the round-robin scheduler hands every
    shared chunk out whole (same object), so per-geometry run caches
    survive intact across the cells of a sweep."""
    specs = list(table2_catalog().values())
    programs = [
        materialized_twin(
            SyntheticProgram(specs[i], total_refs=10_000, pid=i, seed=i),
            slice_refs=3_000,
        )
        for i in range(2)
    ]
    shared = {id(c) for p in programs for c in p.chunks()}
    workload = InterleavedWorkload(programs, slice_refs=3_000)
    handed_out = list(workload.chunks())
    assert all(id(c) in shared for c in handed_out)
    assert sum(len(c) for c in handed_out) == 20_000


# ----------------------------------------------------------------------
# Scheduling equivalence: new_slice boundaries and preemption tails
# ----------------------------------------------------------------------


def scheduling_programs(builder):
    specs = list(table2_catalog().values())
    return [
        builder(
            SyntheticProgram(specs[i], total_refs=2_000, pid=i, seed=i, chunk_refs=256)
        )
        for i in range(2)
    ]


class PreemptingSystem:
    """Consumes references, preempting at scripted global indices."""

    def __init__(self, preempt_at=()):
        self.params = SimpleNamespace(scheduled_switches=True)
        self._preempt_at = sorted(preempt_at)
        self.total = 0
        self.consumed = []
        self.slice_flags = []
        self.switch_pids = []

    def run_chunk(self, chunk):
        self.slice_flags.append(chunk.new_slice)
        kinds = chunk.kinds_list
        addrs = chunk.addrs_list
        for idx in range(len(kinds)):
            if self._preempt_at and self.total == self._preempt_at[0]:
                self._preempt_at.pop(0)
                return idx
            self.total += 1
            self.consumed.append((chunk.pid, kinds[idx], addrs[idx]))
        return len(kinds)

    def context_switch(self, pid):
        self.switch_pids.append(pid)

    def finalize(self):
        return None


@pytest.mark.parametrize("preempt_at", [(), (100, 300, 777)])
def test_interleaved_replay_identical_through_preemption(preempt_at):
    """The driver-visible stream -- consumption order, new_slice flags,
    switch points, push_back/tail replays -- is identical whether the
    programs are live generators or materialized replays."""
    outcomes = []
    for builder in (lambda p: p, lambda p: materialized_twin(p)):
        system = PreemptingSystem(preempt_at)
        workload = InterleavedWorkload(scheduling_programs(builder), slice_refs=500)
        sim = Simulator(system, workload)
        sim.run()
        outcomes.append(
            (
                system.consumed,
                system.slice_flags,
                system.switch_pids,
                sim.preemptions,
            )
        )
    assert outcomes[0] == outcomes[1]


def test_preempted_tail_of_shared_chunk_replays_cleanly():
    """Preemption pushes a tail of a *shared* chunk back; replaying the
    workload afterwards must still see every reference (push_back state
    is per-stream, never leaks into the shared chunk list)."""
    programs = scheduling_programs(materialized_twin)
    system = PreemptingSystem((50,))
    Simulator(system, InterleavedWorkload(programs, slice_refs=500)).run()
    expected = {
        p.pid: list(
            zip(
                np.concatenate([c.kinds for c in p.chunks()]).tolist(),
                np.concatenate([c.addrs for c in p.chunks()]).tolist(),
            )
        )
        for p in programs
    }
    for pid, refs in expected.items():
        assert [(k, a) for p, k, a in system.consumed if p == pid] == refs
    # A second simulation over the same shared programs sees it all again.
    second = PreemptingSystem()
    Simulator(second, InterleavedWorkload(programs, slice_refs=500)).run()
    for pid, refs in expected.items():
        assert [(k, a) for p, k, a in second.consumed if p == pid] == refs


# ----------------------------------------------------------------------
# Registry and disk artifacts
# ----------------------------------------------------------------------


def test_registry_shares_one_materialization():
    before = materialize.synthesis_count
    first = get_workload(SCALE, SEED, cache_dir=None)
    second = get_workload(SCALE, SEED, cache_dir=None)
    assert second is first
    assert materialize.synthesis_count == before + 1


def test_artifact_round_trip_through_disk(tmp_path):
    before = materialize.synthesis_count
    plane = get_workload(SCALE, SEED, cache_dir=tmp_path)
    assert plane.synthesized
    assert plane.path is not None and plane.path.exists()
    assert materialize.synthesis_count == before + 1

    materialize.clear_registry()
    attached = get_workload(SCALE, SEED, cache_dir=tmp_path)
    assert not attached.synthesized
    assert materialize.synthesis_count == before + 1  # attach, not resynthesize
    for a, b in zip(plane.programs, attached.programs):
        assert a.pid == b.pid
        assert np.array_equal(
            np.concatenate([c.addrs for c in a.chunks()]),
            np.concatenate([c.addrs for c in b.chunks()]),
        )


def test_attached_arrays_are_memmapped(tmp_path):
    get_workload(SCALE, SEED, cache_dir=tmp_path)
    materialize.clear_registry()
    attached = get_workload(SCALE, SEED, cache_dir=tmp_path)
    chunk = next(iter(attached.programs[0].chunks()))
    base = chunk.addrs
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    assert isinstance(base, np.memmap)


def test_manifest_contents(tmp_path):
    plane = get_workload(SCALE, SEED, cache_dir=tmp_path)
    manifest = json.loads((plane.path / MANIFEST_NAME).read_text("utf-8"))
    assert manifest["schema"] == materialize.TRACE_SCHEMA
    assert manifest["workload_version"] == materialize.WORKLOAD_VERSION
    assert manifest["key"] == workload_key(SCALE, SEED)
    assert manifest["total_refs"] == plane.total_refs
    table = manifest["programs"]
    assert [entry["pid"] for entry in table] == [p.pid for p in plane.programs]
    assert table[0]["start"] == 0
    assert table[-1]["stop"] == plane.total_refs


# ----------------------------------------------------------------------
# Integrity: corrupt artifacts are quarantined and regenerated
# ----------------------------------------------------------------------


def damage_truncate_addrs(path: Path) -> None:
    target = path / ADDRS_NAME
    target.write_bytes(target.read_bytes()[:-64])


def damage_manifest_json(path: Path) -> None:
    (path / MANIFEST_NAME).write_text("{ torn", encoding="utf-8")


def damage_wrong_version(path: Path) -> None:
    manifest = json.loads((path / MANIFEST_NAME).read_text("utf-8"))
    manifest["workload_version"] = "wv0"
    (path / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")


def damage_missing_kinds(path: Path) -> None:
    (path / KINDS_NAME).unlink()


@pytest.mark.parametrize(
    "damage",
    [
        damage_truncate_addrs,
        damage_manifest_json,
        damage_wrong_version,
        damage_missing_kinds,
    ],
)
def test_corrupt_artifact_quarantined_and_regenerated(tmp_path, damage):
    plane = get_workload(SCALE, SEED, cache_dir=tmp_path)
    artifact = plane.path
    damage(artifact)
    with pytest.raises(CacheIntegrityError):
        load_artifact(artifact)

    materialize.clear_registry()
    events = EventLog()
    before = materialize.synthesis_count
    regenerated = get_workload(SCALE, SEED, cache_dir=tmp_path, events=events)
    assert regenerated.synthesized
    assert materialize.synthesis_count == before + 1
    quarantined = [e for e in events.events if e["event"] == "trace_quarantined"]
    assert len(quarantined) == 1
    assert Path(quarantined[0]["path"]).name.endswith(materialize.QUARANTINE_SUFFIX)
    assert Path(quarantined[0]["path"]).exists()
    # The regenerated artifact is valid and replay-identical.
    replay = load_artifact(regenerated.path)
    live = build_workload(SCALE, seed=SEED)
    for a, b in zip(live, replay):
        assert np.array_equal(
            np.concatenate([c.addrs for c in a.chunks()]),
            np.concatenate([c.addrs for c in b.chunks()]),
        )


def test_checksum_damage_detected(tmp_path):
    plane = get_workload(SCALE, SEED, cache_dir=tmp_path)
    target = plane.path / KINDS_NAME
    blob = bytearray(target.read_bytes())
    blob[-1] ^= 0xFF  # flip one payload bit, size unchanged
    target.write_bytes(bytes(blob))
    with pytest.raises(CacheIntegrityError, match="checksum"):
        load_artifact(plane.path)


def test_load_rejects_foreign_program_table(tmp_path):
    plane = get_workload(SCALE, SEED, cache_dir=tmp_path)
    manifest = json.loads((plane.path / MANIFEST_NAME).read_text("utf-8"))
    manifest["programs"][0]["name"] = "not-a-table2-program"
    (plane.path / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(CacheIntegrityError):
        load_artifact(plane.path)


# ----------------------------------------------------------------------
# Runner integration: records and cache bytes are unchanged
# ----------------------------------------------------------------------


def runner_config(cache_dir):
    return ExperimentConfig(
        scale=SCALE,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache_dir,
    )


def test_materialized_runner_cache_bytes_identical_to_legacy(tmp_path):
    legacy = Runner(runner_config(tmp_path / "legacy"), materialize=False)
    legacy_grid = legacy.grid("rampage")
    plane_runner = Runner(runner_config(tmp_path / "plane"))
    plane_grid = plane_runner.grid("rampage")
    for rate in legacy.config.issue_rates:
        for size in legacy.config.sizes:
            assert plane_grid.cell(rate, size) == legacy_grid.cell(rate, size)
    legacy_files = sorted(iter_cache_files(tmp_path / "legacy"))
    plane_files = sorted(iter_cache_files(tmp_path / "plane"))
    assert [p.name for p in legacy_files] == [p.name for p in plane_files]
    for a, b in zip(legacy_files, plane_files):
        assert a.read_bytes() == b.read_bytes()


def test_runner_synthesizes_once_across_grids(tmp_path):
    before = materialize.synthesis_count
    runner = Runner(runner_config(tmp_path))
    runner.grid("baseline")
    runner.grid("rampage")
    assert materialize.synthesis_count == before + 1
    events = [e["event"] for e in runner.events.events]
    assert "trace_materialized" in events
