"""Behavioural tests for the conventional cache machine.

Several tests zero the handler costs so cycle arithmetic is exact and
every picosecond can be checked against the paper's timing rules.
"""

import pytest

from repro.core.params import (
    KIB,
    MIB,
    CacheParams,
    HandlerCosts,
    MachineParams,
)
from repro.core.errors import SimulationError
from repro.systems.conventional import ConventionalSystem
from repro.trace.record import IFETCH, READ, WRITE

NO_HANDLERS = HandlerCosts(
    tlb_instr=0,
    tlb_data=0,
    tlb_probe_instr=0,
    tlb_probe_data=0,
    fault_instr=0,
    fault_data=0,
    switch_instr=0,
    switch_data=0,
)


def machine(block=128, assoc=1, rate=1_000_000_000, handlers=NO_HANDLERS, **kw):
    return ConventionalSystem(
        MachineParams(
            kind="conventional",
            issue_rate_hz=rate,
            l2=CacheParams(4 * MIB, block, associativity=assoc),
            handlers=handlers,
            **kw,
        )
    )


class TestExactTiming:
    def test_cold_ifetch_cost(self):
        """First ifetch: DRAM block fetch + 12-cycle L1 fill + 1 cycle."""
        system = machine(block=128)
        system.access(IFETCH, 0x1000)
        dram_ps = 50_000 + 64 * 1250  # 128 bytes over Direct Rambus
        expected = dram_ps + 12 * 1000 + 1 * 1000
        assert system.clock.now_ps == expected
        assert system.stats.level_times.dram == dram_ps
        assert system.stats.level_times.l2 == 12_000
        assert system.stats.level_times.l1i == 1_000

    def test_warm_ifetch_costs_one_cycle(self):
        system = machine()
        system.access(IFETCH, 0x1000)
        before = system.clock.now_ps
        system.access(IFETCH, 0x1004)  # same 32-byte L1 block
        assert system.clock.now_ps == before + 1000

    def test_data_hit_is_free(self):
        """TLB and L1 data hits are fully pipelined (section 4.3)."""
        system = machine()
        system.access(READ, 0x2000)
        before = system.clock.now_ps
        system.access(READ, 0x2004)
        system.access(WRITE, 0x2008)
        assert system.clock.now_ps == before

    def test_l2_hit_costs_12_cycles(self):
        """A second L1 block within a warm L2 block: no DRAM."""
        system = machine(block=128)
        system.access(READ, 0x2000)
        before = system.clock.now_ps
        dram_before = system.stats.dram_accesses
        system.access(READ, 0x2000 + 32)  # same 128-byte L2 block
        assert system.stats.dram_accesses == dram_before
        assert system.clock.now_ps == before + 12_000

    def test_4ghz_scales_sram_but_not_dram(self):
        slow = machine(rate=200_000_000)
        fast = machine(rate=4_000_000_000)
        for system in (slow, fast):
            system.access(READ, 0x2000)
        dram_ps = 50_000 + 64 * 1250
        assert slow.clock.now_ps == dram_ps + 12 * 5000
        assert fast.clock.now_ps == dram_ps + 12 * 250


class TestCacheBehaviour:
    def test_counts_by_kind(self):
        system = machine()
        system.access(IFETCH, 0)
        system.access(READ, 64)
        system.access(WRITE, 128)
        stats = system.stats
        assert (stats.ifetches, stats.reads, stats.writes) == (1, 1, 1)

    def test_l1_conflict_eviction_and_writeback(self):
        system = machine()
        # Two addresses mapping to the same L1 set (16 KB apart), in the
        # same 4 KB DRAM page? No -- different pages is fine, what
        # matters is the physical conflict after translation.
        system.access(WRITE, 0x0000)  # dirty block
        first_paddr_conflicts = 16 * KIB  # L1 is 16 KB direct-mapped
        system.access(READ, first_paddr_conflicts)
        # Sequential frame allocation maps these to different frames; we
        # instead check the accounting invariantly: every writeback must
        # have marked an L2 block dirty without raising.
        assert system.stats.l1d_misses == 2

    def test_l2_miss_fetches_from_dram(self):
        system = machine(block=128)
        system.access(READ, 0)
        assert system.stats.l2_misses == 1
        assert system.stats.dram_accesses == 1

    def test_inclusion_flush_on_l2_eviction(self):
        """Evicting an L2 block invalidates its L1 blocks."""
        system = machine(block=4096)
        # Two virtual pages 4 MB apart in the same process collide in a
        # 4 MB direct-mapped L2 only if their *physical* frames collide;
        # force it by accessing enough distinct pages to wrap the cache.
        blocks_in_l2 = 4 * MIB // 4096
        for i in range(blocks_in_l2 + 1):
            system.access(READ, i * 4096)
        assert system.stats.l2_misses == blocks_in_l2 + 1
        # The first physical block was evicted; re-access misses again.
        misses_before = system.stats.l2_misses
        system.access(READ, 0)
        assert system.stats.l2_misses == misses_before + 1

    def test_dirty_l2_writeback_to_dram(self):
        system = machine(block=4096)
        blocks_in_l2 = 4 * MIB // 4096
        system.access(WRITE, 0)  # dirty L1 and (eventually) L2 block
        for i in range(1, blocks_in_l2 + 1):
            system.access(READ, i * 4096)
        # Evicting the dirty block wrote it back: fetches + 1 writeback.
        assert system.stats.l2_writebacks >= 1

    def test_two_way_l2_reduces_conflicts(self):
        direct = machine(block=128, assoc=1, seed=1)
        twoway = machine(block=128, assoc=2, seed=1)
        for system in (direct, twoway):
            for rep in range(4):
                for i in range(64):
                    system.access(READ, i * 64 * KIB)
        assert twoway.stats.l2_misses <= direct.stats.l2_misses


class TestTranslation:
    def test_tlb_miss_runs_handler(self):
        system = machine(handlers=HandlerCosts())
        system.access(READ, 0)
        assert system.tlb.misses == 1
        assert system.stats.tlb_handler_refs == 14  # 12 instr + 2 data

    def test_tlb_hit_on_same_page(self):
        system = machine()
        system.access(READ, 0)
        system.access(READ, 100)
        assert system.tlb.misses == 1
        assert system.tlb.hits == 1

    def test_finalize_copies_tlb_counters(self):
        system = machine()
        system.access(READ, 0)
        system.access(READ, 4)
        result = system.finalize()
        assert result.stats.tlb_misses == 1
        assert result.stats.tlb_hits == 1

    def test_distinct_processes_get_distinct_frames(self):
        system = machine()
        system.access(READ, 0, pid=0)
        system.access(READ, 0, pid=1)
        assert system.tlb.misses == 2
        assert len(system.page_table) == 2

    def test_frame_allocation_guard(self):
        system = machine()
        system._next_frame = system._os_base_frame
        with pytest.raises(SimulationError):
            system.access(READ, 0)

    def test_handler_refs_are_cached(self):
        """OS handler code is cacheable: repeated TLB misses hit L1."""
        system = machine(handlers=HandlerCosts())
        for page in range(8):
            system.access(READ, page * 4096)
        # The handler executes 14 refs per miss; after the first miss
        # its code is in L1, so L1i misses stay far below total refs.
        assert system.stats.l1i_misses < 8 * 14
