"""Tests for the shared machine machinery (repro.systems.base)."""


from repro.core.params import (
    MIB,
    CacheParams,
    HandlerCosts,
    MachineParams,
)
from repro.systems.base import SimulationResult
from repro.systems.conventional import ConventionalSystem
from repro.trace.record import IFETCH, READ, WRITE

NO_HANDLERS = HandlerCosts(
    tlb_instr=0, tlb_data=0, tlb_probe_instr=0, tlb_probe_data=0,
    fault_instr=0, fault_data=0, switch_instr=0, switch_data=0,
)


def system(handlers=NO_HANDLERS):
    return ConventionalSystem(
        MachineParams(
            kind="conventional",
            issue_rate_hz=10**9,
            l2=CacheParams(1 * MIB, 128, associativity=1),
            handlers=handlers,
        )
    )


class TestFlushL1Range:
    def test_charges_probe_cycles(self):
        sys_ = system()
        before = sys_.clock.cycles
        sys_._flush_l1_range(0, 128)  # 4 L1 blocks x 2 caches x 1 cycle
        assert sys_.clock.cycles - before == 8

    def test_detects_dirty_blocks_and_charges_writeback(self):
        sys_ = system()
        sys_.access(WRITE, 0)  # dirty L1 block at paddr 0 (frame 0)
        before_wb = sys_.stats.l1_writebacks
        dirty = sys_._flush_l1_range(0, 128)
        assert dirty
        assert sys_.stats.l1_writebacks == before_wb + 1
        assert not sys_.l1d.lookup(0)

    def test_counts_invalidations(self):
        sys_ = system()
        sys_.access(READ, 0)
        sys_.access(IFETCH, 32)
        sys_._flush_l1_range(0, 128)
        assert sys_.stats.inclusion_invalidations == 2

    def test_clean_range_reports_no_dirty(self):
        sys_ = system()
        sys_.access(READ, 0)
        assert not sys_._flush_l1_range(0, 128)


class TestContextSwitch:
    def test_runs_switch_trace(self):
        sys_ = system(handlers=HandlerCosts())
        sys_.context_switch(pid=0)
        assert sys_.stats.context_switches == 1
        assert sys_.stats.switch_refs == 400
        assert sys_.clock.now_ps > 0

    def test_switch_trace_references_hit_caches(self):
        sys_ = system(handlers=HandlerCosts())
        sys_.context_switch(pid=0)
        misses_after_first = sys_.stats.l1i_misses
        sys_.context_switch(pid=0)
        # The second switch re-runs warm handler code.
        assert sys_.stats.l1i_misses == misses_after_first


class TestGlobalVpn:
    def test_distinct_processes_distinct_keys(self):
        sys_ = system()
        assert sys_.global_vpn(0x1000, 0) != sys_.global_vpn(0x1000, 1)

    def test_same_page_same_key(self):
        sys_ = system()
        assert sys_.global_vpn(0x1000, 2) == sys_.global_vpn(0x1FFF, 2)


class TestSimulationResult:
    def test_seconds_and_summary(self):
        sys_ = system()
        sys_.access(IFETCH, 0)
        result = sys_.finalize()
        assert isinstance(result, SimulationResult)
        assert result.seconds == result.time_ps / 1e12
        summary = result.summary()
        assert summary["kind"] == "conventional"
        assert summary["workload_refs"] == 1
        assert 0.999 <= sum(summary["level_fractions"].values()) <= 1.001
