"""Tests for the generic set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SimulationError
from repro.core.params import CacheParams
from repro.core.rng import XorShiftRNG
from repro.mem.cache import INVALID, SetAssociativeCache


def make_cache(total=1024, block=32, ways=1, seed=1):
    return SetAssociativeCache(
        CacheParams(total, block, associativity=ways), XorShiftRNG(seed)
    )


class TestDirectMapped:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)

    def test_conflicting_blocks_evict(self):
        cache = make_cache()  # 32 sets
        a, b = 7, 7 + 32  # same set
        cache.fill(a)
        victim, dirty = cache.fill(b)
        assert victim == a
        assert not dirty
        assert cache.lookup(b)
        assert not cache.lookup(a)

    def test_dirty_victim_reported(self):
        cache = make_cache()
        cache.fill(7, dirty=True)
        victim, dirty = cache.fill(7 + 32)
        assert victim == 7
        assert dirty

    def test_mark_dirty(self):
        cache = make_cache()
        cache.fill(3)
        cache.mark_dirty(3)
        victim, dirty = cache.fill(3 + 32)
        assert dirty

    def test_mark_dirty_missing_raises(self):
        cache = make_cache()
        with pytest.raises(SimulationError):
            cache.mark_dirty(99)

    def test_double_fill_raises(self):
        cache = make_cache()
        cache.fill(4)
        with pytest.raises(SimulationError):
            cache.fill(4)


class TestSetAssociative:
    def test_two_way_holds_two_conflicting_blocks(self):
        cache = make_cache(ways=2)  # 16 sets
        a, b = 3, 3 + 16
        cache.fill(a)
        victim, _ = cache.fill(b)
        assert victim == INVALID
        assert cache.lookup(a) and cache.lookup(b)

    def test_third_conflicting_block_evicts_one(self):
        cache = make_cache(ways=2)
        a, b, c = 3, 3 + 16, 3 + 32
        cache.fill(a)
        cache.fill(b)
        victim, _ = cache.fill(c)
        assert victim in (a, b)
        assert cache.lookup(c)

    def test_fully_associative_uses_whole_capacity(self):
        cache = make_cache(total=256, block=32, ways=0)  # 8 blocks
        for block in range(8):
            victim, _ = cache.fill(block * 17)
            assert victim == INVALID
        victim, _ = cache.fill(999)
        assert victim != INVALID


class TestInvalidate:
    def test_invalidate_present(self):
        cache = make_cache()
        cache.fill(9, dirty=True)
        present, was_dirty = cache.invalidate(9)
        assert present and was_dirty
        assert not cache.lookup(9)

    def test_invalidate_absent(self):
        cache = make_cache()
        assert cache.invalidate(9) == (False, False)

    def test_refill_after_invalidate_has_no_victim(self):
        cache = make_cache()
        cache.fill(9)
        cache.invalidate(9)
        victim, _ = cache.fill(9 + 32)
        assert victim == INVALID


class TestAccounting:
    def test_fill_and_eviction_counters(self):
        cache = make_cache()
        cache.fill(1)
        cache.fill(1 + 32)
        assert cache.fills == 2
        assert cache.evictions == 1

    def test_occupancy(self):
        cache = make_cache(total=128, block=32)  # 4 blocks
        assert cache.occupancy() == 0.0
        cache.fill(0)
        cache.fill(1)
        assert cache.occupancy() == 0.5

    def test_resident_blocks(self):
        cache = make_cache()
        cache.fill(3)
        cache.fill(40)
        assert sorted(cache.resident_blocks()) == [3, 40]


@settings(max_examples=50)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
    ways=st.sampled_from([1, 2, 4, 0]),
)
def test_property_lookup_after_fill_always_hits(blocks, ways):
    """Whatever the fill sequence, the most recent block is resident and
    set capacity is never exceeded."""
    cache = make_cache(total=2048, block=32, ways=ways, seed=3)
    for block in blocks:
        if not cache.lookup(block):
            cache.fill(block)
        assert cache.lookup(block)
    # capacity invariant: each set holds at most `ways` valid blocks
    per_set: dict[int, int] = {}
    for tag in cache.resident_blocks():
        per_set[tag & cache.set_mask] = per_set.get(tag & cache.set_mask, 0) + 1
    assert all(count <= cache.ways for count in per_set.values())
