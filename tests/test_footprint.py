"""Tests for the OS layout."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import KIB, RampageParams
from repro.ossim.footprint import (
    CONVENTIONAL_OS_BASE,
    OsLayout,
    conventional_layout,
    rampage_layout,
)


class TestOsLayout:
    def test_regions_must_not_overlap(self):
        with pytest.raises(ConfigurationError):
            OsLayout(
                code_base=0,
                code_bytes=100,
                data_base=50,  # inside code
                data_bytes=100,
                table_base=1000,
                table_entries=10,
                entry_bytes=16,
            )

    def test_entry_addr_wraps(self):
        layout = conventional_layout(table_entries=8, entry_bytes=16)
        assert layout.entry_addr(0) == layout.table_base
        assert layout.entry_addr(8) == layout.table_base
        assert layout.entry_addr(9) == layout.table_base + 16

    def test_total_bytes(self):
        layout = conventional_layout(
            table_entries=10, entry_bytes=16, code_bytes=1024, data_bytes=512
        )
        assert layout.total_bytes == 1024 + 512 + 160


class TestRampageLayout:
    def test_fits_in_pinned_bytes(self):
        params = RampageParams(page_bytes=1 * KIB)
        layout = rampage_layout(params)
        assert layout.total_bytes <= params.pinned_bytes

    def test_one_entry_per_frame(self):
        params = RampageParams(page_bytes=512)
        layout = rampage_layout(params)
        assert layout.table_entries == params.num_frames
        assert layout.entry_bytes == params.ipt_entry_bytes

    def test_starts_at_physical_zero(self):
        layout = rampage_layout(RampageParams())
        assert layout.code_base == 0


class TestConventionalLayout:
    def test_lives_in_reserved_region(self):
        layout = conventional_layout()
        assert layout.code_base == CONVENTIONAL_OS_BASE
        assert layout.table_base > layout.data_base > layout.code_base

    def test_fixed_table_size_independent_of_block_size(self):
        # Figure 4: "the baseline hierarchy data is the same across all
        # block sizes" -- its table maps DRAM pages, not L2 blocks.
        assert conventional_layout().table_entries == 65_536
