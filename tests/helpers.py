"""Shared helpers for the test suite.

Importable as ``from helpers import ...`` because pytest (rootdir mode,
no ``__init__.py``) puts this directory on ``sys.path``.
"""

import numpy as np

from repro.core.params import KIB
from repro.trace.record import TraceChunk


def random_chunks(seed, n_chunks=6, chunk_len=400):
    """Multi-process chunks with realistic region structure."""
    rng = np.random.default_rng(seed)
    chunks = []
    for i in range(n_chunks):
        kinds = rng.choice(
            [0, 1, 2], size=chunk_len, p=[0.2, 0.1, 0.7]
        ).astype(np.uint8)
        region = rng.choice([0x40_0000, 0x100_0000, 0x200_0000])
        addrs = (
            region + rng.integers(0, 64 * KIB, size=chunk_len, dtype=np.int64) // 4 * 4
        ).astype(np.uint64)
        chunks.append(TraceChunk(pid=i % 3, kinds=kinds, addrs=addrs))
    return chunks
