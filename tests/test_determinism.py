"""Determinism and chunking-invariance properties of whole simulations.

A simulation must be a pure function of (machine params, workload spec):

* identical runs give identical picosecond totals and statistics;
* the chunk granularity the trace happens to be delivered in must not
  change anything (the interleaver and the systems' fast loops both cut
  chunks at arbitrary points);
* the scheduling quantum *does* matter (it changes the interleaving),
  but the total workload consumed never does.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.systems.factory import baseline_machine, rampage_machine
from repro.systems.simulator import simulate
from repro.trace.benchmarks import TABLE2_PROGRAMS
from repro.trace.synthetic import SyntheticProgram


def programs(chunk_refs, n=4, refs=3000, seed=0):
    return [
        SyntheticProgram(
            TABLE2_PROGRAMS[i], total_refs=refs, pid=i, seed=seed + i,
            chunk_refs=chunk_refs,
        )
        for i in range(n)
    ]


@pytest.mark.parametrize(
    "make_machine",
    [
        lambda: baseline_machine(10**9, 512),
        lambda: rampage_machine(10**9, 512),
        lambda: rampage_machine(10**9, 256, switch_on_miss=True),
    ],
    ids=["baseline", "rampage", "rampage-som"],
)
def test_chunk_granularity_is_invisible(make_machine):
    results = {}
    for chunk_refs in (64, 1024, 65_536):
        result = simulate(
            make_machine(), programs(chunk_refs), slice_refs=700
        )
        results[chunk_refs] = result
    times = {result.time_ps for result in results.values()}
    assert len(times) == 1, f"chunking changed simulated time: {times}"
    dicts = [result.stats.as_dict() for result in results.values()]
    assert dicts[0] == dicts[1] == dicts[2]


def test_identical_runs_are_identical():
    a = simulate(rampage_machine(10**9, 256), programs(512), slice_refs=700)
    b = simulate(rampage_machine(10**9, 256), programs(512), slice_refs=700)
    assert a.time_ps == b.time_ps
    assert a.stats.as_dict() == b.stats.as_dict()


def test_different_seeds_change_results():
    a = simulate(rampage_machine(10**9, 256), programs(512, seed=1), slice_refs=700)
    b = simulate(rampage_machine(10**9, 256), programs(512, seed=2), slice_refs=700)
    assert a.time_ps != b.time_ps


@settings(max_examples=8, deadline=None)
@given(slice_refs=st.sampled_from([300, 700, 1500, 6000]))
def test_quantum_changes_time_but_not_consumption(slice_refs):
    result = simulate(
        baseline_machine(10**9, 512), programs(1024), slice_refs=slice_refs
    )
    assert result.stats.workload_refs == 4 * 3000
