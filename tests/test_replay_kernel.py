"""Vectorized decision-op replay kernel == the scalar oracle, always.

The tentpole contract of the replay kernel
(:mod:`repro.trace.replay_kernel`): for *every* decision-op tape and
*every* (Rambus timing, cycle time) pair, :class:`ReplayKernel` returns
exactly the ``(dram_ps, stall_ps, overlap_ps)`` triple the scalar
``_replay_timeline`` interpreter computes -- including adversarial
tapes (dense waits, back-to-back backgrounds, zero-length tapes,
non-monotone cycle stamps that defeat the window segmentation) and
pipelined channels whose pricing depends on queueing state.  The array
price functions in :mod:`repro.mem.dram` must match their scalar
counterparts element for element, batched group pricing must match
per-cell pricing, malformed tapes must fail identically, and the
scalar interpreter's pending-fill map must stay bounded (the unbounded
growth was a bug this PR fixed).
"""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import RambusParams
from repro.mem.dram import (
    rambus_pipelined_ps,
    rambus_pipelined_ps_array,
    rambus_transfer_ps,
    rambus_transfer_ps_array,
)
from repro.trace import filter as missplane
from repro.trace.filter import PlaneReplayError, _replay_timeline
from repro.trace.replay_kernel import (
    DOP_BG_FILL,
    DOP_BG_WB,
    DOP_SYNC,
    DOP_WAIT,
    ReplayKernel,
)

#: Three genuinely different channels: the default part, a slow part,
#: and a pipelined channel (whose cost rule depends on queueing state,
#: the hardest case for a vectorized pricer), plus a second pipelined
#: variant with a different efficiency so the rounding path is covered.
DRAM_TIMINGS = (
    RambusParams(),
    RambusParams(access_ps=90_000, ps_per_beat=2_500),
    RambusParams(pipelined=True),
    RambusParams(
        pipelined=True, pipeline_efficiency=0.80, ps_per_beat=1_333
    ),
)

#: Cycle times spanning the sweep's issue-rate range and degenerate
#: extremes (1 ps/cycle makes every wait decision tight).
CYCLE_PS = (1, 250, 1_000, 5_000)


def columns(rows):
    arr = np.asarray(rows, dtype=np.int64).reshape(-1, 3)
    return arr[:, 0].tolist(), arr[:, 1].tolist(), arr[:, 2].tolist()


def assert_kernel_matches_scalar(rows):
    cols = columns(rows)
    kernel = ReplayKernel(np.asarray(rows, dtype=np.int64).reshape(-1, 3))
    for dram in DRAM_TIMINGS:
        for cycle_ps in CYCLE_PS:
            assert kernel.price(dram, cycle_ps) == _replay_timeline(
                dram, cycle_ps, cols
            ), f"diverged at {dram} cycle_ps={cycle_ps}: {rows}"


# ----------------------------------------------------------------------
# Array price functions
# ----------------------------------------------------------------------


def test_transfer_price_array_matches_scalar_elementwise():
    sizes = np.concatenate(
        [np.arange(0, 70), np.array([127, 128, 129, 511, 512, 4096, 65536])]
    ).astype(np.int64)
    for dram in DRAM_TIMINGS:
        plain = rambus_transfer_ps_array(dram, sizes)
        pipe = rambus_pipelined_ps_array(dram, sizes)
        for nbytes, got_plain, got_pipe in zip(
            sizes.tolist(), plain.tolist(), pipe.tolist()
        ):
            assert got_plain == rambus_transfer_ps(dram, nbytes)
            assert got_pipe == rambus_pipelined_ps(dram, nbytes)


def test_price_arrays_reject_negative_sizes_like_the_scalars():
    with pytest.raises(ConfigurationError):
        rambus_transfer_ps_array(RambusParams(), np.array([64, -1]))
    with pytest.raises(ConfigurationError):
        rambus_pipelined_ps_array(RambusParams(), np.array([-8]))


def test_price_arrays_handle_empty_input():
    assert len(rambus_transfer_ps_array(RambusParams(), [])) == 0
    assert len(rambus_pipelined_ps_array(RambusParams(), [])) == 0


# ----------------------------------------------------------------------
# Kernel == scalar on crafted tapes
# ----------------------------------------------------------------------


def test_empty_tape_prices_to_zero():
    kernel = ReplayKernel(np.zeros((0, 3), dtype=np.int64))
    assert kernel.price(RambusParams(), 1_000) == (0, 0, 0)
    assert _replay_timeline(RambusParams(), 1_000, ([], [], [])) == (0, 0, 0)


def test_sync_only_tape_matches():
    rows = [(DOP_SYNC, 32 * (i % 4), 10 * i) for i in range(50)]
    assert_kernel_matches_scalar(rows)


def test_back_to_back_backgrounds_then_sync():
    # Several queued backgrounds pile onto the channel before the next
    # synchronous transfer drains it: the contended-scan path, where
    # pipelined pricing of queued transfers matters.
    rows = [
        (DOP_BG_FILL, 512, 0),
        (DOP_BG_WB, 1024, 1),
        (DOP_BG_FILL, 512, 2),
        (DOP_SYNC, 64, 3),
        (DOP_WAIT, 0, 4),
        (DOP_WAIT, 1, 5),
        (DOP_BG_FILL, 256, 6),
        (DOP_WAIT, 2, 7),
        (DOP_SYNC, 32, 2_000),
    ]
    assert_kernel_matches_scalar(rows)


def test_dense_waits_on_one_fill():
    # The same fill waited on repeatedly: only the first wait can
    # stall; the scalar's pop-on-consume and the kernel's window scan
    # must agree on all of them.
    rows = [
        (DOP_BG_FILL, 4096, 0),
        (DOP_WAIT, 0, 1),
        (DOP_WAIT, 0, 2),
        (DOP_WAIT, 0, 3),
        (DOP_SYNC, 64, 4),
        (DOP_WAIT, 0, 5),  # dead: the sync drained the channel
    ]
    assert_kernel_matches_scalar(rows)


def test_trailing_window_without_terminal_sync():
    rows = [
        (DOP_SYNC, 32, 0),
        (DOP_BG_FILL, 512, 10),
        (DOP_WAIT, 0, 12),
        (DOP_BG_WB, 256, 14),
    ]
    assert_kernel_matches_scalar(rows)


def test_zero_byte_transfers_cost_nothing_everywhere():
    rows = [
        (DOP_SYNC, 0, 0),
        (DOP_BG_FILL, 0, 1),
        (DOP_WAIT, 0, 2),
        (DOP_SYNC, 0, 3),
    ]
    assert_kernel_matches_scalar(rows)


def test_non_monotone_cycles_fall_back_to_the_scalar_scan():
    # Never produced by a recording, but the kernel must not *assume*
    # monotonicity: decreasing stamps defeat window independence, and
    # the kernel's whole-tape fallback must still match the oracle.
    rows = [
        (DOP_BG_FILL, 512, 100),
        (DOP_SYNC, 64, 50),
        (DOP_WAIT, 0, 10),
        (DOP_SYNC, 32, 200),
    ]
    kernel = ReplayKernel(np.asarray(rows, dtype=np.int64))
    assert kernel.contended_ops == len(rows)
    assert_kernel_matches_scalar(rows)


# ----------------------------------------------------------------------
# Randomized adversarial tapes
# ----------------------------------------------------------------------


def random_tape(rng, n, wait_bias):
    """A structurally valid but adversarial decision-op tape."""
    rows, cycles, fills = [], 0, 0
    for _ in range(n):
        cycles += int(rng.integers(0, 40))
        roll = rng.random()
        if roll < 0.30:
            rows.append((DOP_SYNC, int(rng.integers(0, 5)) * 32, cycles))
        elif roll < 0.55:
            rows.append(
                (DOP_BG_FILL, int(rng.integers(0, 4)) * 256, cycles)
            )
            fills += 1
        elif roll < 0.70:
            rows.append((DOP_BG_WB, int(rng.integers(0, 3)) * 512, cycles))
        elif fills and roll < wait_bias:
            rows.append((DOP_WAIT, int(rng.integers(0, fills)), cycles))
        else:
            rows.append((DOP_SYNC, 0, cycles))
    return rows


def test_randomized_tapes_match_scalar_across_timings():
    rng = np.random.default_rng(1234)
    for trial in range(120):
        wait_bias = 0.99 if trial % 3 == 0 else 0.85  # dense-wait runs
        rows = random_tape(rng, int(rng.integers(0, 80)), wait_bias)
        assert_kernel_matches_scalar(rows)


def test_group_batched_pricing_equals_per_cell():
    rng = np.random.default_rng(99)
    rows = random_tape(rng, 300, 0.9)
    kernel = ReplayKernel(np.asarray(rows, dtype=np.int64))
    timings = [(dram, cyc) for dram in DRAM_TIMINGS for cyc in CYCLE_PS]
    assert kernel.price_many(timings) == [
        kernel.price(dram, cyc) for dram, cyc in timings
    ]


# ----------------------------------------------------------------------
# Malformed tapes
# ----------------------------------------------------------------------


def test_wait_before_fill_raises_in_both_engines():
    rows = [(DOP_WAIT, 0, 0), (DOP_BG_FILL, 512, 1)]
    with pytest.raises(IndexError):
        _replay_timeline(RambusParams(), 1_000, columns(rows))
    with pytest.raises(IndexError):
        ReplayKernel(np.asarray(rows, dtype=np.int64))


def test_negative_wait_ordinal_raises_in_both_engines():
    rows = [(DOP_BG_FILL, 512, 0), (DOP_WAIT, -1, 1)]
    with pytest.raises(IndexError):
        _replay_timeline(RambusParams(), 1_000, columns(rows))
    with pytest.raises(IndexError):
        ReplayKernel(np.asarray(rows, dtype=np.int64))


def test_miss_plane_kernel_wraps_malformed_tape_as_replay_error():
    plane = missplane.MissPlane(
        key="synthetic",
        chunks=np.zeros((0, 4), dtype=np.int64),
        events=np.zeros((0, 6), dtype=np.int64),
        flags=np.zeros(0, dtype=np.uint8),
        gaps=np.zeros((0, 4), dtype=np.int64),
        dirty=np.zeros(0, dtype=np.int64),
        tape=np.zeros(0, dtype=np.int64),
        cycle_ps=1_000,
        stats={},
        dops=np.asarray([(DOP_WAIT, 3, 0)], dtype=np.int64),
    )
    with pytest.raises(PlaneReplayError):
        plane.kernel()


def test_miss_plane_kernel_is_memoized():
    plane = missplane.MissPlane(
        key="synthetic",
        chunks=np.zeros((0, 4), dtype=np.int64),
        events=np.zeros((0, 6), dtype=np.int64),
        flags=np.zeros(0, dtype=np.uint8),
        gaps=np.zeros((0, 4), dtype=np.int64),
        dirty=np.zeros(0, dtype=np.int64),
        tape=np.zeros(0, dtype=np.int64),
        cycle_ps=1_000,
        stats={},
        dops=np.asarray([(DOP_SYNC, 64, 0)], dtype=np.int64),
    )
    assert plane.kernel() is plane.kernel()


# ----------------------------------------------------------------------
# Bounded pending-fill map (regression)
# ----------------------------------------------------------------------


def test_scalar_pending_map_stays_bounded_on_fill_heavy_tape():
    # 1000 fill/wait/sync triples: the old list-based implementation
    # kept all 1000 completion times alive for the whole replay; the
    # bounded map holds only the fills outstanding since the last
    # synchronous transfer (here: one).
    rows = []
    for i in range(1_000):
        base = 10 * i
        rows.append((DOP_BG_FILL, 512, base))
        rows.append((DOP_WAIT, i, base + 3))
        rows.append((DOP_SYNC, 32, base + 6))
    result = _replay_timeline(RambusParams(), 1_000, columns(rows))
    assert missplane._timeline_pending_peak == 1
    assert result == ReplayKernel(
        np.asarray(rows, dtype=np.int64)
    ).price(RambusParams(), 1_000)


def test_scalar_pending_map_drains_on_sync_without_waits():
    # Fills that are never waited on are retired by the next sync, not
    # retained forever.
    rows = []
    for i in range(100):
        base = 10 * i
        rows.append((DOP_BG_FILL, 512, base))
        rows.append((DOP_BG_FILL, 512, base + 1))
        rows.append((DOP_SYNC, 32, base + 5))
    _replay_timeline(RambusParams(), 1_000, columns(rows))
    assert missplane._timeline_pending_peak == 2
    assert_kernel_matches_scalar(rows)
