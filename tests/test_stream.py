"""Tests for stream utilities."""

import numpy as np
import pytest

from repro.core.errors import TraceFormatError
from repro.trace import stream
from repro.trace.record import IFETCH, READ, TraceChunk


def chunk_of(n, pid=0, kind=READ, start=0):
    return TraceChunk(
        pid=pid,
        kinds=np.full(n, kind, dtype=np.uint8),
        addrs=np.arange(start, start + n, dtype=np.uint64),
    )


def test_take_truncates_final_chunk():
    chunks = [chunk_of(10), chunk_of(10, start=10)]
    taken = list(stream.take(iter(chunks), 15))
    assert [len(c) for c in taken] == [10, 5]


def test_take_zero_yields_nothing():
    assert list(stream.take(iter([chunk_of(5)]), 0)) == []


def test_count_references():
    assert stream.count_references([chunk_of(3), chunk_of(4)]) == 7


def test_concat_single_pid():
    merged = stream.concat([chunk_of(3), chunk_of(2, start=3)])
    assert len(merged) == 5
    assert list(merged.addrs) == [0, 1, 2, 3, 4]


def test_concat_empty():
    assert len(stream.concat([])) == 0


def test_concat_mixed_pids_raises():
    with pytest.raises(TraceFormatError):
        stream.concat([chunk_of(2, pid=0), chunk_of(2, pid=1)])


def test_kind_histogram():
    chunks = [chunk_of(3, kind=READ), chunk_of(2, kind=IFETCH)]
    assert stream.kind_histogram(chunks) == {READ: 3, IFETCH: 2}
