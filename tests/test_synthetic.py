"""Tests for the synthetic program generators."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.trace.benchmarks import table2_catalog
from repro.trace.record import IFETCH, READ, WRITE
from repro.trace.synthetic import (
    ARRAY_BASE,
    CHASE_BASE,
    CODE_BASE,
    HOT_BASE,
    STACK_BASE,
    SyntheticProgram,
    build_program,
    build_workload,
)


@pytest.fixture(scope="module")
def gcc_chunks():
    spec = table2_catalog()["gcc"]
    program = SyntheticProgram(spec, total_refs=50_000, pid=3, seed=1)
    return list(program.chunks())


def test_total_refs_exact(gcc_chunks):
    assert sum(len(c) for c in gcc_chunks) == 50_000


def test_pid_stamped(gcc_chunks):
    assert all(chunk.pid == 3 for chunk in gcc_chunks)


def test_ifetch_fraction_matches_catalog(gcc_chunks):
    spec = table2_catalog()["gcc"]
    ifetch = sum(int(np.count_nonzero(c.kinds == IFETCH)) for c in gcc_chunks)
    total = sum(len(c) for c in gcc_chunks)
    assert ifetch / total == pytest.approx(spec.ifetch_fraction, abs=0.02)


def test_write_fraction_of_data_refs(gcc_chunks):
    spec = table2_catalog()["gcc"]
    writes = sum(int(np.count_nonzero(c.kinds == WRITE)) for c in gcc_chunks)
    reads = sum(int(np.count_nonzero(c.kinds == READ)) for c in gcc_chunks)
    assert writes / (writes + reads) == pytest.approx(spec.write_fraction, abs=0.03)


def test_ifetches_land_in_code_region(gcc_chunks):
    spec = table2_catalog()["gcc"]
    for chunk in gcc_chunks:
        code = chunk.addrs[chunk.kinds == IFETCH]
        assert code.min() >= CODE_BASE
        assert code.max() < CODE_BASE + spec.code_bytes


def test_data_lands_in_data_regions(gcc_chunks):
    spec = table2_catalog()["gcc"]
    regions = [
        (ARRAY_BASE, spec.array_bytes),
        (HOT_BASE, spec.hot_bytes),
        (CHASE_BASE, spec.chase_bytes),
        (STACK_BASE, spec.stack_bytes),
    ]
    for chunk in gcc_chunks:
        data = chunk.addrs[chunk.kinds != IFETCH]
        in_any = np.zeros(len(data), dtype=bool)
        for base, size in regions:
            in_any |= (data >= base) & (data < base + size)
        assert in_any.all()


def test_deterministic_across_restarts():
    spec = table2_catalog()["sed"]
    program = SyntheticProgram(spec, total_refs=10_000, seed=7)
    first = np.concatenate([c.addrs for c in program.chunks()])
    second = np.concatenate([c.addrs for c in program.chunks()])
    assert np.array_equal(first, second)


def test_different_seeds_differ():
    spec = table2_catalog()["sed"]
    a = np.concatenate(
        [c.addrs for c in SyntheticProgram(spec, 5_000, seed=1).chunks()]
    )
    b = np.concatenate(
        [c.addrs for c in SyntheticProgram(spec, 5_000, seed=2).chunks()]
    )
    assert not np.array_equal(a, b)


def test_chunk_size_respected():
    spec = table2_catalog()["sed"]
    program = SyntheticProgram(spec, total_refs=10_000, chunk_refs=1024)
    sizes = [len(c) for c in program.chunks()]
    assert all(size <= 1024 for size in sizes)
    assert sum(sizes) == 10_000


def test_build_program_scale():
    spec = table2_catalog()["yacc"]  # 12.1 M refs
    program = build_program(spec, scale=0.001)
    assert program.total_refs == 12_100


def test_build_program_rejects_bad_scale():
    spec = table2_catalog()["yacc"]
    with pytest.raises(ConfigurationError):
        build_program(spec, scale=0)


def test_build_workload_distinct_pids_and_seeds():
    programs = build_workload(scale=0.0001, seed=5)
    assert len(programs) == 18
    assert sorted(p.pid for p in programs) == list(range(18))
    assert len({p.seed for p in programs}) == 18


def test_workload_total_matches_catalog_scale():
    programs = build_workload(scale=0.0001)
    total = sum(p.total_refs for p in programs)
    # 1093.1 M * 0.0001, within rounding of 18 programs.
    assert total == pytest.approx(109_310, abs=18)
