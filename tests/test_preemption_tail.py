"""Switch-on-miss preemption tails through the Simulator driver.

These tests drive the real :class:`Simulator`/:class:`InterleavedWorkload`
pair with a scripted stand-in machine whose preemption points are chosen
by the test, so the driver's tail handling is checked exactly:

* the unconsumed suffix of a preempted chunk is pushed back and replayed
  in order (no reference lost or duplicated),
* consumed counts are exact at the preemption point,
* ``skip_switch_trace`` suppresses the scheduled switch trace at the
  slice boundary a preemption itself created.
"""

from types import SimpleNamespace

from repro.systems.simulator import Simulator
from repro.trace.benchmarks import table2_catalog
from repro.trace.interleave import InterleavedWorkload
from repro.trace.synthetic import SyntheticProgram


def programs(n=2, refs=2000):
    specs = list(table2_catalog().values())
    return [
        SyntheticProgram(specs[i], total_refs=refs, pid=i, seed=i, chunk_refs=256)
        for i in range(n)
    ]


def reference_log(n=2, refs=2000):
    """Every program's references in order, keyed by pid."""
    log = {}
    for program in programs(n, refs):
        refs_list = []
        for chunk in program.chunks():
            refs_list.extend(zip(chunk.kinds_list, chunk.addrs_list))
        log[program.pid] = refs_list
    return log


class ScriptedSystem:
    """Counts references and preempts at scripted global indices.

    ``preempt_at`` holds 0-based global reference counts: when the total
    consumed so far reaches such a count mid-chunk, the chunk stops
    *before* consuming that reference, exactly like a switch-on-miss
    fault raised by the reference's translation.
    """

    def __init__(self, preempt_at=(), scheduled_switches=True):
        self.params = SimpleNamespace(scheduled_switches=scheduled_switches)
        self._preempt_at = sorted(preempt_at)
        self.total = 0
        self.consumed = []  # (pid, kind, addr) in consumption order
        self.switch_pids = []
        self.slice_starts = 0
        self.finalized = False

    def run_chunk(self, chunk):
        self.slice_starts += chunk.new_slice
        kinds = chunk.kinds_list
        addrs = chunk.addrs_list
        for idx in range(len(kinds)):
            if self._preempt_at and self.total == self._preempt_at[0]:
                self._preempt_at.pop(0)
                return idx
            self.total += 1
            self.consumed.append((chunk.pid, kinds[idx], addrs[idx]))
        return len(kinds)

    def context_switch(self, pid):
        self.switch_pids.append(pid)

    def finalize(self):
        self.finalized = True
        return None


def drive(preempt_at=(), scheduled_switches=True, slice_refs=500):
    system = ScriptedSystem(preempt_at, scheduled_switches)
    sim = Simulator(system, InterleavedWorkload(programs(), slice_refs=slice_refs))
    sim.run()
    return system, sim


def test_no_preemption_consumes_in_program_order():
    system, sim = drive()
    assert sim.preemptions == 0
    expected = reference_log()
    for pid, refs in expected.items():
        consumed = [(k, a) for p, k, a in system.consumed if p == pid]
        assert consumed == refs


def test_preempted_tails_replay_without_loss_or_duplication():
    # Preemption points chosen to land mid-chunk (chunks are 256 refs).
    system, sim = drive(preempt_at=(100, 300, 777))
    assert sim.preemptions == 3
    expected = reference_log()
    assert system.total == sum(len(refs) for refs in expected.values())
    for pid, refs in expected.items():
        consumed = [(k, a) for p, k, a in system.consumed if p == pid]
        assert consumed == refs
    assert system.finalized


def test_consumed_count_exact_at_preemption():
    # First preemption after exactly 100 refs: the 101st reference the
    # machine sees must be the same one it refused, replayed later.
    system, _ = drive(preempt_at=(100,))
    expected = reference_log()
    pid0_consumed = [(k, a) for p, k, a in system.consumed if p == 0]
    # 500-ref slices start with pid 0, so the first 100 consumed refs
    # are pid 0's first 100 and the refused ref is pid 0's ref #100.
    assert system.consumed[:100] == [
        (0, k, a) for k, a in expected[0][:100]
    ]
    assert pid0_consumed[100] == expected[0][100]


def test_zero_consumed_preemption_replays_whole_chunk():
    # total == 0 preempts before the very first reference.
    system, sim = drive(preempt_at=(0,))
    assert sim.preemptions == 1
    expected = reference_log()
    for pid, refs in expected.items():
        consumed = [(k, a) for p, k, a in system.consumed if p == pid]
        assert consumed == refs


def test_skip_switch_trace_after_preemption():
    # Every slice boundary after the first gets a switch trace EXCEPT
    # the boundary a preemption itself created (the fault path already
    # charged one): switches == boundaries - preemptions.
    system = ScriptedSystem(preempt_at=(100,), scheduled_switches=True)
    workload = InterleavedWorkload(programs(n=1), slice_refs=500)
    sim = Simulator(system, workload)
    sim.run()
    assert sim.preemptions == 1
    assert system.total == 2000
    boundaries = system.slice_starts - 1  # first slice is not a switch
    assert boundaries == 4  # the preemption added one to the 3 scheduled
    assert len(system.switch_pids) == boundaries - sim.preemptions


def test_scheduled_switches_still_charged_between_ordinary_slices():
    system, sim = drive(preempt_at=(), scheduled_switches=True)
    # 2 programs x 2000 refs in 500-ref slices: 8 slices, 7 boundaries.
    assert len(system.switch_pids) == 7
    assert system.slice_starts == 8


def test_preemption_does_not_suppress_later_scheduled_switches():
    system, sim = drive(preempt_at=(100, 777))
    assert sim.preemptions == 2
    boundaries = system.slice_starts - 1
    # Only the two preempted boundaries go untraced.
    assert len(system.switch_pids) == boundaries - sim.preemptions
    assert len(system.switch_pids) >= 7  # ordinary boundaries all charged
