"""Tests for the parallel sweep engine.

The contract under test: :class:`ParallelRunner` is a drop-in
:class:`Runner` whose worker processes leave *exactly* the same cache
behind as the serial path -- same file names, same bytes -- and which
degrades to in-process execution whenever a pool is pointless or
broken.
"""

import os
from pathlib import Path

import pytest

import repro.experiments.parallel as parallel_mod
from repro.analysis.runtime import RunRecord
from repro.core.observe import read_manifest
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    ParallelRunner,
    _simulate_cell,
    _simulate_cell_timed,
)
from repro.experiments.replication import replicate
from repro.experiments.runner import Runner, iter_cache_files
from repro.systems.factory import baseline_machine
from repro.trace import materialize

LABELS = ("baseline", "rampage")


@pytest.fixture(autouse=True)
def fresh_trace_registry():
    materialize.clear_registry()
    yield
    materialize.clear_registry()


def config(cache_dir):
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128, 1024),
        seed=0,
        cache_dir=cache_dir,
    )


def cache_files(directory):
    return sorted(iter_cache_files(directory))


def test_parallel_matches_serial_byte_for_byte(tmp_path):
    serial = Runner(config(tmp_path / "serial"))
    serial_grids = {label: serial.grid(label) for label in LABELS}

    par = ParallelRunner(config(tmp_path / "par"), workers=4)
    assert par.prefetch(LABELS) == 4
    for label in LABELS:
        grid = par.grid(label)
        for rate in par.config.issue_rates:
            for size in par.config.sizes:
                assert grid.cell(rate, size) == serial_grids[label].cell(
                    rate, size
                )

    a = cache_files(tmp_path / "serial")
    b = cache_files(tmp_path / "par")
    assert [p.name for p in a] == [p.name for p in b]
    for pa, pb in zip(a, b):
        assert pa.read_bytes() == pb.read_bytes()


def test_worker_record_round_trips_to_in_process_json(tmp_path):
    par = ParallelRunner(config(tmp_path), workers=1)
    spec = par.pending_cells(("baseline",))[0]
    worker_dict = _simulate_cell(spec)
    record = par.record(spec.label, spec.params)
    assert record.as_dict() == worker_dict


def test_pending_cells_skip_cached_and_prefetch_drains(tmp_path):
    par = ParallelRunner(config(tmp_path), workers=1)
    pending = par.pending_cells(LABELS)
    assert len(pending) == 4
    assert {spec.label for spec in pending} == set(LABELS)
    par.record(pending[0].label, pending[0].params)
    assert len(par.pending_cells(LABELS)) == 3
    assert par.prefetch(LABELS) == 3
    assert par.pending_cells(LABELS) == []
    assert par.prefetch(LABELS) == 0


def test_pending_cells_survive_runner_restart(tmp_path):
    first = ParallelRunner(config(tmp_path), workers=1)
    first.prefetch(("baseline",))
    # A fresh runner over the same cache dir sees the disk records.
    second = ParallelRunner(config(tmp_path), workers=1)
    assert {spec.label for spec in second.pending_cells(LABELS)} == {"rampage"}


def test_progress_callback_reports_every_cell(tmp_path):
    events = []
    par = ParallelRunner(
        config(tmp_path),
        workers=1,
        progress=lambda done, total, record: events.append(
            (done, total, record.label)
        ),
    )
    par.prefetch(("baseline",))
    assert events == [(1, 2, "baseline"), (2, 2, "baseline")]


def test_pool_failure_degrades_to_in_process(tmp_path, monkeypatch):
    par = ParallelRunner(config(tmp_path), workers=4)

    def boom(pending):
        raise RuntimeError("pool unavailable")

    monkeypatch.setattr(par, "_prefetch_pool", boom)
    assert par.prefetch(LABELS) == 4
    assert par.pending_cells(LABELS) == []


def test_partial_pool_failure_never_double_fires_progress(tmp_path, monkeypatch):
    """Cells committed (and reported) by the pool before it died must
    not be re-reported by the serial fallback: ``done`` stays monotonic
    and each count fires exactly once over one shared total."""
    events = []
    par = ParallelRunner(
        config(tmp_path),
        workers=4,
        progress=lambda done, total, record: events.append((done, total)),
    )

    def partial_pool(pending):
        # Complete one cell the way the real pool does -- store it and
        # fire the progress callback -- then die.
        spec = pending[0]
        record = RunRecord.from_dict(_simulate_cell(spec))
        par._store(par._cache_key(spec.params), record)
        par.progress(1, len(pending), record)
        raise RuntimeError("pool died mid-sweep")

    monkeypatch.setattr(par, "_prefetch_pool", partial_pool)
    assert par.prefetch(LABELS) == 4
    assert events == [(1, 4), (2, 4), (3, 4), (4, 4)]
    assert par.pending_cells(LABELS) == []


def test_cell_specs_carry_the_shared_trace_artifact(tmp_path):
    par = ParallelRunner(config(tmp_path), workers=1)
    pending = par.pending_cells(LABELS)
    paths = {spec.trace_dir for spec in pending}
    assert len(paths) == 1
    (artifact,) = paths
    assert artifact is not None
    assert Path(artifact).is_dir()
    assert Path(artifact).parent == tmp_path / materialize.TRACE_DIRNAME


def test_worker_attaches_artifact_without_synthesis(tmp_path, monkeypatch):
    """The warm path: a worker handed an artifact path must never call
    build_workload -- the whole point of the materialized plane."""
    par = ParallelRunner(config(tmp_path), workers=1)
    spec = par.pending_cells(("baseline",))[0]
    assert spec.trace_dir is not None
    materialize.clear_registry()  # simulate a fresh worker process

    def no_synthesis(*args, **kwargs):
        raise AssertionError("worker ran trace synthesis on the warm path")

    monkeypatch.setattr(parallel_mod, "build_workload", no_synthesis)
    monkeypatch.setattr(materialize, "build_workload", no_synthesis)
    payload = _simulate_cell(spec)
    assert payload["label"] == "baseline"


def test_worker_falls_back_to_synthesis_on_bad_artifact(tmp_path):
    par = ParallelRunner(config(tmp_path), workers=1)
    spec = par.pending_cells(("baseline",))[0]
    reference = _simulate_cell(spec)
    broken = parallel_mod.CellSpec(
        label=spec.label,
        params=spec.params,
        scale=spec.scale,
        slice_refs=spec.slice_refs,
        seed=spec.seed,
        trace_dir=str(tmp_path / "traces" / "no-such-artifact"),
    )
    materialize.clear_registry()
    assert _simulate_cell(broken) == reference


def test_without_cache_dir_workers_get_no_artifact():
    cfg = ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128,),
        cache_dir=None,
    )
    par = ParallelRunner(cfg, workers=1)
    assert all(spec.trace_dir is None for spec in par.pending_cells(LABELS))


def test_worker_timed_wraps_untimed(tmp_path):
    par = ParallelRunner(config(tmp_path), workers=1)
    spec = par.pending_cells(("baseline",))[0]
    payload, wall_s = _simulate_cell_timed(spec)
    assert payload == _simulate_cell(spec)
    assert wall_s > 0


def test_prefetch_emits_sweep_events_and_manifest(tmp_path):
    par = ParallelRunner(config(tmp_path), workers=1)
    assert par.prefetch(LABELS) == 4
    started = par.events.of("sweep_started")
    completed = par.events.of("sweep_completed")
    assert len(started) == len(completed) == 1
    assert started[0]["pending"] == 4
    assert completed[0]["cells"] == 4
    assert completed[0]["wall_s"] > 0
    assert len(par.events.of("cell_completed")) == 4
    manifest = read_manifest(tmp_path)
    assert manifest["entries"] == 4
    assert manifest["cache"]["stores"] == 4
    assert manifest["cache"]["quarantined"] == 0


def test_single_worker_never_builds_a_pool(tmp_path, monkeypatch):
    # Poison the pool constructor: any attempt to use it would raise.
    monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", None)
    par = ParallelRunner(config(tmp_path), workers=1)
    assert par.prefetch(LABELS) == 4
    assert par.pending_cells(LABELS) == []


def test_default_worker_count_is_cpu_count(tmp_path):
    par = ParallelRunner(config(tmp_path))
    assert par.workers == (os.cpu_count() or 1)


@pytest.mark.parametrize("workers", [0, -1, -8])
def test_invalid_worker_count_is_rejected_up_front(tmp_path, workers):
    with pytest.raises(ValueError, match="workers must be >= 1"):
        ParallelRunner(config(tmp_path), workers=workers)


def test_replicate_parallel_matches_serial():
    cfg = ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(128,),
        cache_dir=None,
    )
    params = baseline_machine(10**9, 512)
    serial = replicate(params, cfg, seeds=(0, 1), workers=1)
    parallel = replicate(params, cfg, seeds=(0, 1), workers=2)
    assert parallel.values == serial.values
