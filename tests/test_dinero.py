"""Tests for the .din trace format."""

import pytest

from repro.core.errors import TraceFormatError
from repro.trace import dinero
from repro.trace.record import IFETCH, READ, WRITE, Reference, TraceChunk


def refs_sample():
    return [
        Reference(READ, 0x1000, pid=0),
        Reference(WRITE, 0x1004, pid=0),
        Reference(IFETCH, 0x400000, pid=0),
        Reference(READ, 0x2000, pid=1),
        Reference(IFETCH, 0x400004, pid=1),
    ]


def test_dumps_format():
    text = dinero.dumps(refs_sample()[:2])
    assert text == "#pid 0\n0 1000\n1 1004\n"


def test_round_trip_through_text():
    text = dinero.dumps(refs_sample())
    chunks = dinero.loads(text)
    out = [ref for chunk in chunks for ref in chunk.references()]
    assert out == refs_sample()


def test_round_trip_through_file(tmp_path):
    path = tmp_path / "trace.din"
    chunks = [
        TraceChunk.from_references(refs_sample()[:3]),
        TraceChunk.from_references(refs_sample()[3:]),
    ]
    written = dinero.write_din(path, chunks)
    assert written == 5
    out = [r for chunk in dinero.read_din(path) for r in chunk.references()]
    assert out == refs_sample()


def test_chunking_splits_long_streams():
    text = "\n".join(f"0 {addr:x}" for addr in range(100))
    chunks = dinero.loads(text, chunk_refs=32)
    assert [len(c) for c in chunks] == [32, 32, 32, 4]


def test_comments_and_blanks_ignored():
    text = "# a comment\n\n0 10\n# another\n1 14\n"
    chunks = dinero.loads(text)
    assert sum(len(c) for c in chunks) == 2


def test_pid_directive_switches_chunks():
    text = "#pid 1\n0 10\n#pid 2\n0 20\n"
    chunks = dinero.loads(text)
    assert [c.pid for c in chunks] == [1, 2]


def test_malformed_record_raises():
    with pytest.raises(TraceFormatError):
        dinero.loads("0 10 20\n")


def test_unknown_kind_raises():
    with pytest.raises(TraceFormatError):
        dinero.loads("9 10\n")


def test_bad_hex_raises():
    with pytest.raises(TraceFormatError):
        dinero.loads("0 zzz\n")


def test_gzip_round_trip(tmp_path):
    path = tmp_path / "trace.din.gz"
    chunks = [TraceChunk.from_references(refs_sample()[:3])]
    assert dinero.write_din(path, chunks) == 3
    # Actually gzipped (magic bytes), and reads back identically.
    assert path.read_bytes()[:2] == b"\x1f\x8b"
    out = [r for chunk in dinero.read_din(path) for r in chunk.references()]
    assert out == refs_sample()[:3]


def test_bad_pid_directive_raises():
    with pytest.raises(TraceFormatError):
        dinero.loads("#pid abc\n0 10\n")
    with pytest.raises(TraceFormatError):
        dinero.loads("#pid\n0 10\n")
