"""Tests for the crash-safe, integrity-checked run-record cache.

The contract: no on-disk state -- torn, truncated, tampered, stale or
plain garbage -- may ever crash a run.  Bad files are cache *misses*
that get quarantined to ``<key>.json.corrupt`` with a structured event,
and the cell is recomputed.  Commits are atomic, so two runners can
share one cache directory.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis.runtime import RunRecord
from repro.core.errors import CacheIntegrityError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    CACHE_SCHEMA,
    QUARANTINE_SUFFIX,
    SHARD_DIRNAME,
    Runner,
    decode_cache_entry,
    encode_cache_entry,
    iter_cache_files,
    iter_quarantined_files,
    record_checksum,
)
from repro.systems.factory import baseline_machine
from repro.trace.filter import PLANE_DIRNAME
from repro.trace.materialize import TRACE_DIRNAME

PARAMS = baseline_machine(10**9, 1024)


def config(cache_dir):
    return ExperimentConfig(
        scale=0.0001,
        slice_refs=4_000,
        issue_rates=(10**9,),
        sizes=(1024,),
        seed=0,
        cache_dir=cache_dir,
    )


def seeded_cache(tmp_path):
    """A cache dir holding one committed record; returns (dir, path, record)."""
    runner = Runner(config(tmp_path))
    record = runner.record("baseline", PARAMS)
    paths = list(iter_cache_files(tmp_path))
    assert len(paths) == 1
    return tmp_path, paths[0], record


def fresh_runner(cache_dir):
    return Runner(config(cache_dir))


# ----------------------------------------------------------------------
# Envelope encode/decode
# ----------------------------------------------------------------------


def test_envelope_round_trips(tmp_path):
    _, path, record = seeded_cache(tmp_path)
    envelope = json.loads(path.read_text("utf-8"))
    assert envelope["schema"] == CACHE_SCHEMA
    assert envelope["checksum"] == record_checksum(envelope["record"])
    assert decode_cache_entry(path.read_text("utf-8")) == record


@pytest.mark.parametrize(
    "mutate, reason",
    [
        (lambda env: "{ not json", "invalid JSON"),
        (lambda env: json.dumps([1, 2, 3]), "expected an envelope"),
        (
            lambda env: json.dumps({**env, "schema": "rampage-cache/0"}),
            "schema mismatch",
        ),
        (
            lambda env: json.dumps({**env, "workload_version": "wv0"}),
            "workload version mismatch",
        ),
        (
            lambda env: json.dumps({**env, "checksum": "0" * 64}),
            "checksum mismatch",
        ),
        (
            lambda env: json.dumps({k: v for k, v in env.items() if k != "record"}),
            "no record payload",
        ),
    ],
)
def test_decode_rejects_corruption(tmp_path, mutate, reason):
    _, path, _ = seeded_cache(tmp_path)
    envelope = json.loads(path.read_text("utf-8"))
    with pytest.raises(CacheIntegrityError, match=reason):
        decode_cache_entry(mutate(envelope))


def test_checksum_covers_the_payload(tmp_path):
    _, path, _ = seeded_cache(tmp_path)
    envelope = json.loads(path.read_text("utf-8"))
    envelope["record"]["seconds"] = envelope["record"]["seconds"] + 1.0
    with pytest.raises(CacheIntegrityError, match="checksum mismatch"):
        decode_cache_entry(json.dumps(envelope))


# ----------------------------------------------------------------------
# Corruption recovery: miss + quarantine, never a crash
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda path: path.write_text(path.read_text("utf-8")[: 40], "utf-8"),
        lambda path: path.write_text("not json at all", "utf-8"),
        lambda path: path.write_text("", "utf-8"),
        lambda path: path.write_text(
            json.dumps({"schema": "rampage-cache/999", "record": {}}), "utf-8"
        ),
    ],
    ids=["truncated", "garbage", "empty", "wrong-version"],
)
def test_corrupt_file_is_miss_quarantine_and_recompute(tmp_path, corrupt):
    cache_dir, path, original = seeded_cache(tmp_path)
    corrupt(path)  # simulates a kill -9 mid-write / stale or torn file

    runner = fresh_runner(cache_dir)
    record = runner.record("baseline", PARAMS)

    # The run survived and recomputed the exact same record.
    assert record == original
    # The bad bytes were moved aside, and a fresh commit replaced them.
    corrupt_files = list(iter_quarantined_files(cache_dir))
    assert len(corrupt_files) == 1
    assert corrupt_files[0].name == path.name + QUARANTINE_SUFFIX
    assert decode_cache_entry(path.read_text("utf-8")) == original
    # Bookkeeping saw it all.
    assert runner.cache_stats.quarantined == 1
    assert runner.cache_stats.misses == 1
    assert runner.cache_stats.stores == 1
    events = [event["event"] for event in runner.events.events]
    assert "cache_quarantined" in events
    quarantine_event = runner.events.of("cache_quarantined")[0]
    assert quarantine_event["path"].endswith(QUARANTINE_SUFFIX)
    assert quarantine_event["reason"]


def test_legacy_bare_record_is_quarantined(tmp_path):
    """Pre-envelope cache files (raw record dicts) are stale, not fatal."""
    cache_dir, path, original = seeded_cache(tmp_path)
    path.write_text(json.dumps(original.as_dict()), "utf-8")
    runner = fresh_runner(cache_dir)
    assert runner.record("baseline", PARAMS) == original
    assert runner.cache_stats.quarantined == 1


# ----------------------------------------------------------------------
# Atomic commits
# ----------------------------------------------------------------------


def test_store_leaves_no_temp_files(tmp_path):
    cache_dir, path, _ = seeded_cache(tmp_path)
    names = {item.name for item in cache_dir.iterdir()}
    # Records live in the sharded layout; the materialized trace plane
    # and the miss planes live alongside by design.  Anything else
    # (e.g. an orphaned temp file) is a leak.
    assert names == {SHARD_DIRNAME, TRACE_DIRNAME, PLANE_DIRNAME}
    shard_dir = cache_dir / SHARD_DIRNAME / path.parent.name
    assert {item.name for item in shard_dir.iterdir()} == {path.name}


def test_commit_is_replace_not_append(tmp_path, monkeypatch):
    """The record file never holds a mix of old and new bytes."""
    cache_dir, path, original = seeded_cache(tmp_path)
    seen = []
    real_replace = os.replace

    def spying_replace(src, dst):
        seen.append((Path(src).name, Path(dst).name))
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", spying_replace)
    path.write_text("torn", "utf-8")
    fresh_runner(cache_dir).record("baseline", PARAMS)
    # First the quarantine rename, then the temp-file commit.
    assert seen[0] == (path.name, path.name + QUARANTINE_SUFFIX)
    assert seen[1][0].startswith(".") and seen[1][1] == path.name


# ----------------------------------------------------------------------
# Two runners, one cache directory
# ----------------------------------------------------------------------


def test_second_runner_reads_first_runners_commit(tmp_path):
    cache_dir, _, original = seeded_cache(tmp_path)
    second = fresh_runner(cache_dir)
    record = second.record("baseline", PARAMS)
    assert record == original
    assert second.cache_stats.hits_disk == 1
    assert second.cache_stats.misses == 0
    assert second.events.of("cache_hit")[0]["layer"] == "disk"


def test_concurrent_style_interleaving_is_safe(tmp_path):
    """Two live runners alternating on one dir never tread on each other."""
    a = fresh_runner(tmp_path)
    b = fresh_runner(tmp_path)
    record_a = a.record("baseline", PARAMS)
    record_b = b.record("baseline", PARAMS)  # disk hit on a's commit
    assert record_a == record_b
    assert b.cache_stats.hits_disk == 1
    # b re-committing (e.g. after a's file was corrupted) is also safe.
    next(iter_cache_files(tmp_path)).write_text("torn", "utf-8")
    assert a.record("baseline", PARAMS) == record_a  # memory hit, unaffected
    fresh = fresh_runner(tmp_path)
    assert fresh.record("baseline", PARAMS) == record_a


# ----------------------------------------------------------------------
# Relabel-on-read (cross-grid cache hits)
# ----------------------------------------------------------------------


def test_cache_hit_is_relabelled_on_read(tmp_path):
    cache_dir, path, _ = seeded_cache(tmp_path)
    second = fresh_runner(cache_dir)
    record = second.record("twoway", PARAMS)
    assert record.label == "twoway"
    # Only the label differs; the simulation payload is shared.
    assert record.stats == second.record("baseline", PARAMS).stats
    # The disk record keeps its original label (the cache is shared).
    assert decode_cache_entry(path.read_text("utf-8")).label == "baseline"


def test_relabel_applies_to_memory_hits_too(tmp_path):
    runner = fresh_runner(tmp_path)
    runner.record("baseline", PARAMS)
    assert runner.record("twoway", PARAMS).label == "twoway"
    assert runner.record("baseline", PARAMS).label == "baseline"


def test_encode_is_deterministic():
    record = RunRecord(
        label="baseline",
        kind="conventional",
        issue_rate_hz=10**9,
        size_bytes=1024,
        switch_on_miss=False,
        seconds=1.5,
        time_ps=1_500_000,
        stats={"level_times": {"l1i": 1}},
    )
    assert encode_cache_entry(record) == encode_cache_entry(record)
