"""Fast-vs-scalar equivalence for the non-default machine variants.

The inlined ``run_chunk`` loops take different branches for associative
L1s, victim buffers, large TLBs and pipelined DRAM; each variant must
stay observationally identical to the scalar reference path.
"""


import pytest

from repro.core.params import (
    KIB,
    MIB,
    CacheParams,
    HandlerCosts,
    MachineParams,
    RambusParams,
    RampageParams,
    TlbParams,
)
from repro.systems.base import MemorySystem
from repro.systems.factory import aggressive_l1, build_system
from helpers import random_chunks


def run_both(params, chunks):
    fast = build_system(params)
    slow = build_system(params)
    for chunk in chunks:
        assert fast.run_chunk(chunk) == MemorySystem.run_chunk(slow, chunk)
    return fast.finalize(), slow.finalize()


def conventional(**overrides):
    defaults = dict(
        kind="conventional",
        issue_rate_hz=1_000_000_000,
        l2=CacheParams(1 * MIB, 512, associativity=1),
        handlers=HandlerCosts(),
    )
    defaults.update(overrides)
    return MachineParams(**defaults)


def rampage(**overrides):
    defaults = dict(
        kind="rampage",
        issue_rate_hz=1_000_000_000,
        rampage=RampageParams(
            page_bytes=256,
            base_bytes=64 * KIB,
            pinned_code_data_bytes=2 * KIB,
            ipt_entry_bytes=16,
        ),
        handlers=HandlerCosts(),
    )
    defaults.update(overrides)
    return MachineParams(**defaults)


@pytest.mark.parametrize(
    "params",
    [
        conventional(l1=aggressive_l1()),
        conventional(victim_cache_blocks=8),
        conventional(tlb=TlbParams(entries=1024, associativity=2)),
        conventional(dram=RambusParams(pipelined=True)),
        rampage(l1=aggressive_l1()),
        rampage(tlb=TlbParams(entries=16, associativity=2)),
        rampage(
            rampage=RampageParams(
                page_bytes=256,
                base_bytes=64 * KIB,
                pinned_code_data_bytes=2 * KIB,
                ipt_entry_bytes=16,
                standby_pages=8,
            )
        ),
    ],
    ids=[
        "conv-8way-l1",
        "conv-victim",
        "conv-big-tlb",
        "conv-pipelined",
        "ramp-8way-l1",
        "ramp-small-tlb",
        "ramp-standby",
    ],
)
def test_variant_equivalence(params):
    fast, slow = run_both(params, random_chunks(seed=13, n_chunks=6))
    assert fast.stats.as_dict() == slow.stats.as_dict()
    assert fast.time_ps == slow.time_ps


def test_victim_buffer_actually_used():
    """Guard against the variant silently not exercising its feature."""
    params = conventional(victim_cache_blocks=8)
    system = build_system(params)
    for chunk in random_chunks(seed=13, n_chunks=6):
        system.run_chunk(chunk)
    assert system.victim_buffer.hits + system.victim_buffer.misses > 0


def test_standby_actually_used():
    params = rampage(
        rampage=RampageParams(
            page_bytes=256,
            base_bytes=64 * KIB,
            pinned_code_data_bytes=2 * KIB,
            ipt_entry_bytes=16,
            standby_pages=8,
        )
    )
    system = build_system(params)
    for chunk in random_chunks(seed=13, n_chunks=6):
        system.run_chunk(chunk)
    assert len(system.sram.standby) > 0 or system.sram.standby.discards > 0
