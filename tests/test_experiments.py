"""End-to-end tests of the experiment modules at a tiny scale.

A single module-scoped Runner (tiny workload, no disk cache) feeds every
experiment; the assertions check the *structure* of each output and the
qualitative shape claims that hold even at reduced scale.
"""

import pytest

from repro.experiments import ExperimentConfig, Runner
from repro.experiments import figure4, figure5, table1, table2, table3, table4, table5
from repro.experiments.figures23 import run_figure2, run_figure3
from repro.experiments.runner import GRID_BUILDERS, iter_cache_files


@pytest.fixture(scope="module")
def runner():
    # Large enough for the qualitative shape claims (cold-start effects
    # invert them below ~3 M references), small enough for CI.  This is
    # the slowest fixture in the suite (~2 minutes); every experiment
    # test shares it.
    config = ExperimentConfig(
        scale=0.003,
        slice_refs=20_000,
        issue_rates=(200_000_000, 4_000_000_000),
        sizes=(128, 1024, 4096),
        cache_dir=None,
    )
    return Runner(config)


class TestRunnerInfra:
    def test_known_grids(self):
        assert set(GRID_BUILDERS) == {
            "baseline",
            "rampage",
            "rampage_som",
            "rampage_vl1",
            "twoway",
        }

    def test_grid_caches_in_memory(self, runner):
        first = runner.grid("baseline")
        second = runner.grid("baseline")
        assert first is second

    def test_grid_shape(self, runner):
        grid = runner.grid("baseline")
        assert len(grid) == 6  # 2 rates x 3 sizes
        assert grid.sizes() == [128, 1024, 4096]

    def test_disk_cache_round_trip(self, tmp_path):
        config = ExperimentConfig(
            scale=0.0001,
            slice_refs=2_000,
            issue_rates=(10**9,),
            sizes=(1024,),
            cache_dir=tmp_path,
        )
        a = Runner(config).grid("baseline").cell(10**9, 1024)
        assert list(iter_cache_files(tmp_path))
        b = Runner(config).grid("baseline").cell(10**9, 1024)
        assert a == b

    def test_unknown_grid_rejected(self, runner):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            runner.grid("nonsense")


class TestTable1:
    def test_structure(self):
        out = table1.run()
        assert out.name == "table1"
        assert "rambus" in out.text.lower()
        assert out.data["rambus_cost_instructions_4k_1ghz"] == pytest.approx(2610)
        assert out.data["disk_cost_instructions_4k_1ghz"] == pytest.approx(
            10.1e6, rel=0.01
        )


class TestTable2:
    def test_measured_fractions_close_to_paper(self, runner):
        out = table2.run(runner)
        for row in out.data["programs"]:
            assert row["ifetch_fraction_measured"] == pytest.approx(
                row["ifetch_fraction_paper"], abs=0.05
            )
        assert out.data["total_millions"] == pytest.approx(1093.1, abs=0.5)


class TestTable3:
    def test_shape(self, runner):
        out = table3.run(runner)
        assert len(out.data["summary"]) == 2
        for entry in out.data["summary"]:
            assert entry["best_baseline_s"] > 0
            assert entry["best_rampage_s"] > 0

    def test_rampage_advantage_grows_with_issue_rate(self, runner):
        out = table3.run(runner)
        by_rate = {e["issue_rate_hz"]: e["rampage_speedup"] for e in out.data["summary"]}
        assert by_rate[4_000_000_000] > by_rate[200_000_000]


class TestTable4:
    def test_structure(self, runner):
        out = table4.run(runner)
        assert len(out.data["summary"]) == 2
        for entry in out.data["summary"]:
            assert entry["best_som_s"] > 0

    def test_switch_on_miss_helps_more_at_high_rate(self, runner):
        out = table4.run(runner)
        by_rate = {
            e["issue_rate_hz"]: e["speedup_vs_no_switch"]
            for e in out.data["summary"]
        }
        assert by_rate[4_000_000_000] > by_rate[200_000_000]


class TestTable5:
    def test_structure(self, runner):
        out = table5.run(runner)
        assert set(out.data["twoway_seconds"]) == {"200MHz", "4GHz"}
        assert all(s > 0 for row in out.data["twoway_seconds"].values() for s in row)


class TestFigures:
    def test_figure2_fractions_sum_to_one(self, runner):
        out = run_figure2(runner)
        for panel in ("baseline", "rampage"):
            for row in out.data[panel]:
                total = sum(row[k] for k in ("l1i", "l1d", "l2", "dram", "other"))
                assert total == pytest.approx(1.0)

    def test_figure3_dram_fraction_exceeds_figure2(self, runner):
        """Scaling the CPU without the DRAM raises the DRAM share."""
        f2 = run_figure2(runner)
        f3 = run_figure3(runner)
        for slow_row, fast_row in zip(f2.data["baseline"], f3.data["baseline"]):
            assert fast_row["dram"] > slow_row["dram"]

    def test_figure4_rampage_overhead_falls_with_page_size(self, runner):
        out = figure4.run(runner)
        rampage = [row["rampage"] for row in out.data["rows"]]
        assert rampage[0] > rampage[-1]

    def test_figure4_baseline_overhead_flat(self, runner):
        out = figure4.run(runner)
        baseline = [row["baseline"] for row in out.data["rows"]]
        assert max(baseline) - min(baseline) < 0.01

    def test_figure5_structure(self, runner):
        out = figure5.run(runner)
        for rate_entry in out.data["rates"]:
            values = [
                row[label]
                for row in rate_entry["rows"]
                for label in ("rampage_som", "twoway")
                if label in row
            ]
            assert min(values) == pytest.approx(0.0, abs=1e-9)
            assert all(v >= 0 for v in values)

    def test_output_write_to(self, runner, tmp_path):
        out = table1.run()
        path = out.write_to(tmp_path)
        assert path.read_text("utf-8").startswith("Table 1")
