"""Tests for workload characterization."""

import numpy as np
import pytest

from repro.analysis.characterize import (
    characterize,
    reuse_distance_histogram,
)
from repro.core.errors import ConfigurationError
from repro.trace.benchmarks import table2_catalog
from repro.trace.record import IFETCH, READ, Reference, TraceChunk
from repro.trace.synthetic import SyntheticProgram


def chunk_from(addrs, pid=0, kind=READ):
    refs = [Reference(kind, a, pid=pid) for a in addrs]
    return TraceChunk.from_references(refs, pid=pid)


class TestCharacterize:
    def test_footprint_counts_granules(self):
        chunk = chunk_from([0, 4, 8, 31, 32, 64])
        profile = characterize([chunk], granule_bytes=32)
        # Granules: 0, 1, 2 -> 96 bytes.
        assert profile.footprint_bytes == 96

    def test_pid_separates_footprint(self):
        a = chunk_from([0], pid=0)
        b = chunk_from([0], pid=1)
        profile = characterize([a, b], granule_bytes=32)
        assert profile.footprint_bytes == 64

    def test_ifetch_fraction(self):
        code = chunk_from([0, 4], kind=IFETCH)
        data = chunk_from([100, 104], kind=READ)
        profile = characterize([code, data])
        assert profile.ifetch_fraction == pytest.approx(0.5)

    def test_distinct_pages_per_size(self):
        chunk = chunk_from([0, 100, 200, 5000])
        profile = characterize([chunk], page_sizes=(128, 4096))
        assert profile.distinct_pages[128] == 3  # pages 0, 1, 39
        assert profile.distinct_pages[4096] == 2  # pages 0, 1

    def test_page_change_rate_sequential_vs_random(self):
        sequential = chunk_from(list(range(0, 8192, 4)))
        rng = np.random.default_rng(0)
        random_addrs = (rng.integers(0, 1 << 22, 2048) * 128).tolist()
        scattered = chunk_from(random_addrs)
        seq = characterize([sequential], page_sizes=(4096,)).page_change_rate[4096]
        rnd = characterize([scattered], page_sizes=(4096,)).page_change_rate[4096]
        assert seq < 0.01
        assert rnd > 0.5

    def test_working_set_curve_is_monotone(self):
        spec = table2_catalog()["gcc"]
        program = SyntheticProgram(spec, total_refs=20_000, seed=3)
        profile = characterize(program.chunks())
        footprints = [fp for _, fp in profile.working_set_curve]
        assert footprints == sorted(footprints)
        assert footprints[-1] <= profile.footprint_bytes

    def test_empty_stream(self):
        profile = characterize([])
        assert profile.refs == 0
        assert profile.footprint_bytes == 0

    def test_rejects_bad_granule(self):
        with pytest.raises(ConfigurationError):
            characterize([], granule_bytes=3)


class TestReuseHistogram:
    def test_cold_and_immediate_reuse(self):
        chunk = chunk_from([0, 0, 0])
        hist = reuse_distance_histogram([chunk])
        assert hist["cold"] == 1
        assert hist["<=1"] == 2

    def test_distance_counts_distinct_granules(self):
        # 0, then 7 other granules, then 0 again: distance 7 -> "<=8".
        addrs = [0] + [32 * i for i in range(1, 8)] + [0]
        hist = reuse_distance_histogram([chunk_from(addrs)])
        assert hist["cold"] == 8
        assert hist["<=8"] == 1

    def test_streaming_is_all_cold(self):
        addrs = list(range(0, 32 * 500, 32))
        hist = reuse_distance_histogram([chunk_from(addrs)])
        assert hist["cold"] == 500
        assert sum(v for k, v in hist.items() if k != "cold") == 0

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ConfigurationError):
            reuse_distance_histogram([], bucket_edges=(8, 4))

    def test_catalogue_program_has_strong_reuse(self):
        """The calibration claim: int programs re-touch their stack/hot
        regions at short distances."""
        spec = table2_catalog()["yacc"]
        program = SyntheticProgram(spec, total_refs=15_000, seed=1)
        hist = reuse_distance_histogram(program.chunks())
        total = sum(hist.values())
        short = hist["<=1"] + hist["<=8"] + hist["<=64"] + hist["<=512"]
        assert short / total > 0.4
