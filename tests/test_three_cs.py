"""Tests for three-Cs miss classification."""

import pytest

from repro.analysis.three_cs import ThreeCsProbe, ThreeCsResult, classify_l2_misses
from repro.core.errors import ConfigurationError
from repro.core.params import CacheParams, MachineParams
from repro.systems.factory import rampage_machine
from repro.trace.benchmarks import TABLE2_PROGRAMS
from repro.trace.synthetic import SyntheticProgram


class TestProbe:
    def test_first_touch_is_compulsory(self):
        probe = ThreeCsProbe(capacity_blocks=4)
        probe.observe(1, real_hit=False)
        result = probe.result()
        assert result.compulsory == 1
        assert result.capacity == 0 and result.conflict == 0

    def test_conflict_miss(self):
        """A revisit that the LRU-full model holds but the real cache
        missed is a conflict miss."""
        probe = ThreeCsProbe(capacity_blocks=4)
        probe.observe(1, real_hit=False)  # compulsory
        probe.observe(2, real_hit=False)  # compulsory
        probe.observe(1, real_hit=False)  # still in LRU(4): conflict
        assert probe.result().conflict == 1

    def test_capacity_miss(self):
        """A revisit evicted even from the LRU-full model is capacity."""
        probe = ThreeCsProbe(capacity_blocks=2)
        for block in (1, 2, 3):  # 1 falls out of the 2-entry LRU
            probe.observe(block, real_hit=False)
        probe.observe(1, real_hit=False)
        assert probe.result().capacity == 1

    def test_hits_counted(self):
        probe = ThreeCsProbe(capacity_blocks=4)
        probe.observe(1, real_hit=False)
        probe.observe(1, real_hit=True)
        result = probe.result()
        assert result.hits == 1
        assert result.accesses == 2

    def test_result_accounting(self):
        probe = ThreeCsProbe(capacity_blocks=2)
        for block, hit in ((1, False), (2, False), (1, True), (3, False), (1, False)):
            probe.observe(block, hit)
        result = probe.result()
        assert result.misses + result.hits == result.accesses
        assert result.miss_rate == pytest.approx(4 / 5)

    def test_fraction_validates_kind(self):
        result = ThreeCsResult(10, 5, 3, 1, 1)
        assert result.fraction("compulsory") == pytest.approx(0.6)
        with pytest.raises(ConfigurationError):
            result.fraction("weird")


class TestClassifyL2:
    def programs(self):
        return [
            SyntheticProgram(TABLE2_PROGRAMS[i], total_refs=6_000, pid=i, seed=i)
            for i in range(4)
        ]

    def small_baseline(self, assoc=1):
        return MachineParams(
            kind="conventional",
            issue_rate_hz=10**9,
            l2=CacheParams(128 * 1024, 512, associativity=assoc),
        )

    def test_classification_is_exhaustive(self):
        result = classify_l2_misses(self.small_baseline(), self.programs(), 2_000)
        assert result.accesses > 0
        assert result.hits + result.misses == result.accesses

    def test_direct_mapped_has_conflicts_two_way_fewer(self):
        direct = classify_l2_misses(self.small_baseline(1), self.programs(), 2_000)
        twoway = classify_l2_misses(self.small_baseline(2), self.programs(), 2_000)
        assert direct.conflict > 0
        assert twoway.conflict < direct.conflict
        # Compulsory misses are a property of the stream, not the cache.
        assert abs(twoway.compulsory - direct.compulsory) <= direct.compulsory * 0.05

    def test_rejects_rampage(self):
        with pytest.raises(ConfigurationError):
            classify_l2_misses(
                rampage_machine(10**9, 512), self.programs(), 2_000
            )
