"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures_svg import (
    line_chart,
    stacked_fraction_panel,
    write_figure_svgs,
)
from repro.core.errors import ConfigurationError

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


def fraction_rows():
    return [
        {"size_bytes": 128, "l1i": 0.5, "l1d": 0.05, "l2": 0.2, "dram": 0.2, "other": 0.05},
        {"size_bytes": 4096, "l1i": 0.3, "l1d": 0.05, "l2": 0.15, "dram": 0.5, "other": 0.0},
    ]


class TestStackedPanel:
    def test_valid_xml_with_bars(self):
        svg = stacked_fraction_panel(
            fraction_rows(), ("l1i", "l1d", "l2", "dram", "other"), "t"
        )
        root = parse(svg)
        rects = root.findall(f".//{SVG_NS}rect")
        # Surface + one rect per nonzero segment (9 segments here).
        assert len(rects) >= 10

    def test_tooltips_present(self):
        svg = stacked_fraction_panel(
            fraction_rows(), ("l1i", "l1d", "l2", "dram", "other"), "t"
        )
        root = parse(svg)
        titles = [t.text for t in root.findall(f".//{SVG_NS}title")]
        assert any("128B L1i: 0.500" in t for t in titles)

    def test_sram_label_substitution(self):
        svg = stacked_fraction_panel(
            fraction_rows(), ("l1i", "l2"), "t", sram_label="SRAM"
        )
        assert "SRAM" in svg
        assert ">L2<" not in svg

    def test_dark_mode_block_present(self):
        svg = stacked_fraction_panel(fraction_rows(), ("l1i", "dram"), "t")
        assert "prefers-color-scheme: dark" in svg

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            stacked_fraction_panel([], ("l1i",), "t")


class TestLineChart:
    def series(self):
        return {
            "baseline": {128: 0.07, 1024: 0.07, 4096: 0.07},
            "rampage": {128: 2.0, 1024: 0.6, 4096: 0.15},
        }

    def test_one_path_per_series(self):
        root = parse(line_chart(self.series(), "t", "y"))
        paths = root.findall(f".//{SVG_NS}path")
        assert len(paths) == 2

    def test_markers_have_tooltips(self):
        root = parse(line_chart(self.series(), "t", "y"))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 6
        assert all(c.find(f"{SVG_NS}title") is not None for c in circles)

    def test_legend_text_present(self):
        svg = line_chart(self.series(), "t", "y")
        assert "baseline" in svg and "rampage" in svg

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart({}, "t", "y")


class TestWriteFigureSvgs:
    def test_writes_all_figures(self, tmp_path):
        from repro.experiments import ExperimentConfig, Runner

        runner = Runner(
            ExperimentConfig(
                scale=0.0001,
                slice_refs=2_000,
                issue_rates=(200_000_000, 4_000_000_000),
                sizes=(128, 4096),
                cache_dir=None,
            )
        )
        paths = write_figure_svgs(runner, tmp_path)
        names = {p.name for p in paths}
        assert names == {
            "figure2_baseline.svg",
            "figure2_rampage.svg",
            "figure3_baseline.svg",
            "figure3_rampage.svg",
            "figure4.svg",
            "figure5_200MHz.svg",
            "figure5_4GHz.svg",
        }
        for path in paths:
            parse(path.read_text("utf-8"))  # all valid XML
