"""Tests for the text renderers."""

from repro.analysis.report import (
    format_rate,
    format_size,
    render_bar_chart,
    render_table,
)


def test_format_rate():
    assert format_rate(200_000_000) == "200MHz"
    assert format_rate(4_000_000_000) == "4GHz"
    assert format_rate(1_000_000_000) == "1GHz"
    assert format_rate(123) == "123Hz"


def test_format_size():
    assert format_size(128) == "128"
    assert format_size(4096) == "4096"


def test_render_table_alignment():
    text = render_table(
        "Title",
        headers=("a", "long_header"),
        rows=[(1, 2.5), (100, 3.25)],
        note="a note",
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "long_header" in lines[1]
    assert lines[-1] == "a note"
    # All data rows align to the same width.
    assert len(lines[3]) == len(lines[4])


def test_render_table_formats_floats():
    text = render_table("t", ("x",), [(1.23456,)])
    assert "1.235" in text


def test_render_bar_chart_scales_bars():
    text = render_bar_chart(
        "chart",
        {"a": {1: 1.0, 2: 0.5}, "b": {1: 0.25}},
        width=8,
    )
    lines = text.splitlines()
    assert lines[0] == "chart"
    bars = {line.strip().split()[0]: line.count("#") for line in lines if "|" in line}
    assert bars["a"] == 8 or bars["a"] == 4  # first 'a' bar is full width
    assert "b" in bars


def test_render_bar_chart_empty_series():
    text = render_bar_chart("empty", {"a": {}})
    assert text == "empty"
